//! Beta Shapley: Beta(α, β)-weighted semivalues (Kwon & Zou, AISTATS'22).
//!
//! The Shapley value weights marginal contributions at all coalition sizes
//! equally; Beta Shapley re-weights them with a Beta(α, β) profile. Large β
//! emphasizes *small* coalitions (where signal about mislabeled points is
//! strongest and noise lowest); `Beta(1, 1)` recovers the Shapley value.
//!
//! We estimate with size-stratified Monte Carlo: draw a coalition size `j`
//! from the normalized Beta weights, draw a random subset of that size not
//! containing `i`, and average the marginal contribution `U(S ∪ i) − U(S)`.

use crate::batch::{BatchPolicy, BatchStats, UtilityBatcher};
use crate::common::ImportanceScores;
use crate::snapshot::BetaShapleyCheckpoint;
use crate::{ImportanceError, Result};
use nde_data::rng::Rng;
use nde_data::rng::SliceRandom;
use nde_data::rng::{child_seed, seeded};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::{CostHint, MemoCache, WorkerFailure, WorkerPool};
use nde_robust::{ConvergenceDiagnostics, RunBudget};
use std::sync::atomic::AtomicBool;

/// Configuration for the Beta Shapley estimator.
#[derive(Debug, Clone)]
pub struct BetaShapleyConfig {
    /// Beta distribution α parameter (> 0).
    pub alpha: f64,
    /// Beta distribution β parameter (> 0). β > α emphasizes small coalitions.
    pub beta: f64,
    /// Monte-Carlo samples *per training example*.
    pub samples_per_point: usize,
    /// Base seed (each example's sampling stream uses a derived child seed).
    pub seed: u64,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
}

impl Default for BetaShapleyConfig {
    fn default() -> Self {
        BetaShapleyConfig {
            alpha: 1.0,
            beta: 16.0,
            samples_per_point: 50,
            seed: 0,
            threads: 1,
        }
    }
}

/// Normalized probability of each coalition size `j ∈ 0..n` under the
/// Beta(α, β) semivalue, *including* the count of subsets of that size.
///
/// The per-subset weight of a coalition `S` with `|S| = j` (out of the
/// `n − 1` points other than the one being valued) is
/// `∫ t^j (1−t)^{n−1−j} dBeta(t) ∝ B(j + α, n − 1 − j + β)`, so the per-size
/// sampling probability is `C(n−1, j) · B(j + α, n − 1 − j + β)`. β > α
/// shifts the Beta mass toward `t = 0`, i.e. toward *small* coalitions;
/// `Beta(1, 1)` gives the uniform size distribution of the Shapley value.
/// Computed in log space and normalized, so only relative weights matter.
pub fn beta_size_weights(n: usize, alpha: f64, beta: f64) -> Vec<f64> {
    debug_assert!(n >= 1);
    let mut logw = Vec::with_capacity(n);
    let ln_choose = |n: f64, k: f64| ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0);
    for j in 0..n {
        let a = j as f64 + alpha;
        let b = (n - 1 - j) as f64 + beta;
        logw.push(
            ln_choose((n - 1) as f64, j as f64) + ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b),
        );
    }
    let max = logw.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let mut w: Vec<f64> = logw.into_iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = w.iter().sum();
    for v in &mut w {
        *v /= sum;
    }
    w
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
#[allow(clippy::inconsistent_digit_grouping)] // literal Lanczos coefficients
fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (standard Lanczos).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The batch-capable Beta Shapley engine behind the
/// [`beta_shapley()`](crate::run::beta_shapley) entry point.
///
/// Each example's sampling stream is `child_seed(config.seed, i)` and the
/// per-example values are written back by index, so scores are bit-identical
/// for every thread count (and with or without a memo cache).
///
/// A point's random draws never depend on utility values, so the engine
/// materializes all of a point's `(S, S ∪ i)` coalition pairs up front
/// (preserving the exact RNG stream of the legacy one-at-a-time loop) and
/// evaluates them in waves of up to [`BatchPolicy::width`] coalitions
/// through the [`UtilityBatcher`]. Marginals are folded in sample order, so
/// every float is independent of the batching policy.
#[cfg_attr(not(test), allow(dead_code))] // exercised by the equivalence tests
pub(crate) fn beta_shapley_engine<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &BetaShapleyConfig,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
    pool: &WorkerPool,
) -> Result<(ImportanceScores, BatchStats)>
where
    C: Classifier + Send + Sync,
{
    beta_shapley_engine_budgeted(
        template,
        train,
        valid,
        config,
        &RunBudget::unlimited(),
        None,
        cache,
        policy,
        pool,
    )
    .map(|(run, stats)| (run.scores, stats))
}

/// Output of [`beta_shapley_engine_budgeted`]: best-so-far scores, budget
/// diagnostics, and a resumable point-granular snapshot.
pub(crate) struct BetaShapleyRun {
    pub scores: ImportanceScores,
    pub diagnostics: ConvergenceDiagnostics,
    pub checkpoint: BetaShapleyCheckpoint,
}

/// One point's logical utility cost, by pure RNG replay of its sampling
/// stream: every sample's `S ∪ i` coalition costs one call; its `S` costs
/// one more unless the drawn size is 0 (`U(∅) = 0` is free). The replay
/// shuffles a dummy pool because a Fisher-Yates shuffle consumes RNG draws
/// as a function of length only — keeping later size draws stream-aligned.
fn point_cost(config: &BetaShapleyConfig, idx: u64, n: usize, cdf: &[f64]) -> u64 {
    let mut rng = seeded(child_seed(config.seed, idx));
    let mut pool: Vec<usize> = (0..n.saturating_sub(1)).collect();
    let mut cost = 0;
    for _ in 0..config.samples_per_point {
        let u: f64 = rng.gen();
        let j = cdf.partition_point(|&c| c < u).min(n - 1);
        pool.shuffle(&mut rng);
        cost += 1 + u64::from(j > 0);
    }
    cost
}

/// The budget- and resume-capable Beta Shapley engine.
///
/// Budgeting is **point-granular**: whole points are scored until a limit
/// trips (one iteration = one point; the utility budget may overshoot by at
/// most the final point's cost, and the wall clock is consulted at point
/// boundaries). Each point's draws come from an independent child-seeded
/// stream, so a resumed run picks up at [`BetaShapleyCheckpoint::cursor`]
/// and is bit-identical to an uninterrupted one.
#[allow(clippy::too_many_arguments)] // mirrors tmc_engine's run surface
pub(crate) fn beta_shapley_engine_budgeted<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &BetaShapleyConfig,
    budget: &RunBudget,
    resume: Option<&BetaShapleyCheckpoint>,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
    pool: &WorkerPool,
) -> Result<(BetaShapleyRun, BatchStats)>
where
    C: Classifier + Send + Sync,
{
    if config.alpha <= 0.0 || config.beta <= 0.0 {
        return Err(ImportanceError::InvalidArgument(
            "alpha and beta must be > 0".into(),
        ));
    }
    if config.samples_per_point == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one sample per point".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    let n = train.len();
    let weights = beta_size_weights(n, config.alpha, config.beta);
    // Cumulative distribution for size sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }

    let mut state = match resume {
        Some(ckpt) => {
            ckpt.validate_against(config, n)?;
            ckpt.clone()
        }
        None => BetaShapleyCheckpoint::fresh(config, n),
    };
    let mut clock = budget.resume(state.cursor, state.utility_calls);
    // Plan the segment deterministically before evaluating anything: walk
    // whole points, charging each point's replayed cost, until a limit
    // trips or every point is scored.
    let start = state.cursor;
    let mut end = start;
    while end < n as u64 && clock.exhausted().is_none() {
        clock.record_iteration();
        clock.record_utility_calls(point_cost(config, end, n, &cdf));
        end += 1;
    }

    let batcher = UtilityBatcher::new(template, train, valid, cache, policy);
    if end > start {
        // Per-worker reusable buffers: the candidate pool and the queued
        // coalition pairs (without, with) for one point.
        struct Scratch {
            pool: Vec<usize>,
            pairs: Vec<Vec<usize>>,
            utilities: Vec<f64>,
        }
        let stop = AtomicBool::new(false);
        // Each point evaluates 2·samples_per_point coalition utilities.
        let cost = CostHint::PerItemNanos(1_000_000);
        let per_point = pool
            .map_indexed_scratch(
                config.threads,
                start..end,
                &stop,
                cost,
                || Scratch {
                    pool: Vec::with_capacity(n),
                    pairs: Vec::new(),
                    utilities: Vec::new(),
                },
                |scratch, idx| {
                    let i = idx as usize;
                    let mut rng = seeded(child_seed(config.seed, idx));
                    scratch.pool.clear();
                    scratch.pool.extend((0..n).filter(|&j| j != i));
                    // Draw every sample first (the RNG stream never depends on
                    // utilities, so this consumes exactly the legacy draw order),
                    // queueing each sample's (S, S ∪ i) pair back to back.
                    let total_coalitions = 2 * config.samples_per_point;
                    while scratch.pairs.len() < total_coalitions {
                        scratch.pairs.push(Vec::with_capacity(n));
                    }
                    for s in 0..config.samples_per_point {
                        // Sample coalition size j from the Beta weights.
                        let u: f64 = rng.gen();
                        let j = cdf.partition_point(|&c| c < u).min(n - 1);
                        scratch.pool.shuffle(&mut rng);
                        let subset = &scratch.pool[..j.min(n - 1)];
                        let (head, tail) = scratch.pairs.split_at_mut(2 * s + 1);
                        let without = &mut head[2 * s];
                        let with = &mut tail[0];
                        without.clear();
                        without.extend_from_slice(subset);
                        without.sort_unstable();
                        let at = without.partition_point(|&x| x < i);
                        with.clear();
                        with.extend_from_slice(without);
                        with.insert(at, i);
                    }
                    // Evaluate in waves, then fold marginals in sample order.
                    scratch.utilities.clear();
                    for chunk in scratch.pairs[..total_coalitions].chunks(batcher.width()) {
                        scratch.utilities.extend(batcher.eval_batch(chunk)?);
                    }
                    let mut total = 0.0;
                    for s in 0..config.samples_per_point {
                        total += scratch.utilities[2 * s + 1] - scratch.utilities[2 * s];
                    }
                    Ok::<_, ImportanceError>(total / config.samples_per_point as f64)
                },
            )
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => ImportanceError::WorkerPanic(msg),
            })?;

        for (idx, v) in per_point {
            state.values[idx as usize] = v;
        }
        state.cursor = end;
        state.utility_calls = clock.utility_calls();
    }
    Ok((
        BetaShapleyRun {
            scores: ImportanceScores::new("beta-shapley", state.values.clone()),
            diagnostics: clock.diagnostics(None),
            checkpoint: state,
        },
        batcher.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    // The behavioral suite pins the engine through thin one-at-a-time
    // wrappers (the physical behavior of the removed free functions).
    fn beta_shapley<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &BetaShapleyConfig,
    ) -> Result<ImportanceScores> {
        beta_shapley_cached(template, train, valid, config, None)
    }

    fn beta_shapley_cached<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &BetaShapleyConfig,
        cache: Option<&MemoCache>,
    ) -> Result<ImportanceScores> {
        beta_shapley_engine(
            template,
            train,
            valid,
            config,
            cache,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .map(|(scores, _)| scores)
    }

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn weights_normalize_and_skew_small_with_large_beta() {
        let w = beta_size_weights(20, 1.0, 16.0);
        assert_eq!(w.len(), 20);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass concentrates on small coalition sizes.
        let small: f64 = w[..5].iter().sum();
        assert!(small > 0.8, "small mass {small}");
        // Beta(1,1) is uniform over sizes.
        let uniform = beta_size_weights(10, 1.0, 1.0);
        for v in &uniform {
            assert!((v - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn mislabelled_point_detected() {
        let (train, valid) = toy();
        let cfg = BetaShapleyConfig {
            samples_per_point: 80,
            seed: 2,
            ..Default::default()
        };
        let scores = beta_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
    }

    #[test]
    fn batched_waves_are_bit_identical_to_unbatched() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        for threads in [1, 4] {
            let cfg = BetaShapleyConfig {
                samples_per_point: 30,
                seed: 11,
                threads,
                ..Default::default()
            };
            let (plain, _) = beta_shapley_engine(
                &knn,
                &train,
                &valid,
                &cfg,
                None,
                BatchPolicy::Unbatched,
                &WorkerPool::shared(),
            )
            .unwrap();
            for size in [1, 2, 5, 64] {
                let (batched, stats) = beta_shapley_engine(
                    &knn,
                    &train,
                    &valid,
                    &cfg,
                    None,
                    BatchPolicy::Grouped { size },
                    &WorkerPool::shared(),
                )
                .unwrap();
                assert_eq!(batched, plain, "threads={threads} size={size}");
                assert!(stats.batched_evals > 0);
            }
        }
    }

    #[test]
    fn budgeted_cut_and_resume_is_bit_identical() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cfg = BetaShapleyConfig {
            samples_per_point: 20,
            seed: 13,
            threads: 2,
            ..Default::default()
        };
        let (full, _) = beta_shapley_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        // Trip the iteration (= point) budget mid-run, then resume.
        let budget = RunBudget::unlimited().with_max_iterations(2);
        let (cut, _) = beta_shapley_engine_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &budget,
            None,
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        assert!(!cut.diagnostics.completed());
        assert_eq!(cut.checkpoint.cursor, 2);
        assert_eq!(cut.scores.values[3], 0.0, "unscored points stay zero");
        let (resumed, _) = beta_shapley_engine_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&cut.checkpoint),
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        assert!(resumed.diagnostics.completed());
        assert_eq!(resumed.checkpoint.cursor, 5);
        for (a, b) in full.values.iter().zip(&resumed.scores.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A checkpoint from a differently-parameterized run is refused.
        let other = BetaShapleyConfig {
            beta: 8.0,
            ..cfg.clone()
        };
        assert!(beta_shapley_engine_budgeted(
            &knn,
            &train,
            &valid,
            &other,
            &RunBudget::unlimited(),
            Some(&cut.checkpoint),
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .is_err());
    }

    #[test]
    fn deterministic_and_validated() {
        let (train, valid) = toy();
        let cfg = BetaShapleyConfig {
            samples_per_point: 20,
            seed: 3,
            ..Default::default()
        };
        let a = beta_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = beta_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
        // Thread-count invariance and cache transparency.
        let par_cfg = BetaShapleyConfig {
            threads: 4,
            ..cfg.clone()
        };
        let cache = MemoCache::new();
        let c = beta_shapley_cached(
            &KnnClassifier::new(1),
            &train,
            &valid,
            &par_cfg,
            Some(&cache),
        )
        .unwrap();
        assert_eq!(a, c);
        assert!(cache.hits() > 0);
        let bad = BetaShapleyConfig {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(beta_shapley(&KnnClassifier::new(1), &train, &valid, &bad).is_err());
        let zero = BetaShapleyConfig {
            samples_per_point: 0,
            ..Default::default()
        };
        assert!(beta_shapley(&KnnClassifier::new(1), &train, &valid, &zero).is_err());
    }
}
