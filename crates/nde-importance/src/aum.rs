//! Area Under the Margin (AUM) mislabel detection (Pleiss et al., NeurIPS'20).
//!
//! During iterative training, correctly-labeled examples develop large
//! positive margins (assigned-class logit minus the largest other logit)
//! while mislabeled examples are pulled in opposite directions by their
//! cluster and their wrong label, keeping their margins low or negative.
//! The AUM of an example is its margin averaged over training epochs.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::models::logreg::LogisticRegression;

/// Configuration for the AUM detector.
#[derive(Debug, Clone)]
pub struct AumConfig {
    /// Training epochs (margins recorded after every epoch).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub l2: f64,
    /// Seed for SGD shuffling.
    pub seed: u64,
}

impl Default for AumConfig {
    fn default() -> Self {
        AumConfig {
            epochs: 30,
            learning_rate: 0.3,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// AUM scores of all training examples: margin averaged over epochs of a
/// logistic-regression run. Low (negative) AUM ⇒ likely mislabeled, so these
/// scores already follow the crate's higher-is-better convention.
pub fn aum_importance(train: &Dataset, config: &AumConfig) -> Result<ImportanceScores> {
    if config.epochs == 0 {
        return Err(ImportanceError::InvalidArgument(
            "epochs must be > 0".into(),
        ));
    }
    let mut model =
        LogisticRegression::new(config.epochs, config.learning_rate, config.l2, config.seed);
    let history = model.fit_tracking(train)?;
    debug_assert_eq!(history.len(), config.epochs);
    let n = train.len();
    let mut values = vec![0.0; n];
    for margins in &history {
        for (v, m) in values.iter_mut().zip(margins) {
            *v += m;
        }
    }
    for v in &mut values {
        *v /= history.len() as f64;
    }
    Ok(ImportanceScores::new("aum", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn train_with_flips(n: usize, flips: &[usize]) -> (Dataset, Vec<usize>) {
        let nd = two_gaussians(n, 3, 4.0, 13);
        let mut train = Dataset::try_from(&nd).unwrap();
        for &f in flips {
            train.y[f] = 1 - train.y[f];
        }
        (train, flips.to_vec())
    }

    #[test]
    fn flipped_labels_have_lowest_aum() {
        let flips = vec![2, 10, 33, 47];
        let (train, truth) = train_with_flips(100, &flips);
        let scores = aum_importance(&train, &AumConfig::default()).unwrap();
        let bottom = scores.bottom_k(4);
        let hits = bottom.iter().filter(|i| truth.contains(i)).count();
        assert!(hits >= 3, "bottom={bottom:?}");
    }

    #[test]
    fn clean_examples_have_positive_aum() {
        let (train, _) = train_with_flips(80, &[]);
        let scores = aum_importance(&train, &AumConfig::default()).unwrap();
        let positive = scores.values.iter().filter(|&&v| v > 0.0).count();
        assert!(positive > 70, "{positive}/80 positive");
    }

    #[test]
    fn deterministic_and_validated() {
        let (train, _) = train_with_flips(40, &[1]);
        let a = aum_importance(&train, &AumConfig::default()).unwrap();
        let b = aum_importance(&train, &AumConfig::default()).unwrap();
        assert_eq!(a, b);
        let bad = AumConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(aum_importance(&train, &bad).is_err());
    }
}
