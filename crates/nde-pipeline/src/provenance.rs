//! Fine-grained row provenance: polynomials over source tuples.

use crate::semiring::{why_var, Semiring, WhySemiring};
use nde_data::fxhash::FxHashSet;

/// Identifies one tuple of one source table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Index of the source table (position in [`Lineage::sources`]).
    pub source: u32,
    /// Row index within that source table.
    pub row: u32,
}

impl TupleId {
    /// Create a tuple id.
    pub fn new(source: u32, row: u32) -> TupleId {
        TupleId { source, row }
    }

    /// Pack into a single `u64` variable id (for semiring evaluation).
    pub fn as_var(self) -> u64 {
        ((self.source as u64) << 32) | self.row as u64
    }

    /// Unpack from a packed variable id.
    pub fn from_var(v: u64) -> TupleId {
        TupleId {
            source: (v >> 32) as u32,
            row: (v & 0xffff_ffff) as u32,
        }
    }
}

/// A provenance polynomial: how an output row derives from source tuples.
///
/// `Times` combines tuples that *jointly* produced a row (joins);
/// `Plus` combines *alternative* derivations (unions/dedup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvExpr {
    /// A single source tuple.
    Var(TupleId),
    /// Joint derivation (e.g. the two sides of a join).
    Times(Vec<ProvExpr>),
    /// Alternative derivations.
    Plus(Vec<ProvExpr>),
}

impl ProvExpr {
    /// Product of two provenance expressions, flattening nested products.
    pub fn times(a: ProvExpr, b: ProvExpr) -> ProvExpr {
        let mut factors = Vec::new();
        for e in [a, b] {
            match e {
                ProvExpr::Times(mut f) => factors.append(&mut f),
                other => factors.push(other),
            }
        }
        ProvExpr::Times(factors)
    }

    /// All distinct source tuples mentioned anywhere in the expression.
    pub fn tuples(&self) -> Vec<TupleId> {
        let mut set = FxHashSet::default();
        self.collect_tuples(&mut set);
        let mut v: Vec<TupleId> = set.into_iter().collect();
        v.sort();
        v
    }

    fn collect_tuples(&self, out: &mut FxHashSet<TupleId>) {
        match self {
            ProvExpr::Var(t) => {
                out.insert(*t);
            }
            ProvExpr::Times(es) | ProvExpr::Plus(es) => {
                for e in es {
                    e.collect_tuples(out);
                }
            }
        }
    }

    /// Evaluate the polynomial in an arbitrary semiring, assigning each
    /// tuple variable via `assign`.
    pub fn eval<S: Semiring>(&self, assign: &impl Fn(TupleId) -> S::Elem) -> S::Elem {
        match self {
            ProvExpr::Var(t) => assign(*t),
            ProvExpr::Times(es) => es
                .iter()
                .fold(S::one(), |acc, e| S::times(&acc, &e.eval::<S>(assign))),
            ProvExpr::Plus(es) => es
                .iter()
                .fold(S::zero(), |acc, e| S::plus(&acc, &e.eval::<S>(assign))),
        }
    }

    /// The why-provenance (set of minimal-ish witnesses) of this expression.
    pub fn why(&self) -> <WhySemiring as Semiring>::Elem {
        self.eval::<WhySemiring>(&|t| why_var(t.as_var()))
    }
}

/// Provenance for an executed pipeline: one polynomial per output row, plus
/// the source-name table that [`TupleId::source`] indexes into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// Names of the source tables, in `TupleId.source` order.
    pub sources: Vec<String>,
    /// One provenance polynomial per output row.
    pub rows: Vec<ProvExpr>,
}

impl Lineage {
    /// Index of a source by name.
    pub fn source_index(&self, name: &str) -> Option<u32> {
        self.sources
            .iter()
            .position(|s| s == name)
            .map(|i| i as u32)
    }

    /// For each output row, the rows of source `source_idx` it depends on.
    pub fn rows_from_source(&self, source_idx: u32) -> Vec<Vec<u32>> {
        self.rows
            .iter()
            .map(|e| {
                e.tuples()
                    .into_iter()
                    .filter(|t| t.source == source_idx)
                    .map(|t| t.row)
                    .collect()
            })
            .collect()
    }

    /// Inverted index: for each row of source `source_idx` (up to
    /// `source_len`), the output rows that depend on it.
    pub fn outputs_per_source_row(&self, source_idx: u32, source_len: usize) -> Vec<Vec<usize>> {
        let mut index = vec![Vec::new(); source_len];
        for (out_row, expr) in self.rows.iter().enumerate() {
            for t in expr.tuples() {
                if t.source == source_idx && (t.row as usize) < source_len {
                    index[t.row as usize].push(out_row);
                }
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, CountSemiring};

    fn t(s: u32, r: u32) -> TupleId {
        TupleId::new(s, r)
    }

    #[test]
    fn tuple_id_packs_roundtrip() {
        let id = t(3, 0xdead_beef);
        assert_eq!(TupleId::from_var(id.as_var()), id);
        assert_ne!(t(0, 1).as_var(), t(1, 0).as_var());
    }

    #[test]
    fn times_flattens() {
        let e = ProvExpr::times(
            ProvExpr::times(ProvExpr::Var(t(0, 1)), ProvExpr::Var(t(1, 2))),
            ProvExpr::Var(t(2, 3)),
        );
        match &e {
            ProvExpr::Times(fs) => assert_eq!(fs.len(), 3),
            _ => panic!("expected Times"),
        }
        assert_eq!(e.tuples(), vec![t(0, 1), t(1, 2), t(2, 3)]);
    }

    #[test]
    fn eval_bool_and_count() {
        // (a * b) + a : derivable iff a and (b or one alternative).
        let e = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 0)),
        ]);
        // All tuples present.
        assert!(e.eval::<BoolSemiring>(&|_| true));
        // Source 1 deleted: still derivable via the second alternative.
        assert!(e.eval::<BoolSemiring>(&|id| id.source == 0));
        // Source 0 deleted: not derivable.
        assert!(!e.eval::<BoolSemiring>(&|id| id.source == 1));
        // Two derivations in the counting semiring.
        assert_eq!(e.eval::<CountSemiring>(&|_| 1), 2);
    }

    #[test]
    fn why_provenance_witnesses() {
        let e = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 1)),
        ]);
        let why = e.why();
        assert_eq!(why.len(), 2);
        let sizes: Vec<usize> = why.iter().map(|w| w.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn lineage_indexing() {
        let lineage = Lineage {
            sources: vec!["a".into(), "b".into()],
            rows: vec![
                ProvExpr::times(ProvExpr::Var(t(0, 2)), ProvExpr::Var(t(1, 0))),
                ProvExpr::Var(t(0, 2)),
                ProvExpr::Var(t(1, 1)),
            ],
        };
        assert_eq!(lineage.source_index("b"), Some(1));
        assert_eq!(lineage.source_index("z"), None);
        let per_out = lineage.rows_from_source(0);
        assert_eq!(per_out, vec![vec![2], vec![2], vec![]]);
        let inv = lineage.outputs_per_source_row(0, 3);
        assert_eq!(inv[2], vec![0, 1]);
        assert!(inv[0].is_empty());
    }
}
