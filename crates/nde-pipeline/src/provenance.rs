//! Fine-grained row provenance: polynomials over source tuples.
//!
//! The engine stores polynomials in a **hash-consed arena** ([`ProvArena`]):
//! a flat, `u32`-indexed node store where identical subexpressions are
//! interned once, `Times`/`Plus` children live in one contiguous slice
//! buffer, and every per-row polynomial is just a [`ProvId`]. Because a
//! node's children are always created before the node itself, the arena is
//! topologically sorted and *any* semiring evaluation is a single forward
//! pass over the node table — no recursion, no per-row hash-set collection.
//! The recursive [`ProvExpr`] tree survives as the reference representation
//! for inspection and cross-checking.

use crate::semiring::{why_var, Semiring, WhySemiring};
use nde_data::fxhash::{FxHashMap, FxHashSet};
use std::sync::OnceLock;

/// Identifies one tuple of one source table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Index of the source table (position in [`Lineage::sources`]).
    pub source: u32,
    /// Row index within that source table.
    pub row: u32,
}

impl TupleId {
    /// Create a tuple id.
    pub fn new(source: u32, row: u32) -> TupleId {
        TupleId { source, row }
    }

    /// Pack into a single `u64` variable id (for semiring evaluation).
    pub fn as_var(self) -> u64 {
        ((self.source as u64) << 32) | self.row as u64
    }

    /// Unpack from a packed variable id.
    pub fn from_var(v: u64) -> TupleId {
        TupleId {
            source: (v >> 32) as u32,
            row: (v & 0xffff_ffff) as u32,
        }
    }
}

/// A provenance polynomial as a recursive tree. This is the *reference*
/// representation: simple to build by hand in tests and to pretty-print,
/// but heap-heavy. The execution engine works on [`ProvArena`] node ids and
/// materializes trees only on demand via [`ProvArena::expr`].
///
/// `Times` combines tuples that *jointly* produced a row (joins);
/// `Plus` combines *alternative* derivations (unions/dedup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvExpr {
    /// A single source tuple.
    Var(TupleId),
    /// Joint derivation (e.g. the two sides of a join).
    Times(Vec<ProvExpr>),
    /// Alternative derivations.
    Plus(Vec<ProvExpr>),
}

impl ProvExpr {
    /// Product of two provenance expressions, flattening nested products.
    pub fn times(a: ProvExpr, b: ProvExpr) -> ProvExpr {
        let mut factors = Vec::new();
        for e in [a, b] {
            match e {
                ProvExpr::Times(mut f) => factors.append(&mut f),
                other => factors.push(other),
            }
        }
        ProvExpr::Times(factors)
    }

    /// All distinct source tuples mentioned anywhere in the expression.
    pub fn tuples(&self) -> Vec<TupleId> {
        let mut set = FxHashSet::default();
        self.collect_tuples(&mut set);
        let mut v: Vec<TupleId> = set.into_iter().collect();
        v.sort();
        v
    }

    fn collect_tuples(&self, out: &mut FxHashSet<TupleId>) {
        match self {
            ProvExpr::Var(t) => {
                out.insert(*t);
            }
            ProvExpr::Times(es) | ProvExpr::Plus(es) => {
                for e in es {
                    e.collect_tuples(out);
                }
            }
        }
    }

    /// Evaluate the polynomial in an arbitrary semiring, assigning each
    /// tuple variable via `assign`.
    pub fn eval<S: Semiring>(&self, assign: &impl Fn(TupleId) -> S::Elem) -> S::Elem {
        match self {
            ProvExpr::Var(t) => assign(*t),
            ProvExpr::Times(es) => es
                .iter()
                .fold(S::one(), |acc, e| S::times(&acc, &e.eval::<S>(assign))),
            ProvExpr::Plus(es) => es
                .iter()
                .fold(S::zero(), |acc, e| S::plus(&acc, &e.eval::<S>(assign))),
        }
    }

    /// The why-provenance (set of minimal-ish witnesses) of this expression.
    pub fn why(&self) -> <WhySemiring as Semiring>::Elem {
        self.eval::<WhySemiring>(&|t| why_var(t.as_var()))
    }
}

/// Index of a node in a [`ProvArena`]. Four bytes per polynomial reference
/// instead of a boxed tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvId(u32);

impl ProvId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena node. `Times`/`Plus` reference a contiguous run of child ids in
/// the arena's shared `children` buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProvNode {
    Var(TupleId),
    Times { start: u32, len: u32 },
    Plus { start: u32, len: u32 },
}

/// What kind of node a [`ProvId`] points at, with children resolved to ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvNodeRef<'a> {
    /// A single source tuple.
    Var(TupleId),
    /// Joint derivation over the child ids.
    Times(&'a [ProvId]),
    /// Alternative derivations over the child ids.
    Plus(&'a [ProvId]),
}

/// A hash-consed provenance arena.
///
/// Construction goes through [`ProvArena::var`], [`ProvArena::times`] and
/// [`ProvArena::plus`], which intern structurally identical nodes to the
/// same [`ProvId`]. Invariant: every child id is smaller than its parent's
/// id, so a forward pass over `0..len()` visits children before parents —
/// this is what makes [`ProvArena::eval_nodes`] and the bitset evaluators
/// single-pass.
#[derive(Debug, Clone, Default)]
pub struct ProvArena {
    nodes: Vec<ProvNode>,
    children: Vec<ProvId>,
    /// Structural-hash buckets for interning. Collisions are resolved by
    /// comparing the candidate against each bucket entry, so no owned key
    /// allocation is needed per lookup.
    intern: FxHashMap<u64, Vec<ProvId>>,
}

/// Two arenas are equal when they hold the same nodes in the same order
/// (the intern map is derived state).
impl PartialEq for ProvArena {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.children == other.children
    }
}

impl Eq for ProvArena {}

const VAR_TAG: u64 = 0x9e37_79b9_7f4a_7c15;
const TIMES_TAG: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PLUS_TAG: u64 = 0x1656_67b1_9e37_79f9;

fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_mul(0x100_0000_01b3);
    h.rotate_left(23)
}

impl ProvArena {
    /// An empty arena.
    pub fn new() -> ProvArena {
        ProvArena::default()
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total child-slot count (size of the shared children buffer).
    pub fn children_len(&self) -> usize {
        self.children.len()
    }

    fn hash_var(t: TupleId) -> u64 {
        mix(VAR_TAG, t.as_var())
    }

    fn hash_compound(tag: u64, kids: &[ProvId]) -> u64 {
        let mut h = mix(tag, kids.len() as u64);
        for k in kids {
            h = mix(h, k.0 as u64);
        }
        h
    }

    fn kids_of(&self, start: u32, len: u32) -> &[ProvId] {
        &self.children[start as usize..(start + len) as usize]
    }

    /// Intern a variable node for tuple `t`.
    pub fn var(&mut self, t: TupleId) -> ProvId {
        let h = Self::hash_var(t);
        if let Some(bucket) = self.intern.get(&h) {
            for &id in bucket {
                if self.nodes[id.index()] == ProvNode::Var(t) {
                    return id;
                }
            }
        }
        let id = ProvId(self.nodes.len() as u32);
        self.nodes.push(ProvNode::Var(t));
        self.intern.entry(h).or_default().push(id);
        id
    }

    /// Intern a product node of `a` and `b`, flattening nested products
    /// (matching [`ProvExpr::times`]): the factor list is the concatenation
    /// of `a`'s factors and `b`'s factors, order preserved, no dedup —
    /// counting-semiring multiplicity must match the tree representation.
    pub fn times(&mut self, a: ProvId, b: ProvId) -> ProvId {
        let mut kids: Vec<ProvId> = Vec::new();
        for id in [a, b] {
            match self.nodes[id.index()] {
                ProvNode::Times { start, len } => {
                    kids.extend_from_slice(self.kids_of(start, len));
                }
                _ => kids.push(id),
            }
        }
        self.intern_compound(TIMES_TAG, &kids)
    }

    /// Intern a sum node over `alts`. A single alternative is returned
    /// as-is (a one-armed `Plus` adds nothing); nested sums are *not*
    /// flattened, matching how the executor builds dedup provenance.
    pub fn plus(&mut self, alts: &[ProvId]) -> ProvId {
        debug_assert!(!alts.is_empty(), "plus of zero alternatives");
        if alts.len() == 1 {
            return alts[0];
        }
        self.intern_compound(PLUS_TAG, alts)
    }

    fn intern_compound(&mut self, tag: u64, kids: &[ProvId]) -> ProvId {
        let h = Self::hash_compound(tag, kids);
        if let Some(bucket) = self.intern.get(&h) {
            for &id in bucket {
                let (start, len, node_tag) = match self.nodes[id.index()] {
                    ProvNode::Times { start, len } => (start, len, TIMES_TAG),
                    ProvNode::Plus { start, len } => (start, len, PLUS_TAG),
                    ProvNode::Var(_) => continue,
                };
                if node_tag == tag && self.kids_of(start, len) == kids {
                    return id;
                }
            }
        }
        let start = self.children.len() as u32;
        self.children.extend_from_slice(kids);
        let len = kids.len() as u32;
        let node = if tag == TIMES_TAG {
            ProvNode::Times { start, len }
        } else {
            ProvNode::Plus { start, len }
        };
        let id = ProvId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.intern.entry(h).or_default().push(id);
        id
    }

    /// Intern a reference tree, flattening nested `Times` exactly like
    /// construction through [`ProvArena::times`] would.
    pub fn intern_expr(&mut self, e: &ProvExpr) -> ProvId {
        match e {
            ProvExpr::Var(t) => self.var(*t),
            ProvExpr::Times(es) => {
                let ids: Vec<ProvId> = es.iter().map(|c| self.intern_expr(c)).collect();
                let mut kids: Vec<ProvId> = Vec::with_capacity(ids.len());
                for id in ids {
                    match self.nodes[id.index()] {
                        ProvNode::Times { start, len } => {
                            kids.extend_from_slice(self.kids_of(start, len));
                        }
                        _ => kids.push(id),
                    }
                }
                self.intern_compound(TIMES_TAG, &kids)
            }
            ProvExpr::Plus(es) => {
                let ids: Vec<ProvId> = es.iter().map(|c| self.intern_expr(c)).collect();
                self.plus(&ids)
            }
        }
    }

    /// Iterate over all nodes in id order (children before parents).
    pub fn iter_nodes(&self) -> impl Iterator<Item = (ProvId, ProvNodeRef<'_>)> {
        (0..self.nodes.len()).map(|i| {
            let id = ProvId(i as u32);
            (id, self.node(id))
        })
    }

    /// Resolve a node id to its kind and child slice.
    pub fn node(&self, id: ProvId) -> ProvNodeRef<'_> {
        match self.nodes[id.index()] {
            ProvNode::Var(t) => ProvNodeRef::Var(t),
            ProvNode::Times { start, len } => ProvNodeRef::Times(self.kids_of(start, len)),
            ProvNode::Plus { start, len } => ProvNodeRef::Plus(self.kids_of(start, len)),
        }
    }

    /// Materialize the reference tree for `id`.
    pub fn expr(&self, id: ProvId) -> ProvExpr {
        match self.node(id) {
            ProvNodeRef::Var(t) => ProvExpr::Var(t),
            ProvNodeRef::Times(kids) => {
                ProvExpr::Times(kids.iter().map(|&k| self.expr(k)).collect())
            }
            ProvNodeRef::Plus(kids) => ProvExpr::Plus(kids.iter().map(|&k| self.expr(k)).collect()),
        }
    }

    /// All distinct source tuples below `id`, sorted (matches
    /// [`ProvExpr::tuples`] on the materialized tree).
    pub fn tuples_of(&self, id: ProvId) -> Vec<TupleId> {
        let mut set = FxHashSet::default();
        let mut stack = vec![id];
        while let Some(top) = stack.pop() {
            match self.node(top) {
                ProvNodeRef::Var(t) => {
                    set.insert(t);
                }
                ProvNodeRef::Times(kids) | ProvNodeRef::Plus(kids) => {
                    stack.extend_from_slice(kids);
                }
            }
        }
        let mut v: Vec<TupleId> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Evaluate *every* node in an arbitrary semiring with one forward pass
    /// (children precede parents by construction). Returns one element per
    /// node, indexable by [`ProvId::index`].
    pub fn eval_nodes<S: Semiring>(&self, assign: &impl Fn(TupleId) -> S::Elem) -> Vec<S::Elem> {
        let mut out: Vec<S::Elem> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                ProvNode::Var(t) => assign(t),
                ProvNode::Times { start, len } => self
                    .kids_of(start, len)
                    .iter()
                    .fold(S::one(), |acc, k| S::times(&acc, &out[k.index()])),
                ProvNode::Plus { start, len } => self
                    .kids_of(start, len)
                    .iter()
                    .fold(S::zero(), |acc, k| S::plus(&acc, &out[k.index()])),
            };
            out.push(v);
        }
        out
    }

    /// Boolean-semiring truth value of every node given per-tuple liveness:
    /// one forward pass, no recursion.
    pub fn eval_bool(&self, alive: &impl Fn(TupleId) -> bool) -> Vec<bool> {
        let mut out: Vec<bool> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                ProvNode::Var(t) => alive(t),
                ProvNode::Times { start, len } => {
                    self.kids_of(start, len).iter().all(|k| out[k.index()])
                }
                ProvNode::Plus { start, len } => {
                    self.kids_of(start, len).iter().any(|k| out[k.index()])
                }
            };
            out.push(v);
        }
        out
    }

    /// Batched Boolean evaluation: each `u64` carries 64 independent
    /// deletion scenarios (bit `j` = "tuple alive in scenario `j`"), so one
    /// arena pass answers 64 what-if questions. `Times` is lane-wise AND,
    /// `Plus` lane-wise OR.
    pub fn eval_bool_lanes(&self, alive: &impl Fn(TupleId) -> u64) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match *node {
                ProvNode::Var(t) => alive(t),
                ProvNode::Times { start, len } => self
                    .kids_of(start, len)
                    .iter()
                    .fold(!0u64, |acc, k| acc & out[k.index()]),
                ProvNode::Plus { start, len } => self
                    .kids_of(start, len)
                    .iter()
                    .fold(0u64, |acc, k| acc | out[k.index()]),
            };
            out.push(v);
        }
        out
    }

    /// The memoized bottom-up tuple index: for every node, its sorted
    /// distinct tuple set, computed once in a single forward pass (each
    /// node's set is the merge of its children's already-computed sets).
    pub fn tuple_index(&self) -> TupleIndex {
        let mut starts: Vec<u32> = Vec::with_capacity(self.nodes.len() + 1);
        let mut tuples: Vec<TupleId> = Vec::new();
        starts.push(0);
        let mut scratch: Vec<TupleId> = Vec::new();
        for node in &self.nodes {
            match *node {
                ProvNode::Var(t) => tuples.push(t),
                ProvNode::Times { start, len } | ProvNode::Plus { start, len } => {
                    scratch.clear();
                    for k in self.kids_of(start, len) {
                        let lo = starts[k.index()] as usize;
                        let hi = starts[k.index() + 1] as usize;
                        scratch.extend_from_slice(&tuples[lo..hi]);
                    }
                    scratch.sort();
                    scratch.dedup();
                    tuples.extend_from_slice(&scratch);
                }
            }
            starts.push(tuples.len() as u32);
        }
        TupleIndex { starts, tuples }
    }
}

/// Per-node sorted tuple sets in flat storage; built by
/// [`ProvArena::tuple_index`].
#[derive(Debug, Clone)]
pub struct TupleIndex {
    /// `starts[i]..starts[i+1]` is node `i`'s slice of `tuples`.
    starts: Vec<u32>,
    tuples: Vec<TupleId>,
}

impl TupleIndex {
    /// The sorted distinct tuples below node `id`.
    pub fn of(&self, id: ProvId) -> &[TupleId] {
        let lo = self.starts[id.index()] as usize;
        let hi = self.starts[id.index() + 1] as usize;
        &self.tuples[lo..hi]
    }
}

/// Provenance for an executed pipeline: the arena holding every interned
/// polynomial, one node id per output row, plus the source-name table that
/// [`TupleId::source`] indexes into.
#[derive(Debug, Clone)]
pub struct Lineage {
    /// Names of the source tables, in `TupleId.source` order.
    pub sources: Vec<String>,
    /// The interned node store shared by all rows.
    pub arena: ProvArena,
    /// One arena node id per output row.
    pub rows: Vec<ProvId>,
    /// Memoized per-node tuple sets (built on first use, shared by every
    /// row-level query afterwards).
    index_cache: OnceLock<TupleIndex>,
    /// Memoized inverted index: per source, the sorted
    /// `(source_row, output_row)` pairs. Like `index_cache` this is derived
    /// state — both are ignored by `PartialEq` and rebuilt lazily.
    inverted_cache: OnceLock<Vec<Vec<(u32, u32)>>>,
}

/// Equality ignores the lazily-built caches: two lineages are equal when
/// they record the same sources, arena, and per-row ids.
impl PartialEq for Lineage {
    fn eq(&self, other: &Self) -> bool {
        self.sources == other.sources && self.arena == other.arena && self.rows == other.rows
    }
}

impl Eq for Lineage {}

impl Lineage {
    /// Assemble a lineage from its parts (caches start empty).
    pub fn new(sources: Vec<String>, arena: ProvArena, rows: Vec<ProvId>) -> Lineage {
        Lineage {
            sources,
            arena,
            rows,
            index_cache: OnceLock::new(),
            inverted_cache: OnceLock::new(),
        }
    }

    /// Build a lineage from reference trees (test/bench convenience; the
    /// executor interns directly during execution).
    pub fn from_exprs(sources: Vec<String>, exprs: &[ProvExpr]) -> Lineage {
        let mut arena = ProvArena::new();
        let rows = exprs.iter().map(|e| arena.intern_expr(e)).collect();
        Lineage::new(sources, arena, rows)
    }

    /// Number of output rows covered.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Index of a source by name.
    pub fn source_index(&self, name: &str) -> Option<u32> {
        self.sources
            .iter()
            .position(|s| s == name)
            .map(|i| i as u32)
    }

    /// Materialize the reference tree for one output row.
    pub fn row_expr(&self, row: usize) -> ProvExpr {
        self.arena.expr(self.rows[row])
    }

    /// The sorted distinct source tuples one output row depends on.
    pub fn row_tuples(&self, row: usize) -> Vec<TupleId> {
        self.arena.tuples_of(self.rows[row])
    }

    /// Evaluate every output row in semiring `S` with a single arena pass.
    pub fn eval_rows<S: Semiring>(&self, assign: &impl Fn(TupleId) -> S::Elem) -> Vec<S::Elem> {
        let per_node = self.arena.eval_nodes::<S>(assign);
        self.rows
            .iter()
            .map(|id| per_node[id.index()].clone())
            .collect()
    }

    /// The memoized per-node tuple index, built once on first use (the
    /// arena is immutable after execution, so the index never goes stale).
    pub fn tuple_index(&self) -> &TupleIndex {
        self.index_cache.get_or_init(|| self.arena.tuple_index())
    }

    /// The memoized inverted index over *all* sources: for each source, the
    /// `(source_row, output_row)` dependency pairs sorted by source row.
    /// Built with one arena pass on first use; every later
    /// [`Lineage::outputs_per_source_row`] call is a cheap per-source scan.
    fn inverted_pairs(&self) -> &Vec<Vec<(u32, u32)>> {
        self.inverted_cache.get_or_init(|| {
            let index = self.tuple_index();
            let mut inv: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.sources.len()];
            for (out_row, id) in self.rows.iter().enumerate() {
                for t in index.of(*id) {
                    if let Some(pairs) = inv.get_mut(t.source as usize) {
                        pairs.push((t.row, out_row as u32));
                    }
                }
            }
            // Pairs arrive in output-row order; sorting by (source_row,
            // output_row) groups each source row while keeping its output
            // list ascending — exactly the uncached construction order.
            for pairs in &mut inv {
                pairs.sort_unstable();
            }
            inv
        })
    }

    /// For each output row, the rows of source `source_idx` it depends on.
    pub fn rows_from_source(&self, source_idx: u32) -> Vec<Vec<u32>> {
        let index = self.tuple_index();
        self.rows
            .iter()
            .map(|id| {
                index
                    .of(*id)
                    .iter()
                    .filter(|t| t.source == source_idx)
                    .map(|t| t.row)
                    .collect()
            })
            .collect()
    }

    /// Inverted index: for each row of source `source_idx` (up to
    /// `source_len`), the output rows that depend on it. The underlying
    /// source→output pairs are memoized on the lineage, so repeated calls
    /// (inspections, DataScope grouping, delta propagation) pay one arena
    /// pass total instead of one per call.
    pub fn outputs_per_source_row(&self, source_idx: u32, source_len: usize) -> Vec<Vec<usize>> {
        let mut inv = vec![Vec::new(); source_len];
        if let Some(pairs) = self.inverted_pairs().get(source_idx as usize) {
            for &(row, out) in pairs {
                if (row as usize) < source_len {
                    inv[row as usize].push(out as usize);
                }
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, CountSemiring};

    fn t(s: u32, r: u32) -> TupleId {
        TupleId::new(s, r)
    }

    #[test]
    fn tuple_id_packs_roundtrip() {
        let id = t(3, 0xdead_beef);
        assert_eq!(TupleId::from_var(id.as_var()), id);
        assert_ne!(t(0, 1).as_var(), t(1, 0).as_var());
    }

    #[test]
    fn times_flattens() {
        let e = ProvExpr::times(
            ProvExpr::times(ProvExpr::Var(t(0, 1)), ProvExpr::Var(t(1, 2))),
            ProvExpr::Var(t(2, 3)),
        );
        match &e {
            ProvExpr::Times(fs) => assert_eq!(fs.len(), 3),
            _ => panic!("expected Times"),
        }
        assert_eq!(e.tuples(), vec![t(0, 1), t(1, 2), t(2, 3)]);
    }

    #[test]
    fn eval_bool_and_count() {
        // (a * b) + a : derivable iff a and (b or one alternative).
        let e = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 0)),
        ]);
        // All tuples present.
        assert!(e.eval::<BoolSemiring>(&|_| true));
        // Source 1 deleted: still derivable via the second alternative.
        assert!(e.eval::<BoolSemiring>(&|id| id.source == 0));
        // Source 0 deleted: not derivable.
        assert!(!e.eval::<BoolSemiring>(&|id| id.source == 1));
        // Two derivations in the counting semiring.
        assert_eq!(e.eval::<CountSemiring>(&|_| 1), 2);
    }

    #[test]
    fn why_provenance_witnesses() {
        let e = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 1)),
        ]);
        let why = e.why();
        assert_eq!(why.len(), 2);
        let sizes: Vec<usize> = why.iter().map(|w| w.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn arena_interns_identical_subexpressions_once() {
        let mut arena = ProvArena::new();
        let a = arena.var(t(0, 0));
        let b = arena.var(t(1, 0));
        let ab1 = arena.times(a, b);
        let ab2 = arena.times(a, b);
        assert_eq!(ab1, ab2);
        assert_eq!(arena.var(t(0, 0)), a);
        // 3 unique nodes: a, b, a*b.
        assert_eq!(arena.len(), 3);
        let p1 = arena.plus(&[ab1, a]);
        let p2 = arena.plus(&[ab2, a]);
        assert_eq!(p1, p2);
        assert_eq!(arena.len(), 4);
        // Distinct child order is a distinct node (Times is kept ordered).
        let ba = arena.times(b, a);
        assert_ne!(ba, ab1);
    }

    #[test]
    fn arena_times_flattens_like_tree_times() {
        let mut arena = ProvArena::new();
        let a = arena.var(t(0, 1));
        let b = arena.var(t(1, 2));
        let c = arena.var(t(2, 3));
        let ab = arena.times(a, b);
        let abc = arena.times(ab, c);
        match arena.node(abc) {
            ProvNodeRef::Times(kids) => assert_eq!(kids, &[a, b, c]),
            other => panic!("expected Times, got {other:?}"),
        }
        let tree = ProvExpr::times(
            ProvExpr::times(ProvExpr::Var(t(0, 1)), ProvExpr::Var(t(1, 2))),
            ProvExpr::Var(t(2, 3)),
        );
        assert_eq!(arena.expr(abc), tree);
        assert_eq!(arena.tuples_of(abc), tree.tuples());
    }

    #[test]
    fn single_alternative_plus_collapses() {
        let mut arena = ProvArena::new();
        let a = arena.var(t(0, 0));
        assert_eq!(arena.plus(&[a]), a);
    }

    #[test]
    fn intern_expr_roundtrips_and_matches_eval() {
        let tree = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 0)),
        ]);
        let mut arena = ProvArena::new();
        let id = arena.intern_expr(&tree);
        assert_eq!(arena.expr(id), tree);
        let alive = |tid: TupleId| tid.source == 0;
        let bools = arena.eval_bool(&alive);
        assert_eq!(bools[id.index()], tree.eval::<BoolSemiring>(&alive));
        let counts = arena.eval_nodes::<CountSemiring>(&|_| 1);
        assert_eq!(counts[id.index()], tree.eval::<CountSemiring>(&|_| 1));
        let whys = arena.eval_nodes::<WhySemiring>(&|tid| why_var(tid.as_var()));
        assert_eq!(whys[id.index()], tree.why());
    }

    #[test]
    fn bitset_lanes_match_per_scenario_bool_eval() {
        // 3 tuples, 8 scenarios = all deletion subsets of {t00, t10, t01}.
        let tree = ProvExpr::Plus(vec![
            ProvExpr::times(ProvExpr::Var(t(0, 0)), ProvExpr::Var(t(1, 0))),
            ProvExpr::Var(t(0, 1)),
        ]);
        let mut arena = ProvArena::new();
        let id = arena.intern_expr(&tree);
        let order = [t(0, 0), t(1, 0), t(0, 1)];
        let alive_lanes = |tid: TupleId| {
            let k = order.iter().position(|&o| o == tid).unwrap();
            // Scenario j deletes tuple k iff bit k of j is set.
            let mut lanes = 0u64;
            for j in 0..8u64 {
                if (j >> k) & 1 == 0 {
                    lanes |= 1 << j;
                }
            }
            lanes
        };
        let lanes = arena.eval_bool_lanes(&alive_lanes)[id.index()];
        for j in 0..8u64 {
            let alive = |tid: TupleId| {
                let k = order.iter().position(|&o| o == tid).unwrap();
                (j >> k) & 1 == 0
            };
            assert_eq!(
                (lanes >> j) & 1 == 1,
                tree.eval::<BoolSemiring>(&alive),
                "scenario {j}"
            );
        }
    }

    #[test]
    fn tuple_index_matches_per_node_collection() {
        let mut arena = ProvArena::new();
        let a = arena.var(t(0, 0));
        let b = arena.var(t(1, 0));
        let c = arena.var(t(0, 1));
        let ab = arena.times(a, b);
        let abc = arena.times(ab, c);
        let p = arena.plus(&[abc, a]);
        let index = arena.tuple_index();
        for id in [a, b, c, ab, abc, p] {
            assert_eq!(index.of(id), arena.tuples_of(id).as_slice(), "{id:?}");
        }
        // Shared tuple across alternatives is deduplicated.
        assert_eq!(index.of(p), &[t(0, 0), t(0, 1), t(1, 0)]);
    }

    #[test]
    fn lineage_indexing() {
        let lineage = Lineage::from_exprs(
            vec!["a".into(), "b".into()],
            &[
                ProvExpr::times(ProvExpr::Var(t(0, 2)), ProvExpr::Var(t(1, 0))),
                ProvExpr::Var(t(0, 2)),
                ProvExpr::Var(t(1, 1)),
            ],
        );
        assert_eq!(lineage.source_index("b"), Some(1));
        assert_eq!(lineage.source_index("z"), None);
        let per_out = lineage.rows_from_source(0);
        assert_eq!(per_out, vec![vec![2], vec![2], vec![]]);
        let inv = lineage.outputs_per_source_row(0, 3);
        assert_eq!(inv[2], vec![0, 1]);
        assert!(inv[0].is_empty());
        assert_eq!(lineage.row_tuples(1), vec![t(0, 2)]);
        assert_eq!(lineage.row_expr(2), ProvExpr::Var(t(1, 1)));
        // Shared var node `a2` is interned once across rows 0 and 1.
        assert_eq!(lineage.arena.len(), 4);
    }

    #[test]
    fn inverted_index_cache_matches_uncached_semantics() {
        let lineage = Lineage::from_exprs(
            vec!["a".into(), "b".into()],
            &[
                ProvExpr::times(ProvExpr::Var(t(0, 2)), ProvExpr::Var(t(1, 0))),
                ProvExpr::Var(t(0, 2)),
                ProvExpr::Var(t(1, 1)),
            ],
        );
        let first = lineage.outputs_per_source_row(0, 3);
        assert_eq!(first[2], vec![0, 1]);
        // Repeated calls hit the memoized pairs and agree exactly.
        assert_eq!(lineage.outputs_per_source_row(0, 3), first);
        // A longer source view reuses the same cache, padding with empties.
        let longer = lineage.outputs_per_source_row(0, 5);
        assert_eq!(&longer[..3], &first[..]);
        assert!(longer[3].is_empty() && longer[4].is_empty());
        // A shorter view truncates out-of-range source rows.
        let shorter = lineage.outputs_per_source_row(0, 2);
        assert!(shorter.iter().all(Vec::is_empty));
        // Equality ignores whether the cache has been built.
        let fresh = Lineage::from_exprs(
            vec!["a".into(), "b".into()],
            &[
                ProvExpr::times(ProvExpr::Var(t(0, 2)), ProvExpr::Var(t(1, 0))),
                ProvExpr::Var(t(0, 2)),
                ProvExpr::Var(t(1, 1)),
            ],
        );
        assert_eq!(lineage, fresh);
    }
}
