//! End-to-end feature pipelines: relational plan + feature encoding + labels.
//!
//! This is the unit the tutorial calls "the ML pipeline" (Fig. 3): raw source
//! tables go in, an encoded [`Dataset`] (plus row provenance back to the
//! sources) comes out.

use crate::exec::Executor;
use crate::plan::{NodeId, Plan};
use crate::provenance::Lineage;
use crate::{PipelineError, Result};
use nde_data::Table;
use nde_ml::dataset::{Dataset, LabelEncoder};
use nde_ml::encode::{ColumnEncoder, EncoderSpec, TableEncoder};

/// A relational plan plus the feature/label encoding applied to its output.
#[derive(Debug, Clone)]
pub struct FeaturePipeline {
    /// The relational plan.
    pub plan: Plan,
    /// Root node whose output feeds the encoder.
    pub root: NodeId,
    /// Feature encoder (fit on the training run).
    pub encoder: TableEncoder,
    /// Name of the label column in the plan output.
    pub label_column: String,
    label_encoder: Option<LabelEncoder>,
}

/// Output of running a [`FeaturePipeline`].
#[derive(Debug, Clone)]
pub struct FeatureOutput {
    /// Encoded dataset (features + integer labels).
    pub dataset: Dataset,
    /// The materialized relational output the features were encoded from.
    pub table: Table,
    /// Row provenance back to the pipeline's source tables, if tracked.
    /// Encoding is row-wise 1:1, so dataset row `i` has `lineage.rows[i]`.
    pub lineage: Option<Lineage>,
}

impl FeaturePipeline {
    /// Create a pipeline from parts.
    pub fn new(
        plan: Plan,
        root: NodeId,
        encoder: TableEncoder,
        label_column: impl Into<String>,
    ) -> FeaturePipeline {
        FeaturePipeline {
            plan,
            root,
            encoder,
            label_column: label_column.into(),
            label_encoder: None,
        }
    }

    /// The tutorial's hiring pipeline (Fig. 3): joins + filter + projection,
    /// then text hashing, one-hot degree, scaled numeric features and the
    /// derived `has_twitter` flag.
    pub fn hiring(text_dims: usize) -> FeaturePipeline {
        let (plan, root) = Plan::hiring_pipeline();
        let encoder = TableEncoder::new(vec![
            EncoderSpec::new("letter_text", ColumnEncoder::TextHash { dims: text_dims }),
            EncoderSpec::new("degree", ColumnEncoder::OneHot { fill: None }),
            EncoderSpec::new(
                "employer_rating",
                ColumnEncoder::Numeric {
                    impute: nde_ml::encode::NumericImputation::Mean,
                    scale: true,
                },
            ),
            EncoderSpec::new(
                "years_experience",
                ColumnEncoder::Numeric {
                    impute: nde_ml::encode::NumericImputation::Mean,
                    scale: true,
                },
            ),
            EncoderSpec::new("has_twitter", ColumnEncoder::Bool),
        ]);
        FeaturePipeline::new(plan, root, encoder, "sentiment")
    }

    /// The fitted label encoder (available after [`Self::fit_run`]).
    pub fn label_encoder(&self) -> Result<&LabelEncoder> {
        self.label_encoder
            .as_ref()
            .ok_or_else(|| PipelineError::InvalidPlan("pipeline not fitted yet".into()))
    }

    /// Run the plan, **fit** the feature and label encoders on its output,
    /// and return the encoded training dataset.
    pub fn fit_run(
        &mut self,
        inputs: &[(&str, &Table)],
        track_provenance: bool,
    ) -> Result<FeatureOutput> {
        let out = Executor::new()
            .with_provenance(track_provenance)
            .run(&self.plan, self.root, inputs)?;
        if out.table.n_rows() == 0 {
            return Err(PipelineError::InvalidPlan(
                "pipeline produced zero training rows".into(),
            ));
        }
        let label_encoder = LabelEncoder::fit(&out.table, &self.label_column)?;
        let x = self.encoder.fit_transform(&out.table)?;
        let y = label_encoder.encode_column(&out.table, &self.label_column)?;
        let n_classes = label_encoder.n_classes();
        self.label_encoder = Some(label_encoder);
        Ok(FeatureOutput {
            dataset: Dataset::new(x, y, n_classes)?,
            table: out.table,
            lineage: out.provenance,
        })
    }

    /// Encode only the given rows of a plan-output table with the **already
    /// fitted** encoders. Result row `j` holds the features and label of
    /// `table` row `rows[j]`.
    ///
    /// All fitted encoders are row-wise at transform time (stored means,
    /// scales, categories, hash dims), so the result is bit-identical to
    /// the corresponding rows of a full-table transform — this is what lets
    /// incremental maintenance re-encode just the rows a fix touched.
    pub fn encode_rows(
        &self,
        table: &Table,
        rows: &[usize],
    ) -> Result<(nde_ml::linalg::Matrix, Vec<usize>)> {
        let label_encoder = self.label_encoder()?;
        let sub = table.take(rows)?;
        let x = self.encoder.transform(&sub)?;
        let y = label_encoder.encode_column(&sub, &self.label_column)?;
        Ok((x, y))
    }

    /// Run the plan over (different) inputs and encode with the **already
    /// fitted** encoders — e.g. for validation or test source tables.
    pub fn transform_run(
        &self,
        inputs: &[(&str, &Table)],
        track_provenance: bool,
    ) -> Result<FeatureOutput> {
        let label_encoder = self.label_encoder()?;
        let out = Executor::new()
            .with_provenance(track_provenance)
            .run(&self.plan, self.root, inputs)?;
        let x = self.encoder.transform(&out.table)?;
        let y = label_encoder.encode_column(&out.table, &self.label_column)?;
        Ok(FeatureOutput {
            dataset: Dataset::new(x, y, label_encoder.n_classes())?,
            table: out.table,
            lineage: out.provenance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::HiringScenario;

    fn inputs(s: &HiringScenario) -> Vec<(&str, &Table)> {
        vec![
            ("train_df", &s.letters),
            ("jobdetail_df", &s.job_details),
            ("social_df", &s.social),
        ]
    }

    #[test]
    fn fit_run_produces_dataset_with_lineage() {
        let s = HiringScenario::generate(120, 3);
        let mut fp = FeaturePipeline::hiring(16);
        let out = fp.fit_run(&inputs(&s), true).unwrap();
        assert!(!out.dataset.is_empty());
        assert_eq!(out.dataset.len(), out.table.n_rows());
        // 16 text + 3 degree + 2 numeric + 1 bool.
        assert_eq!(out.dataset.dim(), 22);
        assert_eq!(out.dataset.n_classes, 2);
        let lineage = out.lineage.unwrap();
        assert_eq!(lineage.rows.len(), out.dataset.len());
    }

    #[test]
    fn transform_run_requires_fit_and_reuses_encoders() {
        let train = HiringScenario::generate(120, 4);
        let valid = HiringScenario::generate(40, 5);
        let mut fp = FeaturePipeline::hiring(8);
        assert!(fp.transform_run(&inputs(&valid), false).is_err());
        let train_out = fp.fit_run(&inputs(&train), false).unwrap();
        let valid_out = fp.transform_run(&inputs(&valid), false).unwrap();
        assert_eq!(train_out.dataset.dim(), valid_out.dataset.dim());
        assert_eq!(valid_out.dataset.n_classes, 2);
        assert!(fp.label_encoder().is_ok());
    }

    #[test]
    fn encode_rows_matches_full_transform_bitwise() {
        let s = HiringScenario::generate(90, 8);
        let mut fp = FeaturePipeline::hiring(8);
        let out = fp.fit_run(&inputs(&s), false).unwrap();
        let rows = [0usize, 3, 7, out.table.n_rows() - 1];
        let (x, y) = fp.encode_rows(&out.table, &rows).unwrap();
        assert_eq!(x.rows(), rows.len());
        for (j, &r) in rows.iter().enumerate() {
            assert_eq!(y[j], out.dataset.y[r]);
            for (a, b) in x.row(j).iter().zip(out.dataset.x.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
        // Unfitted pipeline refuses.
        assert!(FeaturePipeline::hiring(8)
            .encode_rows(&out.table, &rows)
            .is_err());
    }

    #[test]
    fn labels_decode_to_sentiments() {
        let s = HiringScenario::generate(60, 6);
        let mut fp = FeaturePipeline::hiring(8);
        let out = fp.fit_run(&inputs(&s), false).unwrap();
        let enc = fp.label_encoder().unwrap();
        for (row, &y) in out.dataset.y.iter().enumerate() {
            let decoded = enc.decode(y).unwrap();
            let raw = out.table.get(row, "sentiment").unwrap();
            assert_eq!(raw.as_str().unwrap(), decoded);
        }
    }

    #[test]
    fn empty_output_rejected() {
        // A scenario where no job is healthcare ⇒ the filter drops everything.
        let mut s = HiringScenario::generate(30, 7);
        for row in 0..s.job_details.n_rows() {
            s.job_details
                .set(row, "sector", nde_data::Value::Str("tech".into()))
                .unwrap();
        }
        let mut fp = FeaturePipeline::hiring(8);
        assert!(fp.fit_run(&inputs(&s), false).is_err());
    }
}
