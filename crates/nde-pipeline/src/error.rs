//! Error type for pipeline construction and execution.

use std::fmt;

/// Errors from building, executing or inspecting pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A plan node id did not exist in the plan.
    UnknownNode(usize),
    /// A named source table was not supplied to the executor.
    MissingInput(String),
    /// An expression failed to evaluate (type error, unknown column).
    Expr(String),
    /// A wrapped data-substrate error.
    Data(String),
    /// A wrapped ML-substrate error (feature encoding).
    Ml(String),
    /// The plan was structurally invalid (cycle, wrong arity, ...).
    InvalidPlan(String),
    /// An incremental-maintenance request could not be applied to a
    /// [`crate::delta::PipelineSession`] (unknown source, row out of
    /// bounds, unsupported session configuration).
    Delta(String),
    /// A user-defined operator panicked while processing a tuple. The
    /// executor converts the panic into this typed error (fail-fast policy)
    /// or a quarantine record (skip-and-record policy) instead of letting
    /// it abort the pipeline.
    OperatorPanic {
        /// Plan node id of the panicking operator.
        node: usize,
        /// Operator description (e.g. `filter(chaos_panic_predicate)`).
        operator: String,
        /// Input row index the operator was processing.
        row: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownNode(id) => write!(f, "unknown plan node {id}"),
            PipelineError::MissingInput(name) => {
                write!(f, "no input table named `{name}` was provided")
            }
            PipelineError::Expr(msg) => write!(f, "expression error: {msg}"),
            PipelineError::Data(msg) => write!(f, "data error: {msg}"),
            PipelineError::Ml(msg) => write!(f, "ml error: {msg}"),
            PipelineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            PipelineError::Delta(msg) => write!(f, "delta maintenance error: {msg}"),
            PipelineError::OperatorPanic {
                node,
                operator,
                row,
                message,
            } => write!(
                f,
                "operator `{operator}` (node {node}) panicked on row {row}: {message}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<nde_data::DataError> for PipelineError {
    fn from(e: nde_data::DataError) -> Self {
        PipelineError::Data(e.to_string())
    }
}

impl From<nde_ml::MlError> for PipelineError {
    fn from(e: nde_ml::MlError) -> Self {
        PipelineError::Ml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        assert!(PipelineError::MissingInput("t".into())
            .to_string()
            .contains("`t`"));
        let e: PipelineError = nde_data::DataError::UnknownColumn("c".into()).into();
        assert!(matches!(e, PipelineError::Data(_)));
        let e: PipelineError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, PipelineError::Ml(_)));
    }
}
