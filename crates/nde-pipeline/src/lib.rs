//! # nde-pipeline
//!
//! ML preprocessing pipelines with **fine-grained provenance**, in the style
//! of mlinspect / Datascope / ArgusEyes (paper §2.2, Fig. 3).
//!
//! A [`plan::Plan`] is a DAG of relational operators (sources, joins, filters,
//! derived-column projections, concat) terminating in a feature-encoding
//! step. The [`exec::Executor`] evaluates the plan over named input tables
//! and — when asked — tracks a provenance polynomial (Green et al.'s
//! semiring provenance) for every output row, mapping it back to the exact
//! source tuples it was derived from. Polynomials are hash-consed into a
//! flat [`provenance::ProvArena`] (identical subexpressions interned once,
//! rows are 4-byte node ids), so semiring evaluation and deletion what-ifs
//! are single forward passes over the node table; the recursive
//! [`provenance::ProvExpr`] tree remains available as the reference
//! representation. That mapping is what lets data-importance methods
//! computed on the *pipeline output* be pushed back to the *pipeline
//! inputs*.
//!
//! ```
//! use nde_pipeline::plan::{Plan, JoinType};
//! use nde_pipeline::expr::Expr;
//! use nde_pipeline::exec::Executor;
//! use nde_data::generate::hiring::HiringScenario;
//!
//! let s = HiringScenario::generate(50, 0);
//! let mut plan = Plan::new();
//! let letters = plan.source("train_df");
//! let jobs = plan.source("jobdetail_df");
//! let joined = plan.join(letters, jobs, "job_id", "job_id", JoinType::Inner);
//! let filtered = plan.filter(joined, Expr::col("sector").eq(Expr::str("healthcare")));
//! let out = Executor::new()
//!     .with_provenance(true)
//!     .run(&plan, filtered, &[("train_df", &s.letters), ("jobdetail_df", &s.job_details)])
//!     .unwrap();
//! assert_eq!(out.table.n_rows(), out.provenance.as_ref().unwrap().rows.len());
//! ```

pub mod delta;
pub mod error;
pub mod exec;
pub mod expr;
pub mod feature;
pub mod fuzzy;
pub mod inspect;
pub mod plan;
pub mod provenance;
pub mod render;
pub mod semiring;
pub mod whatif;

pub use delta::{Delta, DeltaOutcome, DeltaPath, DeltaStats, MaintenanceMode, PipelineSession};
pub use error::PipelineError;
pub use exec::{ExecOutput, Executor};
pub use plan::{JoinType, NodeId, Plan};
pub use provenance::{Lineage, ProvArena, ProvExpr, ProvId, TupleId};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PipelineError>;
