//! Incremental view maintenance for executed pipelines.
//!
//! Prioritized cleaning (paper §3) applies one small fix at a time — flip a
//! label, correct a rating, drop a duplicate — and re-evaluates the model
//! after each. Re-running the whole pipeline per fix costs milliseconds for
//! work whose footprint is a handful of rows. A [`PipelineSession`] keeps
//! the executed run alive (every operator's table, routing trace, and
//! provenance) and applies a single-tuple [`Delta`] by pushing it *forward*
//! through the operator DAG:
//!
//! - **Cell patch** ([`DeltaPath::CellPatch`]): an [`Delta::Update`] that
//!   cannot change any routing decision (join keys, filter predicates,
//!   distinct keys untouched) patches the changed cells of affected rows in
//!   place. Provenance is untouched — routing is identical by construction.
//! - **Splice** ([`DeltaPath::Splice`]): an [`Delta::Insert`] or
//!   [`Delta::Delete`] re-decides routing only where the changed tuple can
//!   reach, carrying a per-node row map (old row → new row). The provenance
//!   arena is then rebuilt by replaying interning in the recorded evaluation
//!   order, which reproduces the arena a fresh run would build *bit for
//!   bit* (hash-consing is deterministic in interning order).
//! - **Rerun** ([`DeltaPath::Rerun`]): anything the incremental paths
//!   cannot prove safe (a join-key update, an operator error on a spliced
//!   row) falls back to full re-execution — so every apply, whatever path
//!   it takes, leaves the session in exactly the state a fresh run over the
//!   mutated inputs would produce.
//!
//! The differential test suite (`tests/tests/incremental_delta.rs`) holds
//! the session to that contract: identical output table, identical lineage
//! (same arena node ids), at every thread count.

use crate::exec::{catch_tuple_panic, Executor, NodeTrace, PanicPolicy};
use crate::plan::{JoinType, NodeId, Plan, PlanNode};
use crate::provenance::{Lineage, ProvArena, ProvId, TupleId};
use crate::{PipelineError, Result};
use nde_data::fxhash::FxHashMap;
use nde_data::{join_key_matches, Column, Field, Table, Value};

/// One single-tuple change to a named source table.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Overwrite one cell of one source row.
    Update {
        /// Source table name (as registered in the plan).
        source: String,
        /// Row index within the source table.
        row: usize,
        /// Column to overwrite.
        column: String,
        /// The new value (type-checked against the column).
        value: Value,
    },
    /// Append one row to a source table.
    Insert {
        /// Source table name.
        source: String,
        /// The new row, one value per column.
        values: Vec<Value>,
    },
    /// Remove one row from a source table (later rows shift down).
    Delete {
        /// Source table name.
        source: String,
        /// Row index to remove.
        row: usize,
    },
}

impl Delta {
    /// The source table this delta targets.
    pub fn source(&self) -> &str {
        match self {
            Delta::Update { source, .. }
            | Delta::Insert { source, .. }
            | Delta::Delete { source, .. } => source,
        }
    }
}

/// How a consumer of pipeline runs reacts to accepted fixes: re-execute
/// from scratch, or maintain the run incrementally via [`PipelineSession`].
/// Both modes produce bit-identical results; `Incremental` trades the
/// per-fix full re-execution for delta propagation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Re-run the pipeline after every accepted fix (the seed behavior).
    #[default]
    Rerun,
    /// Maintain the executed run with [`PipelineSession::apply`].
    Incremental,
}

/// Which propagation path an [`PipelineSession::apply`] call took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaPath {
    /// Cells patched in place; routing and provenance untouched.
    CellPatch,
    /// Routing re-decided along the changed tuple's reach; arena replayed.
    Splice,
    /// Full re-execution (routing-relevant update, or an incremental path
    /// that could not complete).
    Rerun,
}

/// Counters over a session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Deltas applied successfully.
    pub applied: usize,
    /// Applies that took [`DeltaPath::CellPatch`].
    pub cell_patches: usize,
    /// Applies that took [`DeltaPath::Splice`].
    pub splices: usize,
    /// Applies that fell back to [`DeltaPath::Rerun`].
    pub reruns: usize,
    /// Output rows rewritten incrementally (patched or spliced at the
    /// root), summed over all applies.
    pub rows_patched: usize,
}

/// What one [`PipelineSession::apply`] did to the root output.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// The propagation path taken.
    pub path: DeltaPath,
    /// Root output rows whose content changed (cell patch), were newly
    /// produced (splice), or all rows (rerun). Ascending.
    pub affected_rows: Vec<usize>,
    /// For [`DeltaPath::Splice`]: where each *old* root row went
    /// (`None` = row no longer exists). Absent on the other paths (cell
    /// patch keeps rows in place; rerun invalidates all row identity).
    pub row_map: Option<Vec<Option<usize>>>,
}

/// Per-node row bookkeeping for a splice: how the node's old output rows
/// map into its new output, which new rows have no old counterpart, and
/// the new row count. Maps are monotone (old row order is preserved).
#[derive(Debug, Clone)]
struct NodeDelta {
    /// `map[old_row]` = new row, or `None` if the row disappeared.
    map: Vec<Option<usize>>,
    /// New rows with no old counterpart, ascending.
    inserted: Vec<usize>,
    /// New output length.
    new_len: usize,
    /// Fast path: `map` is the identity and nothing was inserted.
    identity: bool,
}

impl NodeDelta {
    fn identity(len: usize) -> NodeDelta {
        NodeDelta {
            map: (0..len).map(Some).collect(),
            inserted: Vec::new(),
            new_len: len,
            identity: true,
        }
    }

    /// `inv[new_row]` = the old row that became it, if any.
    fn inverse(&self) -> Vec<Option<usize>> {
        let mut inv = vec![None; self.new_len];
        for (old, new) in self.map.iter().enumerate() {
            if let Some(n) = new {
                inv[*n] = Some(old);
            }
        }
        inv
    }
}

/// Affected-row/tainted-column state one node contributes during a cell
/// patch walk. Nodes without state are untouched by the update.
#[derive(Debug, Clone, Default)]
struct PatchState {
    /// Output rows whose content changed, ascending.
    affected: Vec<usize>,
    /// Columns (in this node's output schema) whose values may differ.
    tainted: Vec<String>,
}

/// Everything a successful cell-patch walk produced, staged for commit.
struct CellPatchPlan {
    new_tables: FxHashMap<usize, Table>,
    root_affected: Vec<usize>,
}

/// Everything a successful splice walk produced, staged for commit.
struct SplicePlan {
    new_tables: FxHashMap<usize, Table>,
    new_traces: FxHashMap<usize, NodeTrace>,
    root_delta: NodeDelta,
}

/// Run `f` under the executor's panic guard, mapping a panic to a typed
/// error (the caller falls back to a full rerun, which reproduces the
/// executor's own report for the same failure).
fn guarded<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match catch_tuple_panic(f) {
        Ok(r) => r,
        Err(msg) => Err(PipelineError::Delta(format!(
            "operator panicked during delta propagation: {msg}"
        ))),
    }
}

/// The right-side output column name under the join rename rule: the key is
/// dropped; a clash with a left column gets a `_right` suffix.
fn right_out_name(left: &Table, name: &str) -> String {
    if left.schema().contains(name) {
        format!("{name}_right")
    } else {
        name.to_string()
    }
}

fn table_of<'a>(
    staged: &'a FxHashMap<usize, Table>,
    base: &'a FxHashMap<usize, Table>,
    idx: usize,
) -> &'a Table {
    staged
        .get(&idx)
        .unwrap_or_else(|| base.get(&idx).expect("node table present"))
}

/// Best fuzzy match for `lv` over the whole right table: ascending rows,
/// strict improvement — exactly [`crate::fuzzy::fuzzy_join`]'s kernel
/// (lowest right row among maximal similarities wins).
fn fuzzy_best(lv: &str, right: &Table, right_key: &str, threshold: f64) -> Result<Option<usize>> {
    let mut best: Option<(usize, f64)> = None;
    for rn in 0..right.n_rows() {
        if let Value::Str(rv) = right.get(rn, right_key)? {
            let sim = crate::fuzzy::similarity(lv, &rv);
            if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((rn, sim));
            }
        }
    }
    Ok(best.map(|(r, _)| r))
}

/// A live, incrementally maintainable pipeline run.
///
/// [`PipelineSession::build`] executes the plan once (with provenance and
/// routing traces); [`PipelineSession::apply`] then folds single-tuple
/// source changes into the run. After every apply — whichever
/// [`DeltaPath`] it takes — [`PipelineSession::table`] and
/// [`PipelineSession::lineage`] are bit-identical to a fresh
/// [`Executor::run`] over the mutated inputs.
#[derive(Debug, Clone)]
pub struct PipelineSession {
    executor: Executor,
    plan: Plan,
    root: NodeId,
    source_names: Vec<String>,
    /// Current source tables, indexed like `source_names`.
    inputs: Vec<Table>,
    /// Node ids in first-evaluation order (children before parents).
    order: Vec<usize>,
    traces: FxHashMap<usize, NodeTrace>,
    tables: FxHashMap<usize, Table>,
    provs: FxHashMap<usize, Vec<ProvId>>,
    arena: ProvArena,
    stats: DeltaStats,
    /// Set when a fallback rerun failed: the cached state no longer matches
    /// the mutated inputs, so further applies are refused.
    poisoned: bool,
}

impl PipelineSession {
    /// Execute `root` of `plan` over `inputs` and capture the run for
    /// incremental maintenance. Provenance tracking is forced on (the row
    /// maps and arena replay depend on it); the executor must use
    /// [`PanicPolicy::FailFast`] — quarantining rewrites routing per policy,
    /// which delta propagation does not model.
    pub fn build(
        executor: &Executor,
        plan: &Plan,
        root: NodeId,
        inputs: &[(&str, &Table)],
    ) -> Result<PipelineSession> {
        if executor.panic_policy() != PanicPolicy::FailFast {
            return Err(PipelineError::Delta(
                "incremental maintenance requires PanicPolicy::FailFast".into(),
            ));
        }
        let executor = executor.clone().with_provenance(true);
        let source_names: Vec<String> =
            plan.source_names().into_iter().map(str::to_owned).collect();
        let mut by_name: FxHashMap<&str, &Table> = FxHashMap::default();
        for (name, table) in inputs {
            by_name.insert(name, table);
        }
        let owned: Vec<Table> = source_names
            .iter()
            .map(|n| {
                by_name
                    .get(n.as_str())
                    .map(|t| (*t).clone())
                    .ok_or_else(|| PipelineError::MissingInput(n.clone()))
            })
            .collect::<Result<_>>()?;
        let (out, trace, memo) = executor.run_traced(plan, root, inputs)?;
        let lineage = out.provenance.expect("provenance forced on");
        let mut tables = FxHashMap::default();
        let mut provs = FxHashMap::default();
        for (idx, (table, prov)) in memo {
            tables.insert(idx, table);
            provs.insert(idx, prov.expect("provenance forced on"));
        }
        Ok(PipelineSession {
            executor,
            plan: plan.clone(),
            root,
            source_names,
            inputs: owned,
            order: trace.order,
            traces: trace.nodes,
            tables,
            provs,
            arena: lineage.arena.clone(),
            stats: DeltaStats::default(),
            poisoned: false,
        })
    }

    /// The root output table, as maintained.
    pub fn table(&self) -> &Table {
        self.tables.get(&self.root.index()).expect("root present")
    }

    /// The root lineage, assembled from the maintained arena and row ids.
    /// Bit-identical (same arena nodes, same ids) to a fresh traced run
    /// over the current inputs.
    pub fn lineage(&self) -> Lineage {
        Lineage::new(
            self.source_names.clone(),
            self.arena.clone(),
            self.provs
                .get(&self.root.index())
                .expect("root present")
                .clone(),
        )
    }

    /// The current (maintained) copy of a source table.
    pub fn input(&self, name: &str) -> Option<&Table> {
        let i = self.source_names.iter().position(|s| s == name)?;
        Some(&self.inputs[i])
    }

    /// Source names in [`TupleId::source`] order.
    pub fn source_names(&self) -> &[String] {
        &self.source_names
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    fn source_index(&self, name: &str) -> Result<usize> {
        self.source_names
            .iter()
            .position(|s| s == name)
            .ok_or_else(|| PipelineError::Delta(format!("unknown source table `{name}`")))
    }

    /// Fold one source change into the run. Validation failures (unknown
    /// source/column, out-of-bounds row, type mismatch) leave the session
    /// untouched; after a successful apply the session state matches a
    /// fresh run over the mutated inputs exactly.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaOutcome> {
        if self.poisoned {
            return Err(PipelineError::Delta(
                "session poisoned by an earlier failed rerun; rebuild it".into(),
            ));
        }
        let src = self.source_index(delta.source())?;
        match delta {
            Delta::Update {
                row, column, value, ..
            } => {
                if *row >= self.inputs[src].n_rows() {
                    return Err(PipelineError::Delta(format!(
                        "update row {row} out of bounds for `{}` ({} rows)",
                        delta.source(),
                        self.inputs[src].n_rows()
                    )));
                }
                // `set` validates column and type before mutating.
                self.inputs[src].set(*row, column, value.clone())?;
                match self.cell_patch_walk(src, *row, column) {
                    Ok(Some(plan)) => Ok(self.commit_cell_patch(plan)),
                    // Structural change or an operator failure on the new
                    // value: a full rerun reproduces rerun semantics
                    // (including the error report) exactly.
                    Ok(None) | Err(_) => self.rerun_fallback(),
                }
            }
            Delta::Insert { values, .. } => {
                let old_len = self.inputs[src].n_rows();
                // `push_row` validates arity and types atomically.
                self.inputs[src].push_row(values.clone())?;
                let mut source_delta = NodeDelta::identity(old_len);
                source_delta.inserted.push(old_len);
                source_delta.new_len = old_len + 1;
                source_delta.identity = false;
                match self.splice_walk(src, &source_delta) {
                    Ok(Some(plan)) => Ok(self.commit_splice(plan)),
                    Ok(None) | Err(_) => self.rerun_fallback(),
                }
            }
            Delta::Delete { row, .. } => {
                let old_len = self.inputs[src].n_rows();
                if *row >= old_len {
                    return Err(PipelineError::Delta(format!(
                        "delete row {row} out of bounds for `{}` ({old_len} rows)",
                        delta.source(),
                    )));
                }
                let survivors: Vec<usize> = (0..old_len).filter(|&i| i != *row).collect();
                self.inputs[src] = self.inputs[src].take(&survivors)?;
                let map: Vec<Option<usize>> = (0..old_len)
                    .map(|i| match i.cmp(row) {
                        std::cmp::Ordering::Less => Some(i),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some(i - 1),
                    })
                    .collect();
                let source_delta = NodeDelta {
                    map,
                    inserted: Vec::new(),
                    new_len: old_len - 1,
                    identity: false,
                };
                match self.splice_walk(src, &source_delta) {
                    Ok(Some(plan)) => Ok(self.commit_splice(plan)),
                    Ok(None) | Err(_) => self.rerun_fallback(),
                }
            }
        }
    }

    /// Full re-execution over the mutated inputs: the fallback that makes
    /// every apply equivalent to rerun semantics. A failure here (e.g. the
    /// new value makes an operator error) poisons the session — the cached
    /// state no longer matches the inputs.
    fn rerun_fallback(&mut self) -> Result<DeltaOutcome> {
        let refs: Vec<(&str, &Table)> = self
            .source_names
            .iter()
            .map(String::as_str)
            .zip(self.inputs.iter())
            .collect();
        let run = self.executor.run_traced(&self.plan, self.root, &refs);
        match run {
            Ok((out, trace, memo)) => {
                let lineage = out.provenance.expect("provenance forced on");
                self.order = trace.order;
                self.traces = trace.nodes;
                self.tables.clear();
                self.provs.clear();
                for (idx, (table, prov)) in memo {
                    self.tables.insert(idx, table);
                    self.provs.insert(idx, prov.expect("provenance forced on"));
                }
                self.arena = lineage.arena.clone();
                self.stats.applied += 1;
                self.stats.reruns += 1;
                Ok(DeltaOutcome {
                    path: DeltaPath::Rerun,
                    affected_rows: (0..self.table().n_rows()).collect(),
                    row_map: None,
                })
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn commit_cell_patch(&mut self, plan: CellPatchPlan) -> DeltaOutcome {
        for (idx, t) in plan.new_tables {
            self.tables.insert(idx, t);
        }
        self.stats.applied += 1;
        self.stats.cell_patches += 1;
        self.stats.rows_patched += plan.root_affected.len();
        DeltaOutcome {
            path: DeltaPath::CellPatch,
            affected_rows: plan.root_affected,
            row_map: None,
        }
    }

    fn commit_splice(&mut self, plan: SplicePlan) -> DeltaOutcome {
        for (idx, t) in plan.new_tables {
            self.tables.insert(idx, t);
        }
        for (idx, tr) in plan.new_traces {
            self.traces.insert(idx, tr);
        }
        self.replay_arena();
        self.stats.applied += 1;
        self.stats.splices += 1;
        self.stats.rows_patched += plan.root_delta.inserted.len();
        DeltaOutcome {
            path: DeltaPath::Splice,
            affected_rows: plan.root_delta.inserted,
            row_map: Some(plan.root_delta.map),
        }
    }

    /// Rebuild the provenance arena by replaying every node's interning in
    /// the recorded evaluation order. Hash-consing is deterministic in
    /// interning order, so the result is bit-identical to the arena a fresh
    /// traced run over the current inputs would build.
    fn replay_arena(&mut self) {
        let mut arena = ProvArena::new();
        let mut provs: FxHashMap<usize, Vec<ProvId>> = FxHashMap::default();
        for &idx in &self.order {
            let id = NodeId(idx);
            let children = self.plan.children(id).expect("node present");
            let trace = self.traces.get(&idx).expect("trace present");
            let prov: Vec<ProvId> = match trace {
                NodeTrace::Source { source } => {
                    let n = self.tables.get(&idx).expect("table present").n_rows();
                    (0..n)
                        .map(|r| arena.var(TupleId::new(*source, r as u32)))
                        .collect()
                }
                NodeTrace::Join { pairs } => {
                    let lp = &provs[&children[0].index()];
                    let rp = &provs[&children[1].index()];
                    pairs
                        .iter()
                        .map(|&(l, r)| match r {
                            Some(r) => arena.times(lp[l], rp[r]),
                            None => lp[l],
                        })
                        .collect()
                }
                NodeTrace::FuzzyJoin { pairs } => {
                    let lp = &provs[&children[0].index()];
                    let rp = &provs[&children[1].index()];
                    pairs
                        .iter()
                        .map(|&(l, r)| arena.times(lp[l], rp[r]))
                        .collect()
                }
                NodeTrace::Filter { kept } | NodeTrace::Project { kept } => {
                    let cp = &provs[&children[0].index()];
                    kept.iter().map(|&k| cp[k]).collect()
                }
                NodeTrace::Select => provs[&children[0].index()].clone(),
                NodeTrace::Distinct { first_of, owner } => {
                    let cp = &provs[&children[0].index()];
                    let mut alts: Vec<Vec<ProvId>> = vec![Vec::new(); first_of.len()];
                    for (row, &slot) in owner.iter().enumerate() {
                        alts[slot].push(cp[row]);
                    }
                    alts.into_iter().map(|a| arena.plus(&a)).collect()
                }
                NodeTrace::Concat { .. } => {
                    let mut lp = provs[&children[0].index()].clone();
                    lp.extend_from_slice(&provs[&children[1].index()]);
                    lp
                }
            };
            provs.insert(idx, prov);
        }
        self.arena = arena;
        self.provs = provs;
    }

    /// The cell-patch walk: propagate `(source, row, column)` taint through
    /// the DAG without re-deciding any routing. `Ok(None)` means a tainted
    /// column feeds a routing decision (join/distinct key, filter
    /// predicate) — the caller falls back to a rerun. `Err` means an
    /// operator failed re-evaluating a tainted projection (rerun reproduces
    /// the report).
    fn cell_patch_walk(
        &self,
        src: usize,
        row: usize,
        column: &str,
    ) -> Result<Option<CellPatchPlan>> {
        let mut states: FxHashMap<usize, PatchState> = FxHashMap::default();
        let mut new_tables: FxHashMap<usize, Table> = FxHashMap::default();
        for &idx in &self.order {
            let id = NodeId(idx);
            let trace = self.traces.get(&idx).expect("trace present");
            let children = self.plan.children(id)?;
            // Read phase: compute this node's state and the cell values to
            // copy from (already patched) child tables.
            let mut state = PatchState::default();
            let mut patches: Vec<(usize, String, Value)> = Vec::new();
            match (self.plan.node(id)?, trace) {
                (PlanNode::Source { .. }, NodeTrace::Source { source }) => {
                    if *source as usize == src {
                        state.affected.push(row);
                        state.tainted.push(column.to_string());
                        // Write phase below swaps in the mutated input.
                    }
                }
                (
                    PlanNode::Join {
                        left_key,
                        right_key,
                        ..
                    },
                    NodeTrace::Join { .. },
                )
                | (
                    PlanNode::FuzzyJoin {
                        left_key,
                        right_key,
                        ..
                    },
                    NodeTrace::FuzzyJoin { .. },
                ) => {
                    let ls = states.get(&children[0].index());
                    let rs = states.get(&children[1].index());
                    if ls.is_none() && rs.is_none() {
                        continue;
                    }
                    // A tainted join key can change the match set (and for
                    // fuzzy joins, similarities): structural.
                    if ls.is_some_and(|s| s.tainted.iter().any(|c| c == left_key))
                        || rs.is_some_and(|s| s.tainted.iter().any(|c| c == right_key))
                    {
                        return Ok(None);
                    }
                    let lt = table_of(&new_tables, &self.tables, children[0].index());
                    let rt = table_of(&new_tables, &self.tables, children[1].index());
                    // Normalize both join kinds to (left, Option<right>).
                    let pairs: Vec<(usize, Option<usize>)> = match trace {
                        NodeTrace::Join { pairs } => pairs.clone(),
                        NodeTrace::FuzzyJoin { pairs } => {
                            pairs.iter().map(|&(l, r)| (l, Some(r))).collect()
                        }
                        _ => unreachable!("matched join traces above"),
                    };
                    let l_aff = affected_mask(ls, lt.n_rows());
                    let r_aff = affected_mask(rs, rt.n_rows());
                    let renames: Vec<(String, String)> = rs
                        .map(|s| {
                            s.tainted
                                .iter()
                                .map(|c| (c.clone(), right_out_name(lt, c)))
                                .collect()
                        })
                        .unwrap_or_default();
                    for (out, &(l, r)) in pairs.iter().enumerate() {
                        let left_hit = l_aff[l];
                        let right_hit = r.is_some_and(|r| r_aff[r]);
                        if !left_hit && !right_hit {
                            continue;
                        }
                        state.affected.push(out);
                        if left_hit {
                            if let Some(ls) = ls {
                                for c in &ls.tainted {
                                    patches.push((out, c.clone(), lt.get(l, c)?));
                                }
                            }
                        }
                        if let Some(r) = r {
                            if r_aff[r] {
                                for (c, oc) in &renames {
                                    patches.push((out, oc.clone(), rt.get(r, c)?));
                                }
                            }
                        }
                    }
                    if let Some(ls) = ls {
                        state.tainted.extend(ls.tainted.iter().cloned());
                    }
                    state.tainted.extend(renames.into_iter().map(|(_, oc)| oc));
                }
                (PlanNode::Filter { predicate, .. }, NodeTrace::Filter { kept }) => {
                    let Some(cs) = states.get(&children[0].index()) else {
                        continue;
                    };
                    if predicate
                        .columns()
                        .iter()
                        .any(|c| cs.tainted.iter().any(|t| t == c))
                    {
                        return Ok(None);
                    }
                    let ct = table_of(&new_tables, &self.tables, children[0].index());
                    let c_aff = affected_mask(Some(cs), ct.n_rows());
                    for (out, &k) in kept.iter().enumerate() {
                        if c_aff[k] {
                            state.affected.push(out);
                            for c in &cs.tainted {
                                patches.push((out, c.clone(), ct.get(k, c)?));
                            }
                        }
                    }
                    state.tainted = cs.tainted.clone();
                }
                (PlanNode::Project { column, expr, .. }, NodeTrace::Project { kept }) => {
                    let Some(cs) = states.get(&children[0].index()) else {
                        continue;
                    };
                    let ct = table_of(&new_tables, &self.tables, children[0].index());
                    let c_aff = affected_mask(Some(cs), ct.n_rows());
                    let recompute = expr
                        .columns()
                        .iter()
                        .any(|c| cs.tainted.iter().any(|t| t == c));
                    for (out, &k) in kept.iter().enumerate() {
                        if c_aff[k] {
                            state.affected.push(out);
                            for c in &cs.tainted {
                                patches.push((out, c.clone(), ct.get(k, c)?));
                            }
                            if recompute {
                                let v = guarded(|| expr.eval(ct, k))?;
                                patches.push((out, column.clone(), v));
                            }
                        }
                    }
                    state.tainted = cs.tainted.clone();
                    if recompute {
                        state.tainted.push(column.clone());
                    }
                }
                (PlanNode::SelectColumns { columns, .. }, NodeTrace::Select) => {
                    let Some(cs) = states.get(&children[0].index()) else {
                        continue;
                    };
                    let visible: Vec<String> = cs
                        .tainted
                        .iter()
                        .filter(|c| columns.contains(c))
                        .cloned()
                        .collect();
                    if visible.is_empty() {
                        // The change is projected away: nothing downstream.
                        continue;
                    }
                    let ct = table_of(&new_tables, &self.tables, children[0].index());
                    for &r in &cs.affected {
                        state.affected.push(r);
                        for c in &visible {
                            patches.push((r, c.clone(), ct.get(r, c)?));
                        }
                    }
                    state.tainted = visible;
                }
                (PlanNode::Distinct { key, .. }, NodeTrace::Distinct { first_of, .. }) => {
                    let Some(cs) = states.get(&children[0].index()) else {
                        continue;
                    };
                    if cs.tainted.iter().any(|c| c == key) {
                        return Ok(None);
                    }
                    let ct = table_of(&new_tables, &self.tables, children[0].index());
                    let c_aff = affected_mask(Some(cs), ct.n_rows());
                    // Only changes to a group's surviving first occurrence
                    // are visible; absorbed duplicates contribute nothing.
                    for (slot, &f) in first_of.iter().enumerate() {
                        if c_aff[f] {
                            state.affected.push(slot);
                            for c in &cs.tainted {
                                patches.push((slot, c.clone(), ct.get(f, c)?));
                            }
                        }
                    }
                    state.tainted = cs.tainted.clone();
                }
                (PlanNode::Concat { .. }, NodeTrace::Concat { left_rows }) => {
                    let ls = states.get(&children[0].index());
                    let rs = states.get(&children[1].index());
                    if ls.is_none() && rs.is_none() {
                        continue;
                    }
                    let lt = table_of(&new_tables, &self.tables, children[0].index());
                    let rt = table_of(&new_tables, &self.tables, children[1].index());
                    if let Some(ls) = ls {
                        for &r in &ls.affected {
                            state.affected.push(r);
                            for c in &ls.tainted {
                                patches.push((r, c.clone(), lt.get(r, c)?));
                            }
                        }
                        state.tainted.extend(ls.tainted.iter().cloned());
                    }
                    if let Some(rs) = rs {
                        for &r in &rs.affected {
                            state.affected.push(r + left_rows);
                            for c in &rs.tainted {
                                patches.push((r + left_rows, c.clone(), rt.get(r, c)?));
                            }
                        }
                        for c in &rs.tainted {
                            if !state.tainted.contains(c) {
                                state.tainted.push(c.clone());
                            }
                        }
                    }
                }
                (node, trace) => {
                    return Err(PipelineError::Delta(format!(
                        "trace/plan mismatch at node {idx}: {node:?} vs {trace:?}"
                    )))
                }
            }
            if state.affected.is_empty() {
                continue;
            }
            // Write phase: patch a copy of this node's table.
            let mut t = if matches!(trace, NodeTrace::Source { source } if *source as usize == src)
            {
                self.inputs[src].clone()
            } else {
                let mut t = table_of(&new_tables, &self.tables, idx).clone();
                for (r, c, v) in patches {
                    t.set(r, &c, v)?;
                }
                t
            };
            t.set_name(self.tables.get(&idx).expect("table present").name());
            new_tables.insert(idx, t);
            states.insert(idx, state);
        }
        let root_affected = states
            .remove(&self.root.index())
            .map(|s| s.affected)
            .unwrap_or_default();
        Ok(Some(CellPatchPlan {
            new_tables,
            root_affected,
        }))
    }

    /// The splice walk: push a one-row insert/delete at source `src`
    /// through the DAG, re-deciding routing only where the changed row can
    /// reach. `Ok(None)` / `Err` mean the walk could not complete (rare
    /// structural edge or an operator failure on a spliced row); the caller
    /// falls back to a rerun.
    fn splice_walk(&self, src: usize, source_delta: &NodeDelta) -> Result<Option<SplicePlan>> {
        let mut deltas: FxHashMap<usize, NodeDelta> = FxHashMap::default();
        let mut new_tables: FxHashMap<usize, Table> = FxHashMap::default();
        let mut new_traces: FxHashMap<usize, NodeTrace> = FxHashMap::default();
        for &idx in &self.order {
            let id = NodeId(idx);
            let trace = self.traces.get(&idx).expect("trace present");
            let children = self.plan.children(id)?;
            let old_table = self.tables.get(&idx).expect("table present");
            let (delta, table, new_trace): (NodeDelta, Option<Table>, Option<NodeTrace>) =
                match (self.plan.node(id)?, trace) {
                    (PlanNode::Source { .. }, NodeTrace::Source { source }) => {
                        if *source as usize == src {
                            let mut t = self.inputs[src].clone();
                            t.set_name(old_table.name());
                            (source_delta.clone(), Some(t), None)
                        } else {
                            (NodeDelta::identity(old_table.n_rows()), None, None)
                        }
                    }
                    (
                        PlanNode::Join {
                            left_key,
                            right_key,
                            how,
                            ..
                        },
                        NodeTrace::Join { pairs },
                    ) => {
                        let ld = &deltas[&children[0].index()];
                        let rd = &deltas[&children[1].index()];
                        if ld.identity && rd.identity {
                            (NodeDelta::identity(pairs.len()), None, None)
                        } else {
                            let lt = table_of(&new_tables, &self.tables, children[0].index());
                            let rt = table_of(&new_tables, &self.tables, children[1].index());
                            let (delta, new_pairs) =
                                splice_join(pairs, ld, rd, lt, rt, left_key, right_key, *how)?;
                            let rk = rt.schema().index_of(right_key)?;
                            let mut t = lt.materialize_join(rt, &new_pairs, rk)?;
                            t.set_name(old_table.name());
                            (delta, Some(t), Some(NodeTrace::Join { pairs: new_pairs }))
                        }
                    }
                    (
                        PlanNode::FuzzyJoin {
                            left_key,
                            right_key,
                            threshold,
                            ..
                        },
                        NodeTrace::FuzzyJoin { pairs },
                    ) => {
                        let ld = &deltas[&children[0].index()];
                        let rd = &deltas[&children[1].index()];
                        if ld.identity && rd.identity {
                            (NodeDelta::identity(pairs.len()), None, None)
                        } else {
                            let lt = table_of(&new_tables, &self.tables, children[0].index());
                            let rt = table_of(&new_tables, &self.tables, children[1].index());
                            let (delta, new_pairs) = splice_fuzzy(
                                pairs, ld, rd, lt, rt, left_key, right_key, *threshold,
                            )?;
                            let rk = rt.schema().index_of(right_key)?;
                            let opt: Vec<(usize, Option<usize>)> =
                                new_pairs.iter().map(|&(l, r)| (l, Some(r))).collect();
                            let mut t = lt.materialize_join(rt, &opt, rk)?;
                            t.set_name(old_table.name());
                            (
                                delta,
                                Some(t),
                                Some(NodeTrace::FuzzyJoin { pairs: new_pairs }),
                            )
                        }
                    }
                    (PlanNode::Filter { predicate, .. }, NodeTrace::Filter { kept }) => {
                        let cd = &deltas[&children[0].index()];
                        if cd.identity {
                            (NodeDelta::identity(kept.len()), None, None)
                        } else {
                            let ct = table_of(&new_tables, &self.tables, children[0].index());
                            let inv = cd.inverse();
                            let mut new_kept = Vec::with_capacity(kept.len() + 1);
                            let mut map = vec![None; kept.len()];
                            let mut inserted = Vec::new();
                            let mut kp = 0usize;
                            for (cn, old) in inv.iter().enumerate() {
                                match old {
                                    Some(co) => {
                                        while kp < kept.len() && kept[kp] < *co {
                                            kp += 1;
                                        }
                                        if kp < kept.len() && kept[kp] == *co {
                                            map[kp] = Some(new_kept.len());
                                            new_kept.push(cn);
                                            kp += 1;
                                        }
                                    }
                                    None => {
                                        // A spliced-in row: the predicate
                                        // decides fresh, under the guard.
                                        if guarded(|| predicate.eval_predicate(ct, cn))? {
                                            inserted.push(new_kept.len());
                                            new_kept.push(cn);
                                        }
                                    }
                                }
                            }
                            let mut t = ct.take(&new_kept)?;
                            t.set_name(old_table.name());
                            let delta = NodeDelta {
                                map,
                                inserted,
                                new_len: new_kept.len(),
                                identity: false,
                            };
                            (delta, Some(t), Some(NodeTrace::Filter { kept: new_kept }))
                        }
                    }
                    (PlanNode::Project { column, expr, .. }, NodeTrace::Project { kept }) => {
                        let cd = &deltas[&children[0].index()];
                        if cd.identity {
                            (NodeDelta::identity(kept.len()), None, None)
                        } else {
                            let ct = table_of(&new_tables, &self.tables, children[0].index());
                            // Under FailFast a projection keeps every row.
                            debug_assert!(kept.iter().enumerate().all(|(i, &k)| i == k));
                            if old_table.n_rows() == 0 || ct.n_rows() == 0 {
                                // Empty-side dtype inference diverges from
                                // the recorded column type; let rerun decide.
                                return Ok(None);
                            }
                            let dtype = old_table.schema().field(column)?.dtype;
                            let inv = cd.inverse();
                            let mut col = Column::with_capacity(dtype, ct.n_rows());
                            for (cn, old) in inv.iter().enumerate() {
                                let v = match old {
                                    Some(co) => old_table.get(*co, column)?,
                                    None => guarded(|| expr.eval(ct, cn))?,
                                };
                                col.push(v)
                                    .map_err(|e| PipelineError::Expr(e.to_string()))?;
                            }
                            let mut t = ct.clone();
                            t.add_column(Field::new(column.clone(), dtype), col)?;
                            t.set_name(old_table.name());
                            let delta = cd.clone();
                            let kept_new = (0..t.n_rows()).collect();
                            (delta, Some(t), Some(NodeTrace::Project { kept: kept_new }))
                        }
                    }
                    (PlanNode::SelectColumns { columns, .. }, NodeTrace::Select) => {
                        let cd = &deltas[&children[0].index()];
                        if cd.identity {
                            (NodeDelta::identity(old_table.n_rows()), None, None)
                        } else {
                            let ct = table_of(&new_tables, &self.tables, children[0].index());
                            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                            let mut t = ct.select(&cols)?;
                            t.set_name(old_table.name());
                            (cd.clone(), Some(t), Some(NodeTrace::Select))
                        }
                    }
                    (PlanNode::Distinct { key, .. }, NodeTrace::Distinct { first_of, .. }) => {
                        let cd = &deltas[&children[0].index()];
                        if cd.identity {
                            (NodeDelta::identity(first_of.len()), None, None)
                        } else {
                            let ct = table_of(&new_tables, &self.tables, children[0].index());
                            let (first_new, owner_new) =
                                ct.distinct_by(key, self.executor.threads())?;
                            let mut t = ct.take(&first_new)?;
                            t.set_name(old_table.name());
                            // An old slot survives iff its first occurrence
                            // is still the first occurrence of its group.
                            let mut old_slot_of: FxHashMap<usize, usize> = FxHashMap::default();
                            for (slot, &f) in first_of.iter().enumerate() {
                                old_slot_of.insert(f, slot);
                            }
                            let inv = cd.inverse();
                            let mut map = vec![None; first_of.len()];
                            let mut inserted = Vec::new();
                            for (s_new, &f_new) in first_new.iter().enumerate() {
                                match inv[f_new].and_then(|f_old| old_slot_of.get(&f_old)) {
                                    Some(&s_old) => map[s_old] = Some(s_new),
                                    None => inserted.push(s_new),
                                }
                            }
                            let delta = NodeDelta {
                                map,
                                inserted,
                                new_len: first_new.len(),
                                identity: false,
                            };
                            (
                                delta,
                                Some(t),
                                Some(NodeTrace::Distinct {
                                    first_of: first_new,
                                    owner: owner_new,
                                }),
                            )
                        }
                    }
                    (PlanNode::Concat { .. }, NodeTrace::Concat { left_rows }) => {
                        let ld = &deltas[&children[0].index()];
                        let rd = &deltas[&children[1].index()];
                        if ld.identity && rd.identity {
                            (NodeDelta::identity(old_table.n_rows()), None, None)
                        } else {
                            let lt = table_of(&new_tables, &self.tables, children[0].index());
                            let rt = table_of(&new_tables, &self.tables, children[1].index());
                            let mut t = lt.clone();
                            t.append(rt)?;
                            t.set_name(old_table.name());
                            let mut map = Vec::with_capacity(old_table.n_rows());
                            for i in 0..*left_rows {
                                map.push(ld.map[i]);
                            }
                            for i in *left_rows..old_table.n_rows() {
                                map.push(rd.map[i - left_rows].map(|n| n + ld.new_len));
                            }
                            let mut inserted = ld.inserted.clone();
                            inserted.extend(rd.inserted.iter().map(|&n| n + ld.new_len));
                            let delta = NodeDelta {
                                map,
                                inserted,
                                new_len: ld.new_len + rd.new_len,
                                identity: false,
                            };
                            (
                                delta,
                                Some(t),
                                Some(NodeTrace::Concat {
                                    left_rows: ld.new_len,
                                }),
                            )
                        }
                    }
                    (node, trace) => {
                        return Err(PipelineError::Delta(format!(
                            "trace/plan mismatch at node {idx}: {node:?} vs {trace:?}"
                        )))
                    }
                };
            debug_assert!(
                delta.map.windows(2).all(|w| match (w[0], w[1]) {
                    (Some(a), Some(b)) => a < b,
                    _ => true,
                }),
                "node {idx}: row map must stay monotone"
            );
            if let Some(t) = table {
                debug_assert_eq!(t.n_rows(), delta.new_len, "node {idx}");
                new_tables.insert(idx, t);
            }
            if let Some(tr) = new_trace {
                new_traces.insert(idx, tr);
            }
            deltas.insert(idx, delta);
        }
        let root_delta = deltas.remove(&self.root.index()).expect("root visited");
        Ok(Some(SplicePlan {
            new_tables,
            new_traces,
            root_delta,
        }))
    }
}

/// `mask[child_row]` = the row is affected (empty state = all false).
fn affected_mask(state: Option<&PatchState>, len: usize) -> Vec<bool> {
    let mut mask = vec![false; len];
    if let Some(s) = state {
        for &r in &s.affected {
            if r < len {
                mask[r] = true;
            }
        }
    }
    mask
}

/// A join's match list: `(left_row, Option<right_row>)`, l-major, right
/// rows ascending within a left group, `None` padding under left join.
type JoinPairs = Vec<(usize, Option<usize>)>;

/// Re-decide a hash/left join's pairs after its children changed. Old
/// matches are remapped (preserving their ascending right-row order);
/// spliced-in right rows are key-tested against every surviving left row
/// and merged by row index; spliced-in left rows probe the whole right
/// side — reproducing the executor's "all matches ascending by right row,
/// pad unmatched under left join" contract exactly.
#[allow(clippy::too_many_arguments)]
fn splice_join(
    pairs: &[(usize, Option<usize>)],
    ld: &NodeDelta,
    rd: &NodeDelta,
    lt: &Table,
    rt: &Table,
    left_key: &str,
    right_key: &str,
    how: JoinType,
) -> Result<(NodeDelta, JoinPairs)> {
    let outer = how == JoinType::Left;
    let l_inv = ld.inverse();
    let ins_right: Vec<(usize, Value)> = rd
        .inserted
        .iter()
        .map(|&r| Ok((r, rt.get(r, right_key)?)))
        .collect::<Result<_>>()?;
    let mut new_pairs: Vec<(usize, Option<usize>)> = Vec::with_capacity(pairs.len() + 1);
    let mut map = vec![None; pairs.len()];
    let mut inserted = Vec::new();
    let mut p = 0usize; // cursor over the l-major old pair list
    for (ln, old_left) in l_inv.iter().enumerate() {
        match old_left {
            Some(lo) => {
                while p < pairs.len() && pairs[p].0 < *lo {
                    p += 1; // pairs of left rows that no longer exist
                }
                let gstart = p;
                while p < pairs.len() && pairs[p].0 == *lo {
                    p += 1;
                }
                // Surviving old matches, remapped; order stays ascending
                // because row maps are monotone.
                let mut matches: Vec<(usize, Option<usize>)> = Vec::new();
                for (oi, &(_, right)) in pairs.iter().enumerate().take(p).skip(gstart) {
                    if let Some(ro) = right {
                        if let Some(rn) = rd.map[ro] {
                            matches.push((rn, Some(oi)));
                        }
                    }
                }
                if !ins_right.is_empty() {
                    let lkey = lt.get(ln, left_key)?;
                    for (rn, rv) in &ins_right {
                        if join_key_matches(&lkey, rv) {
                            let pos = matches.partition_point(|&(m, _)| m < *rn);
                            matches.insert(pos, (*rn, None));
                        }
                    }
                }
                if matches.is_empty() {
                    if outer {
                        let ni = new_pairs.len();
                        new_pairs.push((ln, None));
                        // The pad is value-preserving only if the old row
                        // was already a pad (its right side stays null).
                        if p - gstart == 1 && pairs[gstart].1.is_none() {
                            map[gstart] = Some(ni);
                        } else {
                            inserted.push(ni);
                        }
                    }
                } else {
                    for (rn, oi) in matches {
                        let ni = new_pairs.len();
                        new_pairs.push((ln, Some(rn)));
                        match oi {
                            Some(oi) => map[oi] = Some(ni),
                            None => inserted.push(ni),
                        }
                    }
                }
            }
            None => {
                // A spliced-in left row probes the whole right side.
                let lkey = lt.get(ln, left_key)?;
                let mut any = false;
                for rn in 0..rt.n_rows() {
                    if join_key_matches(&lkey, &rt.get(rn, right_key)?) {
                        inserted.push(new_pairs.len());
                        new_pairs.push((ln, Some(rn)));
                        any = true;
                    }
                }
                if !any && outer {
                    inserted.push(new_pairs.len());
                    new_pairs.push((ln, None));
                }
            }
        }
    }
    let delta = NodeDelta {
        map,
        inserted,
        new_len: new_pairs.len(),
        identity: false,
    };
    Ok((delta, new_pairs))
}

/// Re-decide a fuzzy join's best-match pairs. A surviving old winner stays
/// maximal among surviving candidates (relative order is preserved, so the
/// lowest-row maximal match cannot change by deletion of other rows); it
/// is only challenged by spliced-in right rows, compared with the kernel's
/// strict-improvement rule (higher similarity wins; equal similarity goes
/// to the lower row index). A dead winner or spliced-in left row triggers
/// a full rescan of the right side.
#[allow(clippy::too_many_arguments)]
fn splice_fuzzy(
    pairs: &[(usize, usize)],
    ld: &NodeDelta,
    rd: &NodeDelta,
    lt: &Table,
    rt: &Table,
    left_key: &str,
    right_key: &str,
    threshold: f64,
) -> Result<(NodeDelta, Vec<(usize, usize)>)> {
    use crate::fuzzy::similarity;
    let l_inv = ld.inverse();
    let ins_right: Vec<(usize, String)> = rd
        .inserted
        .iter()
        .filter_map(|&r| match rt.get(r, right_key) {
            Ok(Value::Str(s)) => Some(Ok((r, s))),
            Ok(_) => None, // null keys are never candidates
            Err(e) => Some(Err(PipelineError::from(e))),
        })
        .collect::<Result<_>>()?;
    // Challenge `best` with the spliced-in right rows under the kernel's
    // visit-ascending, strict-improvement rule.
    let challenge = |lv: &str, best: Option<usize>| -> Result<Option<usize>> {
        let mut best: Option<(usize, f64)> = match best {
            Some(rn) => match rt.get(rn, right_key)? {
                Value::Str(rv) => Some((rn, similarity(lv, &rv))),
                _ => None,
            },
            None => None,
        };
        for (rn, rv) in &ins_right {
            let sim = similarity(lv, rv);
            if sim < threshold {
                continue;
            }
            best = match best {
                None => Some((*rn, sim)),
                Some((bn, bs)) => {
                    if sim > bs || (sim == bs && *rn < bn) {
                        Some((*rn, sim))
                    } else {
                        Some((bn, bs))
                    }
                }
            };
        }
        Ok(best.map(|(rn, _)| rn))
    };
    let mut new_pairs: Vec<(usize, usize)> = Vec::with_capacity(pairs.len() + 1);
    let mut map = vec![None; pairs.len()];
    let mut inserted = Vec::new();
    let mut p = 0usize; // cursor over the left-ascending old pair list
    for (ln, old_left) in l_inv.iter().enumerate() {
        let lv = match lt.get(ln, left_key)? {
            Value::Str(s) => s,
            _ => continue, // null left keys never match
        };
        let winner = match old_left {
            Some(lo) => {
                while p < pairs.len() && pairs[p].0 < *lo {
                    p += 1;
                }
                let old_pair = (p < pairs.len() && pairs[p].0 == *lo).then(|| {
                    let oi = p;
                    p += 1;
                    oi
                });
                match old_pair {
                    Some(oi) => match rd.map[pairs[oi].1] {
                        // Old winner survived: only new rows can beat it.
                        Some(rn) => challenge(&lv, Some(rn))?.map(|w| (w, Some(oi), rn)),
                        // Old winner died: rescan.
                        None => fuzzy_best(&lv, rt, right_key, threshold)?
                            .map(|w| (w, Some(oi), usize::MAX)),
                    },
                    // Previously unmatched: survivors all scored below the
                    // threshold, so only spliced-in rows can match now.
                    None => challenge(&lv, None)?.map(|w| (w, None, usize::MAX)),
                }
            }
            None => fuzzy_best(&lv, rt, right_key, threshold)?.map(|w| (w, None, usize::MAX)),
        };
        if let Some((rn, old_pair, old_rn)) = winner {
            let ni = new_pairs.len();
            new_pairs.push((ln, rn));
            match old_pair {
                // Value-preserving only when the partner is unchanged.
                Some(oi) if rn == old_rn => map[oi] = Some(ni),
                _ => inserted.push(ni),
            }
        }
    }
    let delta = NodeDelta {
        map,
        inserted,
        new_len: new_pairs.len(),
        identity: false,
    };
    Ok((delta, new_pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use nde_data::generate::hiring::HiringScenario;
    use nde_data::{DataType, Field, Schema};

    fn hiring_inputs(s: &HiringScenario) -> Vec<(&'static str, &Table)> {
        vec![
            ("train_df", &s.letters),
            ("jobdetail_df", &s.job_details),
            ("social_df", &s.social),
        ]
    }

    /// Assert the session state is bit-identical to a fresh traced run over
    /// the session's current inputs — table, lineage (same arena ids), and
    /// every intermediate.
    fn assert_matches_fresh(session: &PipelineSession) {
        let inputs: Vec<(&str, &Table)> = session
            .source_names
            .iter()
            .map(String::as_str)
            .zip(session.inputs.iter())
            .collect();
        let fresh = session
            .executor
            .run_traced(&session.plan, session.root, &inputs)
            .expect("fresh run succeeds");
        let (out, trace, memo) = fresh;
        assert_eq!(session.table(), &out.table, "root table diverged");
        let lineage = out.provenance.expect("provenance on");
        assert_eq!(session.lineage(), lineage, "lineage diverged");
        assert_eq!(session.order, trace.order, "evaluation order diverged");
        for (idx, tr) in &trace.nodes {
            assert_eq!(
                session.traces.get(idx),
                Some(tr),
                "trace diverged at node {idx}"
            );
        }
        for (idx, (table, prov)) in &memo {
            assert_eq!(
                session.tables.get(idx),
                Some(table),
                "table diverged at node {idx}"
            );
            assert_eq!(
                session.provs.get(idx).cloned(),
                prov.clone(),
                "provenance ids diverged at node {idx}"
            );
        }
    }

    #[test]
    fn build_captures_a_run() {
        let s = HiringScenario::generate(60, 3);
        let (plan, root) = Plan::hiring_pipeline();
        let session =
            PipelineSession::build(&Executor::new(), &plan, root, &hiring_inputs(&s)).unwrap();
        assert!(session.table().n_rows() > 0);
        assert_eq!(session.lineage().n_rows(), session.table().n_rows());
        assert_matches_fresh(&session);
    }

    #[test]
    fn build_rejects_skip_and_record() {
        let s = HiringScenario::generate(20, 3);
        let (plan, root) = Plan::hiring_pipeline();
        let err = PipelineSession::build(
            &Executor::new().with_panic_policy(PanicPolicy::SkipAndRecord),
            &plan,
            root,
            &hiring_inputs(&s),
        );
        assert!(matches!(err, Err(PipelineError::Delta(_))));
    }

    #[test]
    fn update_takes_cell_patch_and_matches_fresh() {
        let s = HiringScenario::generate(80, 7);
        let (plan, root) = Plan::hiring_pipeline();
        let mut session =
            PipelineSession::build(&Executor::new(), &plan, root, &hiring_inputs(&s)).unwrap();
        let outcome = session
            .apply(&Delta::Update {
                source: "train_df".into(),
                row: 5,
                column: "employer_rating".into(),
                value: Value::Float(9.5),
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::CellPatch);
        assert_matches_fresh(&session);
        assert_eq!(session.stats().cell_patches, 1);
        // The patched value is visible wherever source row 5 reached.
        for &out in &outcome.affected_rows {
            assert_eq!(
                session.table().get(out, "employer_rating").unwrap(),
                Value::Float(9.5)
            );
        }
    }

    #[test]
    fn routing_update_falls_back_to_rerun() {
        let s = HiringScenario::generate(60, 11);
        let (plan, root) = Plan::hiring_pipeline();
        let mut session =
            PipelineSession::build(&Executor::new(), &plan, root, &hiring_inputs(&s)).unwrap();
        // `sector` feeds the healthcare filter: structural.
        let outcome = session
            .apply(&Delta::Update {
                source: "jobdetail_df".into(),
                row: 0,
                column: "sector".into(),
                value: Value::Str("healthcare".into()),
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Rerun);
        assert_matches_fresh(&session);
        // `job_id` is a join key: structural too.
        let outcome = session
            .apply(&Delta::Update {
                source: "train_df".into(),
                row: 2,
                column: "job_id".into(),
                value: Value::Int(1),
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Rerun);
        assert_matches_fresh(&session);
        assert_eq!(session.stats().reruns, 2);
    }

    #[test]
    fn insert_and_delete_splice_and_match_fresh() {
        let s = HiringScenario::generate(80, 13);
        let (plan, root) = Plan::hiring_pipeline();
        let mut session =
            PipelineSession::build(&Executor::new(), &plan, root, &hiring_inputs(&s)).unwrap();
        // Append a social row for a person that exists (left join gains a
        // real match) — splice.
        let person = s.letters.get(0, "person_id").unwrap();
        let outcome = session
            .apply(&Delta::Insert {
                source: "social_df".into(),
                values: vec![person, Value::Str("@new".into()), Value::Int(10)],
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert_matches_fresh(&session);
        // Delete a letters row — splice again.
        let outcome = session
            .apply(&Delta::Delete {
                source: "train_df".into(),
                row: 3,
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert!(outcome.row_map.is_some());
        assert_matches_fresh(&session);
        assert_eq!(session.stats().splices, 2);
    }

    #[test]
    fn splice_covers_distinct_concat_select_fuzzy() {
        // A plan exercising every remaining operator: fuzzy join, distinct,
        // concat (sharing a subtree), and a column selection.
        let mut companies = Table::empty(
            "companies",
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("rating", DataType::Float),
            ])
            .unwrap(),
        );
        for (n, r) in [("Acme Corp", 4.5), ("Globex", 3.2), ("Initech", 2.8)] {
            companies.push_row(vec![n.into(), r.into()]).unwrap();
        }
        let mut mentions = Table::empty(
            "mentions",
            Schema::new(vec![
                Field::new("employer", DataType::Str),
                Field::new("person", DataType::Int),
            ])
            .unwrap(),
        );
        for (e, p) in [
            ("acme corp.", 1),
            ("GLOBEX", 2),
            ("acme  corp", 3),
            ("umbrella", 4),
        ] {
            mentions
                .push_row(vec![e.into(), (p as i64).into()])
                .unwrap();
        }
        let mut plan = Plan::new();
        let m = plan.source("mentions");
        let c = plan.source("companies");
        let fj = plan.fuzzy_join(m, c, "employer", "name", 0.75);
        let both = plan.concat(fj, fj);
        let d = plan.distinct(both, "person");
        let root = plan.select(d, &["person", "rating"]);
        let inputs: Vec<(&str, &Table)> = vec![("mentions", &mentions), ("companies", &companies)];
        let mut session = PipelineSession::build(&Executor::new(), &plan, root, &inputs).unwrap();
        assert_matches_fresh(&session);

        // Insert a mention that fuzzy-matches and survives distinct.
        let outcome = session
            .apply(&Delta::Insert {
                source: "mentions".into(),
                values: vec!["initech inc".into(), Value::Int(9)],
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert_matches_fresh(&session);

        // Insert a company that steals an existing best match (exact
        // normalized form beats the typo match).
        let outcome = session
            .apply(&Delta::Insert {
                source: "companies".into(),
                values: vec!["acme corp.".into(), Value::Float(9.9)],
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert_matches_fresh(&session);

        // Delete the stolen-match company again: dead winners rescan.
        let outcome = session
            .apply(&Delta::Delete {
                source: "companies".into(),
                row: 3,
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert_matches_fresh(&session);

        // Delete a mention absorbed by distinct.
        let outcome = session
            .apply(&Delta::Delete {
                source: "mentions".into(),
                row: 2,
            })
            .unwrap();
        assert_eq!(outcome.path, DeltaPath::Splice);
        assert_matches_fresh(&session);
    }

    #[test]
    fn splice_is_identical_across_thread_counts() {
        let s = HiringScenario::generate(120, 17);
        let (plan, root) = Plan::hiring_pipeline();
        let person = s.letters.get(1, "person_id").unwrap();
        let deltas = [
            Delta::Insert {
                source: "social_df".into(),
                values: vec![person, Value::Null, Value::Int(0)],
            },
            Delta::Delete {
                source: "jobdetail_df".into(),
                row: 2,
            },
            Delta::Update {
                source: "train_df".into(),
                row: 7,
                column: "years_experience".into(),
                value: Value::Float(40.0),
            },
        ];
        let run = |threads: usize| {
            let mut session = PipelineSession::build(
                &Executor::new().with_threads(threads),
                &plan,
                root,
                &hiring_inputs(&s),
            )
            .unwrap();
            for d in &deltas {
                session.apply(d).unwrap();
            }
            (session.table().clone(), session.lineage())
        };
        let (seq_table, seq_lineage) = run(1);
        for threads in [2, 4, 7] {
            let (t, l) = run(threads);
            assert_eq!(t, seq_table, "threads={threads}");
            assert_eq!(l, seq_lineage, "threads={threads}");
        }
    }

    #[test]
    fn operator_panic_on_spliced_row_reruns_with_typed_error() {
        let s = HiringScenario::generate(30, 5);
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let boom = Expr::udf(
            "boom_on_neg",
            DataType::Bool,
            &["employer_rating"],
            |t, row| {
                let v = t.get(row, "employer_rating").unwrap();
                if matches!(v, Value::Float(f) if f < 0.0) {
                    panic!("negative rating");
                }
                Ok(Value::Bool(true))
            },
        );
        let f = plan.filter(a, boom);
        let inputs: Vec<(&str, &Table)> = vec![("train_df", &s.letters)];
        let mut session = PipelineSession::build(&Executor::new(), &plan, f, &inputs).unwrap();
        // Insert a row the predicate panics on: the splice fails, the rerun
        // fails with the executor's typed report, and the session poisons.
        let mut values = s.letters.row(0).unwrap();
        values[4] = Value::Float(-1.0); // employer_rating
        let err = session
            .apply(&Delta::Insert {
                source: "train_df".into(),
                values,
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::OperatorPanic { .. }));
        let err = session
            .apply(&Delta::Delete {
                source: "train_df".into(),
                row: 0,
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::Delta(_)), "poisoned session");
    }

    #[test]
    fn validation_failures_leave_session_untouched() {
        let s = HiringScenario::generate(30, 5);
        let (plan, root) = Plan::hiring_pipeline();
        let mut session =
            PipelineSession::build(&Executor::new(), &plan, root, &hiring_inputs(&s)).unwrap();
        let before = session.table().clone();
        assert!(session
            .apply(&Delta::Update {
                source: "no_such".into(),
                row: 0,
                column: "x".into(),
                value: Value::Int(0),
            })
            .is_err());
        assert!(session
            .apply(&Delta::Update {
                source: "train_df".into(),
                row: 99_999,
                column: "employer_rating".into(),
                value: Value::Float(1.0),
            })
            .is_err());
        assert!(session
            .apply(&Delta::Delete {
                source: "train_df".into(),
                row: 99_999,
            })
            .is_err());
        assert_eq!(session.table(), &before);
        assert_eq!(session.stats().applied, 0);
        assert_matches_fresh(&session);
    }
}
