//! Row-level expressions for filters and derived columns (projections).

use crate::{PipelineError, Result};
use nde_data::{DataType, Table, Value};
use std::fmt;
use std::sync::Arc;

/// The shared row-evaluation closure of a [`UdfSpec`].
type UdfFn = Arc<dyn Fn(&Table, usize) -> Result<Value> + Send + Sync>;

/// A named user-defined function evaluated per row. The closure is shared
/// (`Arc`), so cloning an expression tree stays cheap. UDFs are the one
/// place arbitrary user code runs inside the executor, which is why
/// [`crate::exec::Executor`] isolates their panics with `catch_unwind`.
#[derive(Clone)]
pub struct UdfSpec {
    name: String,
    dtype: DataType,
    columns: Vec<String>,
    f: UdfFn,
}

impl UdfSpec {
    /// The UDF's display name (used in error reports and quarantine records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared output type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Run the UDF on one row.
    pub fn call(&self, table: &Table, row: usize) -> Result<Value> {
        (self.f)(table, row)
    }
}

impl fmt::Debug for UdfSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfSpec")
            .field("name", &self.name)
            .field("dtype", &self.dtype)
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

impl PartialEq for UdfSpec {
    /// Closures cannot be compared; two UDFs are equal iff their declared
    /// identity (name, type, input columns) matches.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.dtype == other.dtype && self.columns == other.columns
    }
}

/// A scalar expression evaluated per row of a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Equality (null-safe: `null == null` is false, SQL-style).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Numeric greater-than (null ⇒ false).
    Gt(Box<Expr>, Box<Expr>),
    /// Numeric less-than (null ⇒ false).
    Lt(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `true` iff the operand is null.
    IsNull(Box<Expr>),
    /// `true` iff the operand is not null (Fig. 3's `twitter.notnull()`).
    IsNotNull(Box<Expr>),
    /// A user-defined function over the whole row (projections/filters with
    /// arbitrary logic; executed under panic isolation).
    Udf(UdfSpec),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// String literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Lit(Value::Str(v.into()))
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other))
    }

    /// `self > other` (numeric).
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(other))
    }

    /// `self < other` (numeric).
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }

    /// A user-defined function: `name` for diagnostics, `dtype` the declared
    /// output type, `columns` the input columns it reads (for dependency
    /// inspection), and `f` the per-row implementation.
    pub fn udf(
        name: impl Into<String>,
        dtype: DataType,
        columns: &[&str],
        f: impl Fn(&Table, usize) -> Result<Value> + Send + Sync + 'static,
    ) -> Expr {
        Expr::Udf(UdfSpec {
            name: name.into(),
            dtype,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            f: Arc::new(f),
        })
    }

    /// Evaluate against row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value> {
        match self {
            Expr::Col(name) => table
                .get(row, name)
                .map_err(|e| PipelineError::Expr(e.to_string())),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Eq(a, b) => {
                let (va, vb) = (a.eval(table, row)?, b.eval(table, row)?);
                Ok(Value::Bool(values_equal(&va, &vb)))
            }
            Expr::Ne(a, b) => {
                let (va, vb) = (a.eval(table, row)?, b.eval(table, row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(!values_equal(&va, &vb)))
            }
            Expr::Gt(a, b) => numeric_cmp(a, b, table, row, |x, y| x > y),
            Expr::Lt(a, b) => numeric_cmp(a, b, table, row, |x, y| x < y),
            Expr::And(a, b) => Ok(Value::Bool(
                truthy(&a.eval(table, row)?)? && truthy(&b.eval(table, row)?)?,
            )),
            Expr::Or(a, b) => Ok(Value::Bool(
                truthy(&a.eval(table, row)?)? || truthy(&b.eval(table, row)?)?,
            )),
            Expr::Not(a) => Ok(Value::Bool(!truthy(&a.eval(table, row)?)?)),
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(table, row)?.is_null())),
            Expr::IsNotNull(a) => Ok(Value::Bool(!a.eval(table, row)?.is_null())),
            Expr::Udf(u) => u.call(table, row),
        }
    }

    /// Evaluate as a boolean predicate (nulls count as false).
    pub fn eval_predicate(&self, table: &Table, row: usize) -> Result<bool> {
        match self.eval(table, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(PipelineError::Expr(format!(
                "predicate evaluated to non-boolean {other:?}"
            ))),
        }
    }

    /// The output type of this expression given an input table (used when a
    /// projection adds a derived column).
    pub fn output_type(&self, table: &Table) -> Result<DataType> {
        match self {
            Expr::Col(name) => Ok(table
                .schema()
                .field(name)
                .map_err(|e| PipelineError::Expr(e.to_string()))?
                .dtype),
            Expr::Lit(v) => v.data_type().ok_or_else(|| {
                PipelineError::Expr("cannot infer the type of a null literal".into())
            }),
            Expr::Udf(u) => Ok(u.dtype),
            _ => Ok(DataType::Bool),
        }
    }

    /// Match the shape `col == literal` (either operand order), the form
    /// the executor can evaluate with one vectorized column scan instead of
    /// a per-row expression walk. The scan must agree with [`Expr::eval`]'s
    /// equality exactly: nulls never match, `Int`/`Float` compare
    /// numerically, a type-mismatched literal matches nothing.
    pub fn as_col_eq_lit(&self) -> Option<(&str, &Value)> {
        match self {
            Expr::Eq(a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(name), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(name)) => {
                    Some((name.as_str(), v))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Match `col IS NULL` / `col IS NOT NULL`; the returned flag is `true`
    /// for the `IS NOT NULL` form. Evaluable straight off a null bitmap.
    pub fn as_null_test(&self) -> Option<(&str, bool)> {
        match self {
            Expr::IsNull(a) => match a.as_ref() {
                Expr::Col(name) => Some((name.as_str(), false)),
                _ => None,
            },
            Expr::IsNotNull(a) => match a.as_ref() {
                Expr::Col(name) => Some((name.as_str(), true)),
                _ => None,
            },
            _ => None,
        }
    }

    /// All column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => out.push(name),
            Expr::Lit(_) => {}
            Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Gt(a, b)
            | Expr::Lt(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) | Expr::IsNotNull(a) => a.collect_columns(out),
            Expr::Udf(u) => out.extend(u.columns.iter().map(String::as_str)),
        }
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    if a.is_null() || b.is_null() {
        return false;
    }
    a.total_cmp(b) == std::cmp::Ordering::Equal
        && (a.data_type() == b.data_type() || both_numeric(a, b))
}

fn both_numeric(a: &Value, b: &Value) -> bool {
    a.as_float().is_some() && b.as_float().is_some()
}

fn numeric_cmp(
    a: &Expr,
    b: &Expr,
    table: &Table,
    row: usize,
    cmp: impl Fn(f64, f64) -> bool,
) -> Result<Value> {
    let va = a.eval(table, row)?;
    let vb = b.eval(table, row)?;
    match (va.as_float(), vb.as_float()) {
        (Some(x), Some(y)) => Ok(Value::Bool(cmp(x, y))),
        _ if va.is_null() || vb.is_null() => Ok(Value::Bool(false)),
        _ => Err(PipelineError::Expr(format!(
            "numeric comparison on non-numeric values {va:?}, {vb:?}"
        ))),
    }
}

fn truthy(v: &Value) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Null => Ok(false),
        other => Err(PipelineError::Expr(format!(
            "expected boolean operand, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::{Field, Schema};

    fn table() -> Table {
        let mut t = Table::empty(
            "t",
            Schema::new(vec![
                Field::new("sector", DataType::Str),
                Field::new("rating", DataType::Float),
                Field::new("twitter", DataType::Str),
            ])
            .unwrap(),
        );
        t.push_row(vec!["healthcare".into(), 7.5.into(), "@a".into()])
            .unwrap();
        t.push_row(vec!["tech".into(), 3.0.into(), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn equality_and_nulls() {
        let t = table();
        let e = Expr::col("sector").eq(Expr::str("healthcare"));
        assert_eq!(e.eval(&t, 0).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&t, 1).unwrap(), Value::Bool(false));
        // null == anything is false; null != anything is false too (SQL-ish).
        let en = Expr::col("twitter").eq(Expr::str("@a"));
        assert_eq!(en.eval(&t, 1).unwrap(), Value::Bool(false));
        let ne = Expr::col("twitter").ne(Expr::str("@a"));
        assert_eq!(ne.eval(&t, 1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn numeric_comparisons() {
        let t = table();
        assert_eq!(
            Expr::col("rating")
                .gt(Expr::float(5.0))
                .eval(&t, 0)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col("rating").lt(Expr::int(5)).eval(&t, 1).unwrap(),
            Value::Bool(true)
        );
        assert!(Expr::col("sector")
            .gt(Expr::float(1.0))
            .eval(&t, 0)
            .is_err());
    }

    #[test]
    fn boolean_connectives() {
        let t = table();
        let e = Expr::col("sector")
            .eq(Expr::str("healthcare"))
            .and(Expr::col("rating").gt(Expr::float(5.0)));
        assert!(e.eval_predicate(&t, 0).unwrap());
        assert!(!e.eval_predicate(&t, 1).unwrap());
        let o = Expr::col("sector")
            .eq(Expr::str("tech"))
            .or(Expr::col("rating").gt(Expr::float(5.0)));
        assert!(o.eval_predicate(&t, 0).unwrap());
        assert!(o.eval_predicate(&t, 1).unwrap());
        assert!(Expr::col("sector")
            .eq(Expr::str("tech"))
            .not()
            .eval_predicate(&t, 0)
            .unwrap());
    }

    #[test]
    fn null_tests() {
        let t = table();
        assert!(Expr::col("twitter")
            .is_not_null()
            .eval_predicate(&t, 0)
            .unwrap());
        assert!(!Expr::col("twitter")
            .is_not_null()
            .eval_predicate(&t, 1)
            .unwrap());
        assert!(Expr::col("twitter")
            .is_null()
            .eval_predicate(&t, 1)
            .unwrap());
    }

    #[test]
    fn output_types_and_columns() {
        let t = table();
        assert_eq!(
            Expr::col("rating").output_type(&t).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("twitter").is_not_null().output_type(&t).unwrap(),
            DataType::Bool
        );
        assert!(Expr::Lit(Value::Null).output_type(&t).is_err());
        let e = Expr::col("a")
            .eq(Expr::col("b"))
            .and(Expr::col("a").is_null());
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn unknown_column_and_bad_predicate() {
        let t = table();
        assert!(Expr::col("nope").eval(&t, 0).is_err());
        assert!(Expr::col("sector").eval_predicate(&t, 0).is_err());
    }
}
