//! Pipeline inspections, in the spirit of mlinspect / ArgusEyes (paper §2.2):
//! screen pipeline inputs and outputs for data-distribution issues, leakage
//! between train and test, and group-coverage problems.

use crate::provenance::Lineage;
use crate::Result;
use nde_data::fxhash::FxHashSet;
use nde_data::{Table, Value, ValueRef};

/// Severity of an inspection finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Likely problem worth reviewing.
    Warning,
    /// Almost certainly breaks the downstream model or its evaluation.
    Error,
}

/// A single inspection finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which check produced this finding.
    pub check: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// Check missing-value fractions; columns above `threshold` produce warnings.
pub fn check_missing_values(table: &Table, threshold: f64) -> Vec<Finding> {
    table
        .missing_profile()
        .into_iter()
        .filter(|(_, frac)| *frac > threshold)
        .map(|(col, frac)| Finding {
            check: "missing_values",
            severity: if frac > 0.5 {
                Severity::Error
            } else {
                Severity::Warning
            },
            message: format!(
                "column `{col}` is {:.1}% missing (threshold {:.1}%)",
                frac * 100.0,
                threshold * 100.0
            ),
        })
        .collect()
}

/// Check class balance of a label column: warn when the minority share drops
/// below `min_share`.
pub fn check_class_balance(table: &Table, label_col: &str, min_share: f64) -> Result<Vec<Finding>> {
    let counts = table.value_counts(label_col)?;
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let mut findings = Vec::new();
    if total == 0 {
        return Ok(findings);
    }
    for (value, count) in &counts {
        let share = *count as f64 / total as f64;
        if share < min_share {
            findings.push(Finding {
                check: "class_balance",
                severity: Severity::Warning,
                message: format!(
                    "class `{value}` of `{label_col}` holds only {:.1}% of rows",
                    share * 100.0
                ),
            });
        }
    }
    Ok(findings)
}

/// Detect train/test leakage: rows of `test` whose `key` also appears in
/// `train`. Any overlap is an error — the model would be evaluated on data it
/// saw during training (one of the issues ArgusEyes screens for).
pub fn check_leakage(train: &Table, test: &Table, key: &str) -> Result<Vec<Finding>> {
    let train_keys: FxHashSet<String> = collect_keys(train, key)?;
    let mut overlap = 0usize;
    for row in 0..test.n_rows() {
        // Borrowed cells: string keys probe the set without cloning.
        let hit = match test.get_ref(row, key)? {
            ValueRef::Null => false,
            ValueRef::Str(s) => train_keys.contains(s),
            v => train_keys.contains(&v.to_string()),
        };
        if hit {
            overlap += 1;
        }
    }
    let mut findings = Vec::new();
    if overlap > 0 {
        findings.push(Finding {
            check: "leakage",
            severity: Severity::Error,
            message: format!(
                "{overlap} of {} test rows share `{key}` with training rows",
                test.n_rows()
            ),
        });
    }
    Ok(findings)
}

/// Check that every group of `group_col` has at least `min_count` rows
/// (coverage of demographic groups after filters/joins).
pub fn check_coverage(table: &Table, group_col: &str, min_count: usize) -> Result<Vec<Finding>> {
    let counts = table.value_counts(group_col)?;
    Ok(counts
        .into_iter()
        .filter(|(_, c)| *c < min_count)
        .map(|(value, count)| Finding {
            check: "coverage",
            severity: Severity::Warning,
            message: format!(
                "group `{value}` of `{group_col}` has only {count} rows (minimum {min_count})"
            ),
        })
        .collect())
}

/// Compare the share of a class between two tables (e.g. pipeline input vs.
/// output): a shift larger than `max_shift` indicates the preprocessing
/// changed the label distribution (the "data distribution debugging" check).
pub fn check_distribution_shift(
    before: &Table,
    after: &Table,
    column: &str,
    class: &Value,
    max_shift: f64,
) -> Result<Vec<Finding>> {
    let share = |t: &Table| -> Result<f64> {
        if t.n_rows() == 0 {
            return Ok(0.0);
        }
        let counts = t.value_counts(column)?;
        let hits = counts
            .iter()
            .find(|(v, _)| {
                v.total_cmp(class) == std::cmp::Ordering::Equal
                    && v.data_type() == class.data_type()
            })
            .map(|(_, c)| *c)
            .unwrap_or(0);
        Ok(hits as f64 / t.n_rows() as f64)
    };
    let b = share(before)?;
    let a = share(after)?;
    let shift = (a - b).abs();
    let mut findings = Vec::new();
    if shift > max_shift {
        findings.push(Finding {
            check: "distribution_shift",
            severity: Severity::Warning,
            message: format!(
                "share of `{class}` in `{column}` moved from {:.1}% to {:.1}% across the pipeline",
                b * 100.0,
                a * 100.0
            ),
        });
    }
    Ok(findings)
}

/// Provenance coverage: how much of source `source_name` (with `source_len`
/// rows) actually reaches the pipeline output. Uses the lineage's memoized
/// inverted index ([`Lineage::outputs_per_source_row`]), so the cost is one
/// arena pass regardless of how many output rows reference the source.
/// Warns when more than `max_unused_fraction` of the source's rows
/// contribute to no output row — the typical symptom of an over-selective
/// filter or a join dropping data.
pub fn check_provenance_coverage(
    lineage: &Lineage,
    source_name: &str,
    source_len: usize,
    max_unused_fraction: f64,
) -> Result<Vec<Finding>> {
    let src = lineage.source_index(source_name).ok_or_else(|| {
        crate::PipelineError::InvalidPlan(format!(
            "source `{source_name}` not in lineage (sources: {:?})",
            lineage.sources
        ))
    })?;
    let mut findings = Vec::new();
    if source_len == 0 {
        return Ok(findings);
    }
    let inv = lineage.outputs_per_source_row(src, source_len);
    let unused = inv.iter().filter(|outs| outs.is_empty()).count();
    let frac = unused as f64 / source_len as f64;
    if frac > max_unused_fraction {
        findings.push(Finding {
            check: "provenance_coverage",
            severity: if frac >= 1.0 {
                Severity::Error
            } else {
                Severity::Warning
            },
            message: format!(
                "{unused} of {source_len} rows of `{source_name}` ({:.1}%) reach no output row",
                frac * 100.0
            ),
        });
    }
    Ok(findings)
}

fn collect_keys(table: &Table, key: &str) -> Result<FxHashSet<String>> {
    let mut set = FxHashSet::default();
    for row in 0..table.n_rows() {
        let v = table.get_ref(row, key)?;
        if !v.is_null() {
            set.insert(v.to_string());
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::{HiringScenario, LABEL_COLUMN};
    use nde_data::inject::{inject_missing, selection_bias, Missingness};

    #[test]
    fn missing_values_flagged_above_threshold() {
        let mut t = HiringScenario::generate(200, 1).letters;
        inject_missing(&mut t, "employer_rating", 0.3, Missingness::Mcar, 2).unwrap();
        let findings = check_missing_values(&t, 0.2);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("employer_rating"));
        assert_eq!(findings[0].severity, Severity::Warning);
        // 60% missing escalates to Error.
        inject_missing(&mut t, "employer_rating", 0.5, Missingness::Mcar, 3).unwrap();
        let findings = check_missing_values(&t, 0.2);
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn clean_table_produces_no_missing_findings() {
        let t = HiringScenario::generate(100, 2).letters;
        // degree has ~8% natural missingness; threshold 0.2 passes.
        assert!(check_missing_values(&t, 0.2).is_empty());
    }

    #[test]
    fn class_balance_detects_biased_sampling() {
        let t = HiringScenario::generate(400, 3).letters;
        assert!(check_class_balance(&t, LABEL_COLUMN, 0.3)
            .unwrap()
            .is_empty());
        let (biased, _, _) =
            selection_bias(&t, LABEL_COLUMN, &Value::Str("negative".into()), 0.15, 4).unwrap();
        let findings = check_class_balance(&biased, LABEL_COLUMN, 0.3).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("negative"));
    }

    #[test]
    fn leakage_detected_via_key_overlap() {
        let s = HiringScenario::generate(100, 5);
        let train = s.letters.take(&(0..80).collect::<Vec<_>>()).unwrap();
        let clean_test = s.letters.take(&(80..100).collect::<Vec<_>>()).unwrap();
        assert!(check_leakage(&train, &clean_test, "person_id")
            .unwrap()
            .is_empty());
        let leaky_test = s.letters.take(&(70..90).collect::<Vec<_>>()).unwrap();
        let findings = check_leakage(&train, &leaky_test, "person_id").unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("10 of 20"));
    }

    #[test]
    fn coverage_flags_small_groups() {
        let t = HiringScenario::generate(50, 6).job_details;
        let findings = check_coverage(&t, "sector", 1000).unwrap();
        assert!(!findings.is_empty());
        let ok = check_coverage(&t, "sector", 1).unwrap();
        assert!(ok.is_empty());
    }

    #[test]
    fn provenance_coverage_flags_filtered_out_sources() {
        use crate::exec::Executor;
        use crate::plan::Plan;
        let s = HiringScenario::generate(120, 9);
        let (plan, root) = Plan::hiring_pipeline();
        let out = Executor::new()
            .with_provenance(true)
            .run(
                &plan,
                root,
                &[
                    ("train_df", &s.letters),
                    ("jobdetail_df", &s.job_details),
                    ("social_df", &s.social),
                ],
            )
            .unwrap();
        let lineage = out.provenance.unwrap();
        // The healthcare-only filter drops most letters rows: a tight
        // threshold fires, a permissive one stays silent.
        let strict =
            check_provenance_coverage(&lineage, "train_df", s.letters.n_rows(), 0.0).unwrap();
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].check, "provenance_coverage");
        assert!(strict[0].message.contains("train_df"));
        let lax = check_provenance_coverage(&lineage, "train_df", s.letters.n_rows(), 1.0).unwrap();
        assert!(lax.is_empty());
        // Unknown sources are rejected.
        assert!(check_provenance_coverage(&lineage, "nope", 10, 0.5).is_err());
    }

    #[test]
    fn distribution_shift_detected_after_biased_filter() {
        let t = HiringScenario::generate(300, 7).letters;
        let (biased, _, _) =
            selection_bias(&t, LABEL_COLUMN, &Value::Str("positive".into()), 0.2, 8).unwrap();
        let findings = check_distribution_shift(
            &t,
            &biased,
            LABEL_COLUMN,
            &Value::Str("positive".into()),
            0.1,
        )
        .unwrap();
        assert_eq!(findings.len(), 1);
        // Identity comparison raises nothing.
        let none =
            check_distribution_shift(&t, &t, LABEL_COLUMN, &Value::Str("positive".into()), 0.1)
                .unwrap();
        assert!(none.is_empty());
    }
}
