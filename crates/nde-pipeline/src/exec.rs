//! Plan execution with optional provenance tracking and panic isolation.
//!
//! User-defined expressions (most notably [`crate::expr::Expr::Udf`]) run
//! arbitrary code per tuple. The executor wraps per-row evaluation of
//! `Filter` and `Project` operators in `catch_unwind`, so a panicking
//! operator never aborts the process. What happens next is governed by
//! [`PanicPolicy`]: fail fast with a typed
//! [`PipelineError::OperatorPanic`] carrying the operator id and offending
//! tuple, or skip the tuple and record it in
//! [`ExecOutput::quarantined`] (with source-tuple provenance when tracking
//! is enabled) while the rest of the pipeline completes.
//!
//! Per-row evaluation is chunk-parallel when [`Executor::with_threads`]
//! raises the worker count; the output table, provenance, quarantine
//! records, and fail-fast errors are identical for every thread count.

use crate::plan::{JoinType, NodeId, Plan, PlanNode};
use crate::provenance::{Lineage, ProvArena, ProvId, TupleId};
use crate::{PipelineError, Result};
use nde_data::fxhash::FxHashMap;
use nde_data::par::{CostHint, WorkerFailure};
use nde_data::pool::WorkerPool;
use nde_data::{Column, DataType, Field, Table};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Once};

/// Rows are evaluated in fixed-size chunks whose outcomes are merged in
/// chunk order — the chunking is independent of the thread count, so the
/// output table, provenance, and quarantine list are identical for every
/// `threads` value (including 1).
const ROW_CHUNK: usize = 64;

/// What the executor does when an operator panics on a tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Abort the run with a typed [`PipelineError::OperatorPanic`]
    /// identifying the operator and the offending tuple (default).
    #[default]
    FailFast,
    /// Drop the offending tuple from the operator's output, record it in
    /// [`ExecOutput::quarantined`], and keep going.
    SkipAndRecord,
}

/// A tuple dropped by [`PanicPolicy::SkipAndRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTuple {
    /// Plan node id of the panicking operator.
    pub node: usize,
    /// Operator description (e.g. `filter(chaos_panic_predicate_row_3)`).
    pub operator: String,
    /// Input row index at the panicking operator.
    pub row: usize,
    /// Source tuples the row derived from (empty unless provenance
    /// tracking is enabled).
    pub sources: Vec<TupleId>,
    /// The panic payload, stringified.
    pub message: String,
}

/// Result of executing a plan: the output table, optional row provenance,
/// and any tuples quarantined by panic isolation.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// The materialized output table.
    pub table: Table,
    /// Row provenance, present iff tracking was enabled.
    pub provenance: Option<Lineage>,
    /// Tuples dropped under [`PanicPolicy::SkipAndRecord`] (always empty
    /// under [`PanicPolicy::FailFast`]).
    pub quarantined: Vec<QuarantinedTuple>,
}

/// Evaluates plans over named input tables.
#[derive(Debug, Clone)]
pub struct Executor {
    track_provenance: bool,
    panic_policy: PanicPolicy,
    threads: usize,
    /// Resident workers for chunk-parallel row evaluation — spawned once
    /// (shared process-wide by default), reused by every `run` call.
    pool: Arc<WorkerPool>,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor {
            track_provenance: false,
            panic_policy: PanicPolicy::default(),
            threads: 1,
            pool: WorkerPool::shared(),
        }
    }
}

/// Per-node result: the table plus (when tracking) one arena node id per
/// row. Polynomials live in the run's shared [`ProvArena`]; cloning a memo
/// entry clones 4-byte ids, not trees.
pub(crate) type NodeResult = (Table, Option<Vec<ProvId>>);

/// The routing decisions one operator made during a traced run: which
/// input rows reached which output rows. Re-playing these decisions (and
/// re-deciding only where a delta could change them) is what lets
/// [`crate::delta::PipelineSession`] maintain a run without re-executing
/// the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTrace {
    /// Source node: index into the run's source-name table.
    Source {
        /// Position in [`crate::provenance::Lineage::sources`].
        source: u32,
    },
    /// Hash/left join: per-output-row `(left_row, right_row)` pairs in
    /// output order (`None` = left-join null pad).
    Join {
        /// Per-output-row row pairs.
        pairs: Vec<(usize, Option<usize>)>,
    },
    /// Fuzzy join: per-output-row `(left_row, right_row)` best-match pairs.
    FuzzyJoin {
        /// Per-output-row row pairs.
        pairs: Vec<(usize, usize)>,
    },
    /// Filter: surviving input rows, ascending.
    Filter {
        /// Kept input rows.
        kept: Vec<usize>,
    },
    /// Projection: surviving input rows, ascending (all rows under
    /// [`PanicPolicy::FailFast`]).
    Project {
        /// Kept input rows.
        kept: Vec<usize>,
    },
    /// Column selection — pure schema change, no routing.
    Select,
    /// Distinct: the [`Table::distinct_by`] grouping.
    Distinct {
        /// Surviving input rows in first-occurrence order.
        first_of: Vec<usize>,
        /// Slot each input row collapsed into.
        owner: Vec<usize>,
    },
    /// Concat: how many output rows the left input contributed.
    Concat {
        /// Left input row count.
        left_rows: usize,
    },
}

/// Everything a traced run records beyond its output: per-node routing
/// decisions and the order nodes were first evaluated in (children before
/// parents — replaying arena interning in this order reproduces the
/// execution's [`ProvArena`] bit for bit).
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// Node ids in first-evaluation order.
    pub order: Vec<usize>,
    /// Routing decisions per node id.
    pub nodes: FxHashMap<usize, NodeTrace>,
}

// Panics we catch per row must not spam stderr through the default panic
// hook, but hooks are process-global: install a delegating hook once and
// silence it only on threads currently inside a guarded region.
thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<u32> = const { Cell::new(0) };
}
static INSTALL_HOOK: Once = Once::new();

fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) == 0 {
                previous(info);
            }
        }));
    });
}

/// Run `f`, converting a panic into its stringified payload. Shared with
/// [`crate::delta`], which re-evaluates operators on spliced rows under the
/// same isolation guarantees as the executor.
pub(crate) fn catch_tuple_panic<T>(f: impl FnOnce() -> T) -> std::result::Result<T, String> {
    install_quiet_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(s.get() + 1));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(s.get() - 1));
    outcome.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

impl Executor {
    /// A new executor (provenance off, fail-fast panic policy).
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Enable or disable provenance tracking.
    pub fn with_provenance(mut self, on: bool) -> Executor {
        self.track_provenance = on;
        self
    }

    /// Choose what happens when an operator panics on a tuple.
    pub fn with_panic_policy(mut self, policy: PanicPolicy) -> Executor {
        self.panic_policy = policy;
        self
    }

    /// Worker threads for per-tuple operator evaluation (`Filter`,
    /// `Project`), the probe phase of hash/left joins, fuzzy-join matching,
    /// and distinct key extraction. Output tables, provenance (down to the
    /// arena node ids), quarantine records, and fail-fast errors are
    /// identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Executor {
        self.threads = threads.max(1);
        self
    }

    /// Run parallel regions on a dedicated [`WorkerPool`] instead of the
    /// process-wide shared one. The pool only affects scheduling; outputs
    /// are identical for any pool.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Executor {
        self.pool = pool;
        self
    }

    /// Worker-thread count this executor evaluates with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether provenance tracking is enabled.
    pub fn tracks_provenance(&self) -> bool {
        self.track_provenance
    }

    /// The configured panic policy.
    pub fn panic_policy(&self) -> PanicPolicy {
        self.panic_policy
    }

    /// Execute `root` of `plan` over the named `inputs`.
    pub fn run(&self, plan: &Plan, root: NodeId, inputs: &[(&str, &Table)]) -> Result<ExecOutput> {
        self.run_impl(plan, root, inputs, &mut None)
            .map(|(out, _)| out)
    }

    /// Execute like [`Executor::run`] while recording every operator's
    /// routing decisions, the node evaluation order, and each node's
    /// intermediate table/provenance — the starting state for incremental
    /// maintenance via [`crate::delta::PipelineSession`].
    pub(crate) fn run_traced(
        &self,
        plan: &Plan,
        root: NodeId,
        inputs: &[(&str, &Table)],
    ) -> Result<(ExecOutput, ExecTrace, FxHashMap<usize, NodeResult>)> {
        let mut trace = Some(ExecTrace::default());
        let (out, memo) = self.run_impl(plan, root, inputs, &mut trace)?;
        Ok((out, trace.expect("trace present"), memo))
    }

    fn run_impl(
        &self,
        plan: &Plan,
        root: NodeId,
        inputs: &[(&str, &Table)],
        trace: &mut Option<ExecTrace>,
    ) -> Result<(ExecOutput, FxHashMap<usize, NodeResult>)> {
        let source_names: Vec<String> =
            plan.source_names().into_iter().map(str::to_owned).collect();
        let mut input_map: FxHashMap<&str, &Table> = FxHashMap::default();
        for (name, table) in inputs {
            input_map.insert(name, table);
        }
        for name in &source_names {
            if !input_map.contains_key(name.as_str()) {
                return Err(PipelineError::MissingInput(name.clone()));
            }
        }
        let mut memo: FxHashMap<usize, NodeResult> = FxHashMap::default();
        let mut quarantined = Vec::new();
        let mut arena = ProvArena::new();
        let (table, prov) = self.eval(
            plan,
            root,
            &source_names,
            &input_map,
            &mut arena,
            &mut memo,
            &mut quarantined,
            trace,
        )?;
        Ok((
            ExecOutput {
                table,
                provenance: prov.map(|rows| Lineage::new(source_names, arena, rows)),
                quarantined,
            },
            memo,
        ))
    }

    /// Evaluate `eval(row)` for every row under the panic guard, in
    /// [`ROW_CHUNK`]-sized chunks spread over the executor's worker threads.
    ///
    /// Returns the surviving `(row, value)` pairs in row order and appends
    /// quarantined rows (skip-and-record policy) to `quarantined`, also in
    /// row order. Under fail-fast, the error returned is always the one a
    /// sequential scan would hit first: workers claim chunks in ascending
    /// order and stop at their chunk's first failure, and the substrate
    /// reports the smallest failing chunk.
    #[allow(clippy::too_many_arguments)]
    fn guarded_rows<T: Send>(
        &self,
        node: usize,
        operator: &str,
        n_rows: usize,
        prov: Option<(&ProvArena, &[ProvId])>,
        quarantined: &mut Vec<QuarantinedTuple>,
        eval: impl Fn(usize) -> Result<T> + Sync,
    ) -> Result<Vec<(usize, T)>> {
        let chunks = n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~25µs per 64-row guarded chunk (expr eval + panic guard): small
        // tables run inline, large ones get adaptively batched chunks.
        let cost = CostHint::PerItemNanos(25_000);
        let outcomes = self
            .pool
            .map_indexed(self.threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(n_rows);
                let mut kept = Vec::with_capacity(end - start);
                let mut quarantine: Vec<(usize, String)> = Vec::new();
                for row in start..end {
                    match catch_tuple_panic(|| eval(row)) {
                        Ok(value) => kept.push((row, value?)),
                        Err(message) => match self.panic_policy {
                            PanicPolicy::FailFast => {
                                return Err(PipelineError::OperatorPanic {
                                    node,
                                    operator: operator.to_string(),
                                    row,
                                    message,
                                })
                            }
                            PanicPolicy::SkipAndRecord => quarantine.push((row, message)),
                        },
                    }
                }
                Ok((kept, quarantine))
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                // Unreachable in practice: row evaluation is guarded above, and
                // the merge bookkeeping does not panic.
                WorkerFailure::Panic(_, message) => PipelineError::OperatorPanic {
                    node,
                    operator: operator.to_string(),
                    row: 0,
                    message,
                },
            })?;
        let mut all_kept = Vec::with_capacity(n_rows);
        for (_, (kept, quarantine)) in outcomes {
            all_kept.extend(kept);
            for (row, message) in quarantine {
                quarantined.push(QuarantinedTuple {
                    node,
                    operator: operator.to_string(),
                    row,
                    sources: prov
                        .map(|(arena, p)| arena.tuples_of(p[row]))
                        .unwrap_or_default(),
                    message,
                });
            }
        }
        Ok(all_kept)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        plan: &Plan,
        id: NodeId,
        source_names: &[String],
        inputs: &FxHashMap<&str, &Table>,
        arena: &mut ProvArena,
        memo: &mut FxHashMap<usize, NodeResult>,
        quarantined: &mut Vec<QuarantinedTuple>,
        trace: &mut Option<ExecTrace>,
    ) -> Result<NodeResult> {
        if let Some(cached) = memo.get(&id.index()) {
            return Ok(cached.clone());
        }
        // Routing decisions recorded on first evaluation (memo hits above
        // never re-record); `record` also logs the evaluation order.
        fn record(trace: &mut Option<ExecTrace>, id: NodeId, node: NodeTrace) {
            if let Some(tr) = trace {
                tr.order.push(id.index());
                tr.nodes.insert(id.index(), node);
            }
        }
        let tracing = trace.is_some();
        let result: NodeResult = match plan.node(id)? {
            PlanNode::Source { name } => {
                let table = (*inputs
                    .get(name.as_str())
                    .ok_or_else(|| PipelineError::MissingInput(name.clone()))?)
                .clone();
                let src = source_names
                    .iter()
                    .position(|s| s == name)
                    .ok_or_else(|| PipelineError::MissingInput(name.clone()))?
                    as u32;
                let prov = if self.track_provenance {
                    Some(
                        (0..table.n_rows())
                            .map(|r| arena.var(TupleId::new(src, r as u32)))
                            .collect(),
                    )
                } else {
                    None
                };
                record(trace, id, NodeTrace::Source { source: src });
                (table, prov)
            }
            PlanNode::Join {
                left,
                right,
                left_key,
                right_key,
                how,
            } => {
                let (lt, lp) = self.eval(
                    plan,
                    *left,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let (rt, rp) = self.eval(
                    plan,
                    *right,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                // Chunk-parallel probe; lineage comes back in index order,
                // so the provenance ids interned below are identical for
                // every thread count.
                let (table, lineage) = match how {
                    JoinType::Inner => {
                        let (t, pairs) =
                            lt.hash_join_par(&rt, left_key, right_key, self.threads)?;
                        (t, pairs.into_iter().map(|(l, r)| (l, Some(r))).collect())
                    }
                    JoinType::Left => lt.left_join_par(&rt, left_key, right_key, self.threads)?,
                };
                let prov = match (lp, rp) {
                    (Some(lp), Some(rp)) => Some(
                        lineage
                            .iter()
                            .map(|&(l, r)| match r {
                                Some(r) => arena.times(lp[l], rp[r]),
                                None => lp[l],
                            })
                            .collect::<Vec<_>>(),
                    ),
                    _ => None,
                };
                record(
                    trace,
                    id,
                    NodeTrace::Join {
                        pairs: if tracing { lineage } else { Vec::new() },
                    },
                );
                (table, prov)
            }
            PlanNode::FuzzyJoin {
                left,
                right,
                left_key,
                right_key,
                threshold,
            } => {
                let (lt, lp) = self.eval(
                    plan,
                    *left,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let (rt, rp) = self.eval(
                    plan,
                    *right,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let (table, lineage) = crate::fuzzy::fuzzy_join_par(
                    &lt,
                    &rt,
                    left_key,
                    right_key,
                    *threshold,
                    self.threads,
                )?;
                let prov = match (lp, rp) {
                    (Some(lp), Some(rp)) => Some(
                        lineage
                            .iter()
                            .map(|&(l, r)| arena.times(lp[l], rp[r]))
                            .collect::<Vec<_>>(),
                    ),
                    _ => None,
                };
                record(
                    trace,
                    id,
                    NodeTrace::FuzzyJoin {
                        pairs: if tracing { lineage } else { Vec::new() },
                    },
                );
                (table, prov)
            }
            PlanNode::Filter { input, predicate } => {
                let (t, p) = self.eval(
                    plan,
                    *input,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let operator = format!("filter({})", crate::render::expr_label(predicate));
                // Vectorized fast path: a `col == literal` predicate over an
                // existing column runs as one columnar scan with the exact
                // semantics of the per-row evaluator (nulls never match,
                // numeric cross-type equality), and these expressions cannot
                // error or panic per row — so guard, policy, and quarantine
                // behavior are unaffected. Anything else (including a
                // missing column, whose error the per-row path must report)
                // falls through to the guarded evaluator.
                let kept: Vec<usize> = match filter_eq_fast_path(&t, predicate) {
                    Some(rows) => rows,
                    None => {
                        // Evaluate the predicate once per row
                        // (chunk-parallel), propagating errors and isolating
                        // panics per the executor's policy.
                        let verdicts = self.guarded_rows(
                            id.index(),
                            &operator,
                            t.n_rows(),
                            p.as_deref().map(|ids| (&*arena, ids)),
                            quarantined,
                            |row| predicate.eval_predicate(&t, row),
                        )?;
                        verdicts
                            .into_iter()
                            .filter(|&(_, keep)| keep)
                            .map(|(row, _)| row)
                            .collect()
                    }
                };
                let table = t.take(&kept)?;
                let prov = p.map(|p| kept.iter().map(|&r| p[r]).collect());
                record(
                    trace,
                    id,
                    NodeTrace::Filter {
                        kept: if tracing { kept } else { Vec::new() },
                    },
                );
                (table, prov)
            }
            PlanNode::Project {
                input,
                column,
                expr,
            } => {
                let (t, p) = self.eval(
                    plan,
                    *input,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let operator =
                    format!("project({} := {})", column, crate::render::expr_label(expr));
                let dtype = if t.n_rows() == 0 {
                    DataType::Bool
                } else {
                    expr.output_type(&t)?
                };
                // Vectorized fast path: `col IS [NOT] NULL` over an existing
                // column reads the null bitmap directly — no per-row
                // expression walk, no guard needed (these expressions keep
                // every row and cannot error or panic).
                if let Some(col) = null_test_fast_path(&t, expr) {
                    let mut t = t;
                    t.add_column(Field::new(column.clone(), DataType::Bool), col)?;
                    record(
                        trace,
                        id,
                        NodeTrace::Project {
                            kept: if tracing {
                                (0..t.n_rows()).collect()
                            } else {
                                Vec::new()
                            },
                        },
                    );
                    memo.insert(id.index(), (t.clone(), p.clone()));
                    return Ok((t, p));
                }
                // Evaluate per row under the panic guard (chunk-parallel);
                // rows whose evaluation panics are quarantined
                // (skip-and-record) and dropped from the output.
                let rows = self.guarded_rows(
                    id.index(),
                    &operator,
                    t.n_rows(),
                    p.as_deref().map(|ids| (&*arena, ids)),
                    quarantined,
                    |row| expr.eval(&t, row),
                )?;
                let mut kept = Vec::with_capacity(rows.len());
                let mut values = Vec::with_capacity(rows.len());
                for (row, v) in rows {
                    kept.push(row);
                    values.push(v);
                }
                let mut t = if kept.len() == t.n_rows() {
                    t
                } else {
                    t.take(&kept)?
                };
                let mut col = Column::with_capacity(dtype, values.len());
                for v in values {
                    col.push(v)
                        .map_err(|e| PipelineError::Expr(e.to_string()))?;
                }
                t.add_column(Field::new(column.clone(), dtype), col)?;
                let prov = p.map(|p| kept.iter().map(|&r| p[r]).collect::<Vec<_>>());
                record(
                    trace,
                    id,
                    NodeTrace::Project {
                        kept: if tracing { kept } else { Vec::new() },
                    },
                );
                (t, prov)
            }
            PlanNode::SelectColumns { input, columns } => {
                let (t, p) = self.eval(
                    plan,
                    *input,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                record(trace, id, NodeTrace::Select);
                (t.select(&cols)?, p)
            }
            PlanNode::Distinct { input, key } => {
                let (t, p) = self.eval(
                    plan,
                    *input,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                // First occurrence of each key value survives; its provenance
                // absorbs the duplicates as Plus alternatives. Key grouping
                // is chunk-parallel and thread-count invariant.
                let (first_of, owner) = t.distinct_by(key, self.threads)?;
                let table = t.take(&first_of)?;
                let prov = p.map(|p| {
                    let mut alts: Vec<Vec<ProvId>> = vec![Vec::new(); first_of.len()];
                    for (row, &slot) in owner.iter().enumerate() {
                        alts[slot].push(p[row]);
                    }
                    alts.into_iter().map(|a| arena.plus(&a)).collect::<Vec<_>>()
                });
                record(
                    trace,
                    id,
                    if tracing {
                        NodeTrace::Distinct { first_of, owner }
                    } else {
                        NodeTrace::Distinct {
                            first_of: Vec::new(),
                            owner: Vec::new(),
                        }
                    },
                );
                (table, prov)
            }
            PlanNode::Concat { left, right } => {
                let (mut lt, lp) = self.eval(
                    plan,
                    *left,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let (rt, rp) = self.eval(
                    plan,
                    *right,
                    source_names,
                    inputs,
                    arena,
                    memo,
                    quarantined,
                    trace,
                )?;
                let left_rows = lt.n_rows();
                lt.append(&rt)?;
                let prov = match (lp, rp) {
                    (Some(mut lp), Some(rp)) => {
                        lp.extend(rp);
                        Some(lp)
                    }
                    _ => None,
                };
                record(trace, id, NodeTrace::Concat { left_rows });
                (lt, prov)
            }
        };
        memo.insert(id.index(), result.clone());
        Ok(result)
    }
}

/// Kept rows for a `col == literal` filter via the backend's vectorized
/// equality scan. `None` (shape mismatch, unknown column, or no columnar
/// fast path) means "use the per-row evaluator" — including for the unknown
/// column case, where the per-row path owns the error report.
fn filter_eq_fast_path(t: &Table, predicate: &crate::expr::Expr) -> Option<Vec<usize>> {
    let (col, lit) = predicate.as_col_eq_lit()?;
    t.filter_eq_rows(col, lit).ok().flatten()
}

/// A `col IS [NOT] NULL` projection read straight off the column's null
/// bitmap (columnar backend only). `None` falls back to per-row evaluation.
fn null_test_fast_path(t: &Table, expr: &crate::expr::Expr) -> Option<Column> {
    let (name, not_null) = expr.as_null_test()?;
    let dtype = t.schema().field(name).ok()?.dtype;
    let mask: Vec<bool> = match dtype {
        DataType::Int => {
            let p = t.col_i64(name)?;
            (0..p.len()).map(|r| p.nulls.get(r)).collect()
        }
        DataType::Float => {
            let p = t.col_f64(name)?;
            (0..p.len()).map(|r| p.nulls.get(r)).collect()
        }
        DataType::Str => {
            let p = t.col_str(name)?;
            (0..p.len()).map(|r| p.nulls.get(r)).collect()
        }
        DataType::Bool => {
            let p = t.col_bool(name)?;
            (0..p.len()).map(|r| p.nulls.get(r)).collect()
        }
    };
    Some(Column::Bool(
        mask.into_iter()
            .map(|is_null| Some(is_null != not_null))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use nde_data::generate::hiring::HiringScenario;
    use nde_data::Value;

    fn scenario() -> HiringScenario {
        HiringScenario::generate(80, 7)
    }

    fn run_hiring(track: bool) -> ExecOutput {
        let s = scenario();
        let (plan, root) = Plan::hiring_pipeline();
        Executor::new()
            .with_provenance(track)
            .run(
                &plan,
                root,
                &[
                    ("train_df", &s.letters),
                    ("jobdetail_df", &s.job_details),
                    ("social_df", &s.social),
                ],
            )
            .unwrap()
    }

    #[test]
    fn hiring_pipeline_executes() {
        let out = run_hiring(false);
        assert!(out.provenance.is_none());
        assert!(out.table.n_rows() > 0);
        assert!(out.table.schema().contains("has_twitter"));
        assert!(out.table.schema().contains("sector"));
        // Filter kept only healthcare rows.
        for row in 0..out.table.n_rows() {
            assert_eq!(
                out.table.get(row, "sector").unwrap(),
                Value::Str("healthcare".into())
            );
        }
    }

    #[test]
    fn provenance_matches_rows_and_sources() {
        let out = run_hiring(true);
        let lineage = out.provenance.unwrap();
        assert_eq!(lineage.rows.len(), out.table.n_rows());
        assert_eq!(
            lineage.sources,
            vec!["train_df", "jobdetail_df", "social_df"]
        );
        // Every output row depends on exactly one letters row and one jobs row.
        for row in 0..lineage.n_rows() {
            let tuples = lineage.row_tuples(row);
            let letters: Vec<_> = tuples.iter().filter(|t| t.source == 0).collect();
            let jobs: Vec<_> = tuples.iter().filter(|t| t.source == 1).collect();
            assert_eq!(letters.len(), 1, "row {row}");
            assert_eq!(jobs.len(), 1, "row {row}");
            // Social is a left join: 0 or 1 tuples.
            let social = tuples.iter().filter(|t| t.source == 2).count();
            assert!(social <= 1);
        }
    }

    #[test]
    fn provenance_points_to_correct_source_rows() {
        let s = scenario();
        let (plan, root) = Plan::hiring_pipeline();
        let out = Executor::new()
            .with_provenance(true)
            .run(
                &plan,
                root,
                &[
                    ("train_df", &s.letters),
                    ("jobdetail_df", &s.job_details),
                    ("social_df", &s.social),
                ],
            )
            .unwrap();
        let lineage = out.provenance.unwrap();
        for row in 0..out.table.n_rows() {
            let person = out.table.get(row, "person_id").unwrap();
            let tuples = lineage.row_tuples(row);
            let letter_row = tuples.iter().find(|t| t.source == 0).unwrap().row as usize;
            assert_eq!(s.letters.get(letter_row, "person_id").unwrap(), person);
        }
    }

    #[test]
    fn missing_input_rejected() {
        let s = scenario();
        let (plan, root) = Plan::hiring_pipeline();
        let err = Executor::new().run(&plan, root, &[("train_df", &s.letters)]);
        assert!(matches!(err, Err(PipelineError::MissingInput(_))));
    }

    #[test]
    fn select_and_concat_track_provenance() {
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let sel = plan.select(a, &["person_id", "sentiment"]);
        let both = plan.concat(sel, sel);
        let out = Executor::new()
            .with_provenance(true)
            .run(&plan, both, &[("train_df", &s.letters)])
            .unwrap();
        assert_eq!(out.table.n_rows(), 2 * s.letters.n_rows());
        assert_eq!(out.table.n_cols(), 2);
        let lineage = out.provenance.unwrap();
        // Row i and row i+n share the same provenance tuple.
        let n = s.letters.n_rows();
        assert_eq!(lineage.rows[0], lineage.rows[n]);
    }

    #[test]
    fn memoization_reuses_shared_subplans() {
        // The concat of a node with itself must not duplicate sources in
        // provenance, and must execute the shared subtree once (observable
        // through identical results; timing not asserted).
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let f = plan.filter(a, Expr::col("employer_rating").gt(Expr::float(5.0)));
        let c = plan.concat(f, f);
        let out = Executor::new()
            .with_provenance(true)
            .run(&plan, c, &[("train_df", &s.letters)])
            .unwrap();
        assert_eq!(out.table.n_rows() % 2, 0);
    }

    #[test]
    fn filter_propagates_expression_errors() {
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let f = plan.filter(a, Expr::col("no_such_column").is_null());
        let err = Executor::new().run(&plan, f, &[("train_df", &s.letters)]);
        assert!(matches!(err, Err(PipelineError::Expr(_))));
    }

    #[test]
    fn distinct_merges_duplicates_with_plus_provenance() {
        use crate::semiring::BoolSemiring;
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let doubled = plan.concat(a, a); // every row appears twice
        let d = plan.distinct(doubled, "person_id");
        let out = Executor::new()
            .with_provenance(true)
            .run(&plan, d, &[("train_df", &s.letters)])
            .unwrap();
        assert_eq!(out.table.n_rows(), s.letters.n_rows());
        let lineage = out.provenance.unwrap();
        // Each surviving row has two alternative derivations of the same
        // source tuple: a Plus whose why-provenance still names one tuple.
        let expr = lineage.row_expr(0);
        assert!(matches!(&expr, crate::provenance::ProvExpr::Plus(alts) if alts.len() == 2));
        assert_eq!(lineage.row_tuples(0).len(), 1);
        // Boolean semantics: deleting the source tuple kills the row even
        // though it had two derivations.
        assert!(expr.eval::<BoolSemiring>(&|_| true));
        assert!(!expr.eval::<BoolSemiring>(&|_| false));
    }

    #[test]
    fn distinct_keeps_first_occurrence() {
        use nde_data::{DataType, Field, Schema};
        let mut t = Table::empty(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Str),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "first".into()]).unwrap();
        t.push_row(vec![2.into(), "second".into()]).unwrap();
        t.push_row(vec![1.into(), "dup".into()]).unwrap();
        let mut plan = Plan::new();
        let a = plan.source("t");
        let d = plan.distinct(a, "k");
        let out = Executor::new().run(&plan, d, &[("t", &t)]).unwrap();
        assert_eq!(out.table.n_rows(), 2);
        assert_eq!(out.table.get(0, "v").unwrap(), Value::Str("first".into()));
        assert_eq!(out.table.get(1, "v").unwrap(), Value::Str("second".into()));
    }

    #[test]
    fn fuzzy_join_node_tracks_provenance() {
        use nde_data::{DataType, Field, Schema};
        let mut letters = Table::empty(
            "letters",
            Schema::new(vec![
                Field::new("employer", DataType::Str),
                Field::new("id", DataType::Int),
            ])
            .unwrap(),
        );
        letters
            .push_row(vec!["acme corp.".into(), 1.into()])
            .unwrap();
        letters.push_row(vec!["nomatch".into(), 2.into()]).unwrap();
        let mut companies = Table::empty(
            "companies",
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("rating", DataType::Float),
            ])
            .unwrap(),
        );
        companies
            .push_row(vec!["Acme Corp".into(), 4.5.into()])
            .unwrap();

        let mut plan = Plan::new();
        let l = plan.source("letters");
        let c = plan.source("companies");
        let fj = plan.fuzzy_join(l, c, "employer", "name", 0.8);
        let out = Executor::new()
            .with_provenance(true)
            .run(
                &plan,
                fj,
                &[("letters", &letters), ("companies", &companies)],
            )
            .unwrap();
        assert_eq!(out.table.n_rows(), 1);
        assert_eq!(out.table.get(0, "rating").unwrap(), Value::Float(4.5));
        let lineage = out.provenance.unwrap();
        let tuples = lineage.row_tuples(0);
        assert_eq!(tuples.len(), 2); // one letters tuple, one companies tuple
        assert!(tuples.iter().any(|t| t.source == 0 && t.row == 0));
        assert!(tuples.iter().any(|t| t.source == 1 && t.row == 0));
    }

    fn panicking_udf(panic_row: usize) -> Expr {
        Expr::udf(
            format!("boom_row_{panic_row}"),
            DataType::Bool,
            &[],
            move |_t, row| {
                if row == panic_row {
                    panic!("boom on row {row}");
                }
                Ok(Value::Bool(true))
            },
        )
    }

    #[test]
    fn fail_fast_panic_is_a_typed_error() {
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let f = plan.filter(a, panicking_udf(3));
        let err = Executor::new()
            .run(&plan, f, &[("train_df", &s.letters)])
            .unwrap_err();
        match err {
            PipelineError::OperatorPanic {
                node,
                operator,
                row,
                message,
            } => {
                assert_eq!(node, f.index());
                assert!(operator.contains("boom_row_3"), "{operator}");
                assert_eq!(row, 3);
                assert!(message.contains("boom on row 3"), "{message}");
            }
            other => panic!("expected OperatorPanic, got {other:?}"),
        }
    }

    #[test]
    fn skip_and_record_quarantines_and_completes() {
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let f = plan.filter(a, panicking_udf(5));
        let out = Executor::new()
            .with_provenance(true)
            .with_panic_policy(PanicPolicy::SkipAndRecord)
            .run(&plan, f, &[("train_df", &s.letters)])
            .unwrap();
        // Exactly the panicking row is missing.
        assert_eq!(out.table.n_rows(), s.letters.n_rows() - 1);
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert_eq!(q.row, 5);
        assert_eq!(q.node, f.index());
        assert_eq!(q.sources, vec![TupleId::new(0, 5)]);
        // The provenance of surviving rows skips the quarantined tuple.
        let lineage = out.provenance.unwrap();
        assert_eq!(lineage.n_rows(), out.table.n_rows());
        assert!(
            (0..lineage.n_rows()).all(|row| !lineage.row_tuples(row).contains(&TupleId::new(0, 5)))
        );
    }

    fn multi_panic_udf(panic_rows: &[usize]) -> Expr {
        let rows: Vec<usize> = panic_rows.to_vec();
        Expr::udf(
            format!("boom_rows_{rows:?}"),
            DataType::Bool,
            &[],
            move |_t, row| {
                if rows.contains(&row) {
                    panic!("boom on row {row}");
                }
                Ok(Value::Bool(true))
            },
        )
    }

    #[test]
    fn parallel_execution_is_identical_to_sequential() {
        // Enough rows for several chunks; panics land in different chunks.
        let s = HiringScenario::generate(300, 7);
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        let f = plan.filter(a, multi_panic_udf(&[5, 70, 199, 250]));
        let run = |threads| {
            Executor::new()
                .with_provenance(true)
                .with_panic_policy(PanicPolicy::SkipAndRecord)
                .with_threads(threads)
                .run(&plan, f, &[("train_df", &s.letters)])
                .unwrap()
        };
        let seq = run(1);
        assert_eq!(seq.table.n_rows(), s.letters.n_rows() - 4);
        let rows: Vec<usize> = seq.quarantined.iter().map(|q| q.row).collect();
        assert_eq!(rows, vec![5, 70, 199, 250]);
        for threads in [2, 4, 7] {
            let par = run(threads);
            assert_eq!(par.table, seq.table, "threads={threads}");
            assert_eq!(par.quarantined, seq.quarantined, "threads={threads}");
            assert_eq!(par.provenance, seq.provenance, "threads={threads}");
        }
    }

    #[test]
    fn parallel_fail_fast_reports_first_failing_row() {
        let s = HiringScenario::generate(300, 7);
        let mut plan = Plan::new();
        let a = plan.source("train_df");
        // The later row sits in an earlier-claimed chunk only sometimes;
        // the reported failure must always be the sequential-first row 30.
        let f = plan.filter(a, multi_panic_udf(&[230, 30]));
        for threads in [1, 4] {
            let err = Executor::new()
                .with_threads(threads)
                .run(&plan, f, &[("train_df", &s.letters)])
                .unwrap_err();
            match err {
                PipelineError::OperatorPanic { row, .. } => {
                    assert_eq!(row, 30, "threads={threads}")
                }
                other => panic!("expected OperatorPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn project_adds_typed_column() {
        let s = scenario();
        let mut plan = Plan::new();
        let a = plan.source("social_df");
        let p = plan.project(a, "has_twitter", Expr::col("twitter").is_not_null());
        let out = Executor::new()
            .run(&plan, p, &[("social_df", &s.social)])
            .unwrap();
        let has: Vec<bool> = (0..out.table.n_rows())
            .map(|r| out.table.get(r, "has_twitter").unwrap().as_bool().unwrap())
            .collect();
        let nulls = s.social.column("twitter").unwrap().null_count();
        assert_eq!(has.iter().filter(|&&b| !b).count(), nulls);
    }
}
