//! ASCII rendering of pipeline plans (the tutorial's `show_query_plan`)
//! and of captured lineage (arena sharing statistics).

use crate::expr::Expr;
use crate::plan::{JoinType, NodeId, Plan, PlanNode};
use crate::provenance::{Lineage, ProvNodeRef};
use crate::Result;

/// Render the plan rooted at `root` as an ASCII tree, sources at the leaves.
pub fn render_plan(plan: &Plan, root: NodeId) -> Result<String> {
    let mut out = String::new();
    render_node(plan, root, "", "", &mut out)?;
    Ok(out)
}

fn label(node: &PlanNode) -> String {
    match node {
        PlanNode::Source { name } => format!("Source {name}"),
        PlanNode::Join {
            left_key,
            right_key,
            how,
            ..
        } => {
            let how = match how {
                JoinType::Inner => "inner",
                JoinType::Left => "left",
            };
            format!("Join [{left_key} = {right_key}, {how}]")
        }
        PlanNode::FuzzyJoin {
            left_key,
            right_key,
            threshold,
            ..
        } => format!("FuzzyJoin [{left_key} ~= {right_key}, sim >= {threshold}]"),
        PlanNode::Filter { predicate, .. } => format!("Filter [{}]", expr_label(predicate)),
        PlanNode::Project { column, expr, .. } => {
            format!("Project [{column} := {}]", expr_label(expr))
        }
        PlanNode::SelectColumns { columns, .. } => {
            format!("Select [{}]", columns.join(", "))
        }
        PlanNode::Distinct { key, .. } => format!("Distinct [{key}]"),
        PlanNode::Concat { .. } => "Concat".to_string(),
    }
}

pub(crate) fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Col(c) => c.clone(),
        Expr::Lit(v) => format!("{v}"),
        Expr::Eq(a, b) => format!("{} == {}", expr_label(a), expr_label(b)),
        Expr::Ne(a, b) => format!("{} != {}", expr_label(a), expr_label(b)),
        Expr::Gt(a, b) => format!("{} > {}", expr_label(a), expr_label(b)),
        Expr::Lt(a, b) => format!("{} < {}", expr_label(a), expr_label(b)),
        Expr::And(a, b) => format!("({} and {})", expr_label(a), expr_label(b)),
        Expr::Or(a, b) => format!("({} or {})", expr_label(a), expr_label(b)),
        Expr::Not(a) => format!("not {}", expr_label(a)),
        Expr::IsNull(a) => format!("{} is null", expr_label(a)),
        Expr::IsNotNull(a) => format!("{} is not null", expr_label(a)),
        Expr::Udf(u) => format!("{}(...)", u.name()),
    }
}

/// Summarize captured lineage: row count, arena size, node mix, and how
/// much sharing hash-consing bought (unique nodes vs. total child slots —
/// the tree representation would materialize one subtree per reference).
pub fn render_lineage_summary(lineage: &Lineage) -> String {
    let arena = &lineage.arena;
    let (mut vars, mut times, mut plus) = (0usize, 0usize, 0usize);
    for (_, node) in arena.iter_nodes() {
        match node {
            ProvNodeRef::Var(_) => vars += 1,
            ProvNodeRef::Times(_) => times += 1,
            ProvNodeRef::Plus(_) => plus += 1,
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "lineage: {} output rows over {} sources ({})\n",
        lineage.n_rows(),
        lineage.sources.len(),
        lineage.sources.join(", ")
    ));
    out.push_str(&format!(
        "arena: {} interned nodes ({vars} var, {times} times, {plus} plus), {} child slots\n",
        arena.len(),
        arena.children_len()
    ));
    let refs = arena.children_len() + lineage.n_rows();
    if !arena.is_empty() {
        out.push_str(&format!(
            "sharing: {refs} references to {} nodes ({:.2} refs/node)\n",
            arena.len(),
            refs as f64 / arena.len() as f64
        ));
    }
    out
}

fn render_node(
    plan: &Plan,
    id: NodeId,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) -> Result<()> {
    out.push_str(prefix);
    out.push_str(&label(plan.node(id)?));
    out.push('\n');
    let children = plan.children(id)?;
    let n = children.len();
    for (i, child) in children.into_iter().enumerate() {
        let last = i + 1 == n;
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        render_node(
            plan,
            child,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{cont}"),
            out,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_hiring_pipeline() {
        let (plan, root) = Plan::hiring_pipeline();
        let s = render_plan(&plan, root).unwrap();
        assert!(s.contains("Project [has_twitter := twitter is not null]"));
        assert!(s.contains("Filter [sector == healthcare]"));
        assert!(s.contains("Source train_df"));
        assert!(s.contains("Source jobdetail_df"));
        assert!(s.contains("Source social_df"));
        // Tree glyphs present.
        assert!(s.contains("└─") && s.contains("├─"));
        // Root is the first line (no indentation).
        assert!(s.starts_with("Project"));
    }

    #[test]
    fn renders_lineage_summary() {
        use crate::exec::Executor;
        use nde_data::generate::hiring::HiringScenario;
        let s = HiringScenario::generate(60, 11);
        let (plan, root) = Plan::hiring_pipeline();
        let out = Executor::new()
            .with_provenance(true)
            .run(
                &plan,
                root,
                &[
                    ("train_df", &s.letters),
                    ("jobdetail_df", &s.job_details),
                    ("social_df", &s.social),
                ],
            )
            .unwrap();
        let summary = render_lineage_summary(&out.provenance.unwrap());
        assert!(summary.contains("output rows over 3 sources"));
        assert!(summary.contains("train_df, jobdetail_df, social_df"));
        assert!(summary.contains("interned nodes"));
        assert!(summary.contains("refs/node"));
    }

    #[test]
    fn renders_all_node_kinds() {
        let mut plan = Plan::new();
        let a = plan.source("a");
        let b = plan.source("b");
        let j = plan.join(a, b, "k", "k", JoinType::Left);
        let sel = plan.select(j, &["x", "y"]);
        let c = plan.concat(sel, sel);
        let f = plan.filter(
            c,
            Expr::col("x")
                .gt(Expr::int(3))
                .and(Expr::col("y").is_null().not()),
        );
        let s = render_plan(&plan, f).unwrap();
        assert!(s.contains("Join [k = k, left]"));
        assert!(s.contains("Select [x, y]"));
        assert!(s.contains("Concat"));
        assert!(s.contains("(x > 3 and not y is null)"));
    }
}
