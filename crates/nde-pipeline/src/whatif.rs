//! Provenance-based what-if analysis (paper §2.2).
//!
//! The tutorial highlights "the connection to related areas such as
//! incremental view maintenance of the pipeline outputs based on changes in
//! their inputs" and cites data-centric what-if analyses (Grafberger et al.
//! '23). Given an executed pipeline *with provenance*, this module answers
//! **"what would the output be if these source tuples were deleted?"**
//! without re-running the pipeline: evaluate every output row's provenance
//! polynomial in the Boolean semiring and keep the rows that remain
//! derivable.
//!
//! Evaluation runs on the hash-consed [`crate::provenance::ProvArena`]:
//! one forward pass over the interned node table answers a single deletion
//! set ([`predict_deletion`]), and the bitset evaluator answers **64
//! deletion sets per pass** ([`predict_deletions_batch`]) — no recursion,
//! no per-row tree walks.
//!
//! ## Exactness
//!
//! The prediction is exact for *monotone* pipelines (sources, inner joins,
//! fuzzy joins matching by best candidate, filters, projections, selects,
//! concat, distinct) **when the deletion touches only sources that the kept
//! rows depend on conjunctively** — e.g. the primary table of the hiring
//! pipeline. Two caveats, both detected by the accompanying tests:
//!
//! * deleting tuples of the *right side of a left join* pads the re-executed
//!   row with nulls instead of deleting it, so the prediction is
//!   conservative there;
//! * deleting the best candidate of a *fuzzy join* can promote the
//!   second-best match on re-execution, which deletion propagation cannot
//!   see.

use crate::provenance::{Lineage, TupleId};
use crate::Result;
use nde_data::fxhash::{FxHashMap, FxHashSet};
use nde_data::Table;

/// The predicted effect of deleting source tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletionEffect {
    /// Output rows (indices into the original output) that survive.
    pub surviving_rows: Vec<usize>,
    /// Output rows that would disappear.
    pub deleted_rows: Vec<usize>,
}

impl DeletionEffect {
    /// Number of output rows the prediction covers.
    pub fn total_rows(&self) -> usize {
        self.surviving_rows.len() + self.deleted_rows.len()
    }

    /// Fraction of output rows lost.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.total_rows();
        if total == 0 {
            return 0.0;
        }
        self.deleted_rows.len() as f64 / total as f64
    }
}

/// Predict which output rows survive deleting `deleted` source tuples:
/// one Boolean-semiring pass over the provenance arena.
pub fn predict_deletion(lineage: &Lineage, deleted: &[TupleId]) -> DeletionEffect {
    let dead: FxHashSet<TupleId> = deleted.iter().copied().collect();
    let truth = lineage.arena.eval_bool(&|t| !dead.contains(&t));
    let mut surviving_rows = Vec::new();
    let mut deleted_rows = Vec::new();
    for (row, id) in lineage.rows.iter().enumerate() {
        if truth[id.index()] {
            surviving_rows.push(row);
        } else {
            deleted_rows.push(row);
        }
    }
    DeletionEffect {
        surviving_rows,
        deleted_rows,
    }
}

/// Predict the effect of *many* deletion sets at once via the bitset
/// evaluator: scenarios are packed 64 per `u64` lane, so `k` deletion sets
/// cost `ceil(k / 64)` arena passes instead of `k`. Returns one
/// [`DeletionEffect`] per input set, identical to calling
/// [`predict_deletion`] on each set individually.
pub fn predict_deletions_batch(
    lineage: &Lineage,
    deletions: &[Vec<TupleId>],
) -> Vec<DeletionEffect> {
    predict_deletions_batch_threaded(lineage, deletions, 1)
}

/// [`predict_deletions_batch`] with the 64-lane chunks spread over
/// `threads` workers. Chunks are fully independent arena passes and
/// results come back sorted by chunk index, so the output is bit-identical
/// at every thread count (including 1, which runs inline).
pub fn predict_deletions_batch_threaded(
    lineage: &Lineage,
    deletions: &[Vec<TupleId>],
    threads: usize,
) -> Vec<DeletionEffect> {
    use nde_data::par::{CostHint, WorkerFailure};
    use nde_data::pool::WorkerPool;
    use std::sync::atomic::AtomicBool;

    let chunks: Vec<&[Vec<TupleId>]> = deletions.chunks(64).collect();
    let stop = AtomicBool::new(false);
    // Chunk cost scales with arena size; probe the first chunk rather than
    // guessing (the timing can only change scheduling, never output).
    let per_chunk = WorkerPool::shared()
        .map_indexed::<Vec<DeletionEffect>, (), _>(
            threads,
            0..chunks.len() as u64,
            &stop,
            CostHint::Unknown,
            |i| {
                let chunk = chunks[i as usize];
                // dead_mask[t] bit j set = tuple t is deleted in scenario j.
                let mut dead_mask: FxHashMap<TupleId, u64> = FxHashMap::default();
                for (j, set) in chunk.iter().enumerate() {
                    for t in set {
                        *dead_mask.entry(*t).or_insert(0) |= 1u64 << j;
                    }
                }
                let lanes = lineage
                    .arena
                    .eval_bool_lanes(&|t| !dead_mask.get(&t).copied().unwrap_or(0));
                let mut effects = Vec::with_capacity(chunk.len());
                for (j, _) in chunk.iter().enumerate() {
                    let mut surviving_rows = Vec::new();
                    let mut deleted_rows = Vec::new();
                    for (row, id) in lineage.rows.iter().enumerate() {
                        if (lanes[id.index()] >> j) & 1 == 1 {
                            surviving_rows.push(row);
                        } else {
                            deleted_rows.push(row);
                        }
                    }
                    effects.push(DeletionEffect {
                        surviving_rows,
                        deleted_rows,
                    });
                }
                Ok(effects)
            },
        )
        .unwrap_or_else(|fail| match fail {
            WorkerFailure::Err(..) => unreachable!("chunk evaluation is infallible"),
            WorkerFailure::Panic(i, msg) => panic!("what-if worker panicked at chunk {i}: {msg}"),
        });
    per_chunk.into_iter().flat_map(|(_, e)| e).collect()
}

/// Materialize the predicted post-deletion output table from the original
/// output (no pipeline re-execution).
pub fn apply_deletion(output: &Table, effect: &DeletionEffect) -> Result<Table> {
    Ok(output.take(&effect.surviving_rows)?)
}

/// Convenience: delete rows of one named source.
pub fn delete_source_rows(
    lineage: &Lineage,
    source_name: &str,
    rows: &[usize],
) -> Result<DeletionEffect> {
    let src = lineage.source_index(source_name).ok_or_else(|| {
        crate::PipelineError::InvalidPlan(format!(
            "source `{source_name}` not in lineage (sources: {:?})",
            lineage.sources
        ))
    })?;
    let deleted: Vec<TupleId> = rows.iter().map(|&r| TupleId::new(src, r as u32)).collect();
    Ok(predict_deletion(lineage, &deleted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::plan::Plan;
    use nde_data::generate::hiring::HiringScenario;

    fn run_pipeline(s: &HiringScenario) -> (Table, Lineage) {
        let (plan, root) = Plan::hiring_pipeline();
        let out = Executor::new()
            .with_provenance(true)
            .run(
                &plan,
                root,
                &[
                    ("train_df", &s.letters),
                    ("jobdetail_df", &s.job_details),
                    ("social_df", &s.social),
                ],
            )
            .unwrap();
        (out.table, out.provenance.unwrap())
    }

    #[test]
    fn predicted_deletion_matches_reexecution_for_primary_source() {
        let s = HiringScenario::generate(150, 91);
        let (output, lineage) = run_pipeline(&s);

        // Delete 20 letters rows; predict, then re-execute for ground truth.
        let victims: Vec<usize> = (0..20).map(|i| i * 7 % s.letters.n_rows()).collect();
        let mut victims = victims;
        victims.sort_unstable();
        victims.dedup();
        let effect = delete_source_rows(&lineage, "train_df", &victims).unwrap();
        let predicted = apply_deletion(&output, &effect).unwrap();

        let keep: Vec<usize> = (0..s.letters.n_rows())
            .filter(|r| !victims.contains(r))
            .collect();
        let reduced = HiringScenario {
            letters: s.letters.take(&keep).unwrap(),
            job_details: s.job_details.clone(),
            social: s.social.clone(),
        };
        let (actual, _) = run_pipeline(&reduced);

        assert_eq!(predicted.n_rows(), actual.n_rows());
        for r in 0..actual.n_rows() {
            assert_eq!(predicted.row(r).unwrap(), actual.row(r).unwrap());
        }
    }

    #[test]
    fn deleting_a_job_kills_all_its_letters_rows() {
        let s = HiringScenario::generate(120, 92);
        let (output, lineage) = run_pipeline(&s);
        // Pick the job of the first output row.
        let job = output.get(0, "job_id").unwrap().as_int().unwrap();
        let job_row = (0..s.job_details.n_rows())
            .find(|&r| s.job_details.get(r, "job_id").unwrap().as_int() == Some(job))
            .unwrap();
        let effect = delete_source_rows(&lineage, "jobdetail_df", &[job_row]).unwrap();
        // Every output row with this job must disappear; no others from the
        // inner-join path.
        for r in 0..output.n_rows() {
            let has_job = output.get(r, "job_id").unwrap().as_int() == Some(job);
            assert_eq!(effect.deleted_rows.contains(&r), has_job, "row {r}");
        }
        assert!(!effect.deleted_rows.is_empty());
        assert_eq!(effect.total_rows(), output.n_rows());
        assert!(effect.loss_fraction() > 0.0);
    }

    #[test]
    fn empty_deletion_is_identity() {
        let s = HiringScenario::generate(60, 93);
        let (output, lineage) = run_pipeline(&s);
        let effect = predict_deletion(&lineage, &[]);
        assert_eq!(effect.surviving_rows.len(), output.n_rows());
        assert!(effect.deleted_rows.is_empty());
        assert_eq!(effect.loss_fraction(), 0.0);
        let predicted = apply_deletion(&output, &effect).unwrap();
        assert_eq!(predicted, output);
    }

    #[test]
    fn batch_prediction_matches_one_by_one() {
        let s = HiringScenario::generate(120, 96);
        let (_, lineage) = run_pipeline(&s);
        // 70 deletion sets — crosses the 64-lane boundary on purpose.
        let sets: Vec<Vec<TupleId>> = (0..70)
            .map(|k| {
                (0..=(k % 5))
                    .map(|j| TupleId::new(0, ((k * 13 + j * 7) % s.letters.n_rows()) as u32))
                    .collect()
            })
            .collect();
        let batched = predict_deletions_batch(&lineage, &sets);
        assert_eq!(batched.len(), sets.len());
        for (k, set) in sets.iter().enumerate() {
            assert_eq!(batched[k], predict_deletion(&lineage, set), "set {k}");
        }
    }

    #[test]
    fn left_join_caveat_is_conservative() {
        // Deleting a social row kills the joined output row in the
        // prediction, while re-execution would null-pad it: the prediction
        // is a conservative subset. Document the direction of the error.
        let s = HiringScenario::generate(100, 94);
        let (_output, lineage) = run_pipeline(&s);
        let src = lineage.source_index("social_df").unwrap();
        // Find an output row depending on some social tuple.
        let (out_row, social_row) = (0..lineage.n_rows())
            .find_map(|r| {
                lineage
                    .row_tuples(r)
                    .into_iter()
                    .find(|t| t.source == src)
                    .map(|t| (r, t.row as usize))
            })
            .expect("some row joined social data");
        let effect = delete_source_rows(&lineage, "social_df", &[social_row]).unwrap();
        assert!(effect.deleted_rows.contains(&out_row));
        // Re-execution keeps the row (null-padded): prediction ⊆ actual.
        let keep: Vec<usize> = (0..s.social.n_rows())
            .filter(|&r| r != social_row)
            .collect();
        let reduced = HiringScenario {
            letters: s.letters.clone(),
            job_details: s.job_details.clone(),
            social: s.social.take(&keep).unwrap(),
        };
        let (actual, _) = run_pipeline(&reduced);
        assert!(actual.n_rows() >= effect.surviving_rows.len());
    }

    #[test]
    fn unknown_source_rejected() {
        let s = HiringScenario::generate(30, 95);
        let (_, lineage) = run_pipeline(&s);
        assert!(delete_source_rows(&lineage, "nope", &[0]).is_err());
    }
}
