//! Commutative semirings for provenance evaluation (Green et al., PODS'07).
//!
//! A provenance polynomial over source tuples can be evaluated in any
//! commutative semiring by assigning each tuple variable an element and
//! folding `Plus`/`Times` through the semiring operations. Different
//! semirings answer different questions about the same polynomial:
//! possibility (Boolean), multiplicity (counting), or minimal witnesses
//! (why-provenance).

use std::collections::BTreeSet;

/// A commutative semiring `(T, plus, times, zero, one)`.
pub trait Semiring {
    /// Element type.
    type Elem: Clone;
    /// Additive identity.
    fn zero() -> Self::Elem;
    /// Multiplicative identity.
    fn one() -> Self::Elem;
    /// Addition (alternative derivations).
    fn plus(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplication (joint derivations).
    fn times(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// The Boolean semiring: "is this output row derivable at all?"
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn plus(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn times(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// The counting semiring ℕ: "how many derivations does this row have?"
pub struct CountSemiring;

impl Semiring for CountSemiring {
    type Elem = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn plus(a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn times(a: &u64, b: &u64) -> u64 {
        a * b
    }
}

/// A witness: a set of source-tuple variables that jointly derive a row.
pub type Witness = BTreeSet<u64>;

/// The why-provenance semiring: sets of witnesses.
/// `plus` is union of witness sets, `times` is pairwise union of witnesses.
pub struct WhySemiring;

impl Semiring for WhySemiring {
    type Elem = BTreeSet<Witness>;
    fn zero() -> Self::Elem {
        BTreeSet::new()
    }
    fn one() -> Self::Elem {
        let mut s = BTreeSet::new();
        s.insert(Witness::new());
        s
    }
    fn plus(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        a.union(b).cloned().collect()
    }
    fn times(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let mut out = BTreeSet::new();
        for wa in a {
            for wb in b {
                out.insert(wa.union(wb).cloned().collect());
            }
        }
        out
    }
}

/// A why-provenance singleton for variable `v`.
pub fn why_var(v: u64) -> <WhySemiring as Semiring>::Elem {
    let mut w = Witness::new();
    w.insert(v);
    let mut s = BTreeSet::new();
    s.insert(w);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_semiring_laws() {
        assert!(!BoolSemiring::zero());
        assert!(BoolSemiring::one());
        assert!(BoolSemiring::plus(&false, &true));
        assert!(!BoolSemiring::times(&false, &true));
        // zero annihilates, one is neutral.
        assert!(!BoolSemiring::times(&BoolSemiring::zero(), &true));
        assert!(BoolSemiring::times(&BoolSemiring::one(), &true));
    }

    #[test]
    fn count_semiring_counts_derivations() {
        // (a + b) * c has 2 derivations when a=b=c=1.
        let a = 1u64;
        let b = 1u64;
        let c = 1u64;
        let sum = CountSemiring::plus(&a, &b);
        assert_eq!(CountSemiring::times(&sum, &c), 2);
    }

    #[test]
    fn why_semiring_products_union_witnesses() {
        let a = why_var(1);
        let b = why_var(2);
        let prod = WhySemiring::times(&a, &b);
        assert_eq!(prod.len(), 1);
        let w = prod.iter().next().unwrap();
        assert!(w.contains(&1) && w.contains(&2));
    }

    #[test]
    fn why_semiring_plus_keeps_alternatives() {
        let a = why_var(1);
        let b = why_var(2);
        let sum = WhySemiring::plus(&a, &b);
        assert_eq!(sum.len(), 2);
        // Distribution: (a + b) * c yields two 2-element witnesses.
        let c = why_var(3);
        let dist = WhySemiring::times(&sum, &c);
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().all(|w| w.len() == 2 && w.contains(&3)));
    }

    #[test]
    fn why_identities() {
        let a = why_var(7);
        assert_eq!(WhySemiring::plus(&WhySemiring::zero(), &a), a);
        assert_eq!(WhySemiring::times(&WhySemiring::one(), &a), a);
        assert_eq!(
            WhySemiring::times(&WhySemiring::zero(), &a),
            WhySemiring::zero()
        );
    }
}
