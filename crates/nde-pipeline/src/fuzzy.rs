//! Fuzzy string matching and fuzzy joins.
//!
//! Fig. 3's pipeline description includes "(fuzzy) joins": real integration
//! pipelines match keys like names or addresses that differ by typos or
//! formatting. We provide normalized Levenshtein similarity and a
//! [`fuzzy_join`] that pairs each left row with its best-scoring right row
//! above a threshold — with the same lineage reporting as the exact joins,
//! so provenance tracking extends to fuzzy matching unchanged.

use crate::Result;
use nde_data::par::{CostHint, WorkerFailure};
use nde_data::pool::WorkerPool;
use nde_data::Table;
use std::sync::atomic::AtomicBool;

/// Left rows are matched in fixed-size chunks merged in index order, so
/// [`fuzzy_join_par`] output is bit-identical for every thread count.
const ROW_CHUNK: usize = 64;

/// Levenshtein edit distance between two strings (bytewise on chars).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized similarity in `[0, 1]`: `1 − distance / max_len` after
/// lowercasing and trimming. Two empty strings are fully similar.
pub fn similarity(a: &str, b: &str) -> f64 {
    let a = a.trim().to_lowercase();
    let b = b.trim().to_lowercase();
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

/// Fuzzy inner join on string keys: each left row matches the single
/// highest-similarity right row with `similarity >= threshold` (ties broken
/// by the lower right index). Unmatched left rows are dropped. Returns the
/// joined table and the `(left_row, right_row)` lineage.
///
/// Cost is `O(|L| · |R|)` similarity computations — fuzzy matching has no
/// hash shortcut; keep it for the smaller dimension tables it is meant for.
pub fn fuzzy_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    threshold: f64,
) -> Result<(Table, Vec<(usize, usize)>)> {
    fuzzy_join_par(left, right, left_key, right_key, threshold, 1)
}

/// [`fuzzy_join`] with parallel matching: each left value's best match
/// depends only on that value, so work merged in index order gives
/// bit-identical output for every `threads` value.
///
/// On the columnar backend both key columns are dictionary-encoded, and the
/// expensive similarity scan runs once per **distinct** left value against
/// the **distinct** right values (parallel over left dictionary codes) — a
/// per-row lookup table replaces the per-row `O(|R|)` scan. The reference
/// backend keeps the seed per-row kernel; both produce identical lineage.
pub fn fuzzy_join_par(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    threshold: f64,
    threads: usize,
) -> Result<(Table, Vec<(usize, usize)>)> {
    use crate::PipelineError;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(PipelineError::InvalidPlan(format!(
            "fuzzy threshold must be in [0,1], got {threshold}"
        )));
    }
    let lineage = match (left.col_str(left_key), right.col_str(right_key)) {
        (Some(lp), Some(rp)) => match_by_dictionary(lp, rp, threshold, threads)?,
        _ => match_by_rows(left, right, left_key, right_key, threshold, threads)?,
    };

    // Materialize with the hash-join conventions (right key dropped, name
    // clashes suffixed `_right`); plane-wise gather on the columnar backend.
    let rk = right.schema().index_of(right_key)?;
    let opt_lineage: Vec<(usize, Option<usize>)> =
        lineage.iter().map(|&(l, r)| (l, Some(r))).collect();
    let out = left.materialize_join(right, &opt_lineage, rk)?;
    Ok((out, lineage))
}

/// Columnar kernel: score distinct left values (dictionary codes) against
/// distinct right values, then expand per-row lineage through the code
/// lookup table. Right candidates are visited in first-occurrence row order
/// with a strict `>` improvement test — exactly the tie-breaking (lowest
/// right row wins) of the per-row kernel.
fn match_by_dictionary(
    lp: &nde_data::planes::StrPlane,
    rp: &nde_data::planes::StrPlane,
    threshold: f64,
    threads: usize,
) -> Result<Vec<(usize, usize)>> {
    use crate::PipelineError;
    // Distinct right candidates as (first_row, code), in first-occurrence
    // order. Rows after a code's first carry equal similarity and can never
    // win a strict-improvement test, so they are skipped entirely.
    let mut seen = vec![false; rp.dict().len()];
    let mut candidates: Vec<(usize, u32)> = Vec::new();
    for row in 0..rp.len() {
        if !rp.nulls.get(row) {
            let code = rp.codes[row];
            if !seen[code as usize] {
                seen[code as usize] = true;
                candidates.push((row, code));
            }
        }
    }

    // Best right row per left dictionary code, parallel over codes. The
    // dictionary may hold values no surviving row references (shared across
    // row subsets); scoring them is wasted-but-bounded work.
    let n_codes = lp.dict().len() as u64;
    let stop = AtomicBool::new(false);
    // Each item scores one left value against every distinct right value.
    let cost = CostHint::PerItemNanos((candidates.len().max(1)) as u64 * 200);
    let parts = WorkerPool::shared()
        .map_indexed(threads, 0..n_codes, &stop, cost, |code| {
            let lv = lp.dict().value(code as u32);
            let mut best: Option<(usize, f64)> = None;
            for &(ri, rcode) in &candidates {
                let sim = similarity(lv, rp.dict().value(rcode));
                if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
                    best = Some((ri, sim));
                }
            }
            Ok::<_, PipelineError>(best.map(|(ri, _)| ri))
        })
        .map_err(|fail| match fail {
            WorkerFailure::Err(_, e) => e,
            // Unreachable in practice: similarity scoring does not panic.
            WorkerFailure::Panic(_, msg) => {
                PipelineError::InvalidPlan(format!("fuzzy join worker panicked: {msg}"))
            }
        })?;
    let best_of_code: Vec<Option<usize>> = parts.into_iter().map(|(_, b)| b).collect();

    let mut lineage: Vec<(usize, usize)> = Vec::new();
    for row in 0..lp.len() {
        if !lp.nulls.get(row) {
            if let Some(ri) = best_of_code[lp.codes[row] as usize] {
                lineage.push((row, ri));
            }
        }
    }
    Ok(lineage)
}

/// Reference kernel: the seed per-row scan over materialized key columns,
/// chunk-parallel over left rows.
fn match_by_rows(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    threshold: f64,
    threads: usize,
) -> Result<Vec<(usize, usize)>> {
    use crate::PipelineError;
    let lcol = left.column(left_key)?;
    let rcol = right.column(right_key)?;
    let lvals = lcol.as_str_slice().ok_or_else(|| {
        PipelineError::InvalidPlan(format!(
            "fuzzy join key `{left_key}` must be a string column"
        ))
    })?;
    let rvals = rcol.as_str_slice().ok_or_else(|| {
        PipelineError::InvalidPlan(format!(
            "fuzzy join key `{right_key}` must be a string column"
        ))
    })?;

    let chunks = lvals.len().div_ceil(ROW_CHUNK) as u64;
    let stop = AtomicBool::new(false);
    // Each chunk scores 64 left rows against every right row.
    let cost = CostHint::PerItemNanos((ROW_CHUNK * rvals.len().max(1)) as u64 * 200);
    let parts = WorkerPool::shared()
        .map_indexed(threads, 0..chunks, &stop, cost, |c| {
            let start = c as usize * ROW_CHUNK;
            let end = (start + ROW_CHUNK).min(lvals.len());
            let mut part: Vec<(usize, usize)> = Vec::new();
            for (li, lv) in lvals.iter().enumerate().take(end).skip(start) {
                let Some(lv) = lv else { continue };
                let mut best: Option<(usize, f64)> = None;
                for (ri, rv) in rvals.iter().enumerate() {
                    let Some(rv) = rv else { continue };
                    let sim = similarity(lv, rv);
                    if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
                        best = Some((ri, sim));
                    }
                }
                if let Some((ri, _)) = best {
                    part.push((li, ri));
                }
            }
            Ok::<_, PipelineError>(part)
        })
        .map_err(|fail| match fail {
            WorkerFailure::Err(_, e) => e,
            // Unreachable in practice: similarity scoring does not panic.
            WorkerFailure::Panic(_, msg) => {
                PipelineError::InvalidPlan(format!("fuzzy join worker panicked: {msg}"))
            }
        })?;
    let mut lineage: Vec<(usize, usize)> = Vec::new();
    for (_, part) in parts {
        lineage.extend(part);
    }
    Ok(lineage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::{DataType, Field, Schema, Value};

    fn companies() -> Table {
        let mut t = Table::empty(
            "companies",
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("rating", DataType::Float),
            ])
            .unwrap(),
        );
        t.push_row(vec!["Acme Corp".into(), 4.5.into()]).unwrap();
        t.push_row(vec!["Globex".into(), 3.2.into()]).unwrap();
        t.push_row(vec!["Initech".into(), 2.8.into()]).unwrap();
        t
    }

    fn mentions() -> Table {
        let mut t = Table::empty(
            "mentions",
            Schema::new(vec![
                Field::new("employer", DataType::Str),
                Field::new("person", DataType::Int),
            ])
            .unwrap(),
        );
        t.push_row(vec!["acme corp.".into(), 1.into()]).unwrap(); // typo-ish
        t.push_row(vec!["GLOBEX".into(), 2.into()]).unwrap(); // case
        t.push_row(vec!["Umbrella".into(), 3.into()]).unwrap(); // no match
        t.push_row(vec![Value::Null, 4.into()]).unwrap(); // null key
        t
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn similarity_normalizes_case_and_space() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("Acme", " acme "), 1.0);
        assert!(similarity("acme corp", "acme corp.") > 0.85);
        assert!(similarity("acme", "umbrella") < 0.3);
    }

    #[test]
    fn fuzzy_join_matches_despite_typos() {
        let (joined, lineage) =
            fuzzy_join(&mentions(), &companies(), "employer", "name", 0.75).unwrap();
        // acme corp. -> Acme Corp; GLOBEX -> Globex; Umbrella and Null drop.
        assert_eq!(lineage, vec![(0, 0), (1, 1)]);
        assert_eq!(joined.n_rows(), 2);
        assert_eq!(joined.get(0, "rating").unwrap(), Value::Float(4.5));
        assert_eq!(joined.get(1, "rating").unwrap(), Value::Float(3.2));
        // Right key column is dropped.
        assert!(!joined.schema().contains("name"));
    }

    #[test]
    fn threshold_one_requires_normalized_equality() {
        let (joined, lineage) =
            fuzzy_join(&mentions(), &companies(), "employer", "name", 1.0).unwrap();
        // Only GLOBEX == Globex after normalization.
        assert_eq!(lineage, vec![(1, 1)]);
        assert_eq!(joined.n_rows(), 1);
    }

    #[test]
    fn best_match_wins_among_candidates() {
        let mut near = companies();
        near.push_row(vec!["Acme Corp.".into(), 9.9.into()])
            .unwrap();
        let (joined, lineage) = fuzzy_join(&mentions(), &near, "employer", "name", 0.75).unwrap();
        // "acme corp." matches the exact-normalized "Acme Corp." (row 3)
        // rather than "Acme Corp" (row 0).
        assert_eq!(lineage[0], (0, 3));
        assert_eq!(joined.get(0, "rating").unwrap(), Value::Float(9.9));
    }

    #[test]
    fn validates_arguments() {
        assert!(fuzzy_join(&mentions(), &companies(), "employer", "name", 1.5).is_err());
        assert!(fuzzy_join(&mentions(), &companies(), "person", "name", 0.5).is_err());
        assert!(fuzzy_join(&mentions(), &companies(), "employer", "rating", 0.5).is_err());
    }

    #[test]
    fn parallel_fuzzy_join_is_bit_identical() {
        // Enough left rows to span several chunks, with variants of every
        // company name plus misses and nulls.
        let mut left = Table::empty(
            "left",
            Schema::new(vec![
                Field::new("employer", DataType::Str),
                Field::new("row", DataType::Int),
            ])
            .unwrap(),
        );
        let variants = [
            "acme corp.",
            "ACME CORP",
            "globexx",
            "initech inc",
            "umbrella",
        ];
        for i in 0..300i64 {
            let v = if i % 41 == 0 {
                Value::Null
            } else {
                Value::Str(variants[i as usize % variants.len()].into())
            };
            left.push_row(vec![v, i.into()]).unwrap();
        }
        let (seq, seq_lineage) =
            fuzzy_join_par(&left, &companies(), "employer", "name", 0.6, 1).unwrap();
        assert!(seq.n_rows() > 0);
        for threads in [2, 4, 7] {
            let (par, par_lineage) =
                fuzzy_join_par(&left, &companies(), "employer", "name", 0.6, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_lineage, seq_lineage, "threads={threads}");
        }
    }
}
