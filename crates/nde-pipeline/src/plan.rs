//! Logical pipeline plans: an arena-allocated operator DAG.

use crate::expr::Expr;
use crate::{PipelineError, Result};

/// Handle to a node within a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Join variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join: unmatched rows dropped.
    Inner,
    /// Left outer join: unmatched left rows kept with nulls.
    Left,
}

/// One operator of the pipeline DAG.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// A named input table.
    Source {
        /// Name used to look up the table at execution time.
        name: String,
    },
    /// Fuzzy string join: each left row pairs with its best right match at
    /// or above a similarity threshold (see [`crate::fuzzy::fuzzy_join`]).
    FuzzyJoin {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
        /// String join key on the left.
        left_key: String,
        /// String join key on the right.
        right_key: String,
        /// Normalized-similarity threshold in `[0, 1]`.
        threshold: f64,
    },
    /// Equi-join of two upstream nodes.
    Join {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
        /// Join key on the left.
        left_key: String,
        /// Join key on the right.
        right_key: String,
        /// Inner or left-outer.
        how: JoinType,
    },
    /// Keep rows satisfying a predicate.
    Filter {
        /// Input node.
        input: NodeId,
        /// Row predicate.
        predicate: Expr,
    },
    /// Add a derived column computed by an expression (a projection UDF,
    /// like Fig. 3's `has_twitter = twitter.notnull()`).
    Project {
        /// Input node.
        input: NodeId,
        /// Name of the derived column.
        column: String,
        /// Defining expression.
        expr: Expr,
    },
    /// Keep only the named columns.
    SelectColumns {
        /// Input node.
        input: NodeId,
        /// Columns to keep, in order.
        columns: Vec<String>,
    },
    /// Deduplicate rows by a key column, keeping the first occurrence.
    /// With provenance on, a surviving row's polynomial is the `Plus`
    /// (alternative derivations) of all duplicates it absorbed.
    Distinct {
        /// Input node.
        input: NodeId,
        /// Key column defining duplicates.
        key: String,
    },
    /// Row-wise union of two conformant inputs.
    Concat {
        /// First input.
        left: NodeId,
        /// Second input.
        right: NodeId,
    },
}

/// An arena of plan nodes forming a DAG (children always precede parents).
#[derive(Debug, Clone, Default)]
pub struct Plan {
    nodes: Vec<PlanNode>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Plan {
        Plan::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> Result<&PlanNode> {
        self.nodes.get(id.0).ok_or(PipelineError::UnknownNode(id.0))
    }

    fn push(&mut self, node: PlanNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    fn check(&self, id: NodeId) -> NodeId {
        debug_assert!(id.0 < self.nodes.len(), "node id from another plan");
        id
    }

    /// Add a source node reading the input table registered under `name`.
    pub fn source(&mut self, name: impl Into<String>) -> NodeId {
        self.push(PlanNode::Source { name: name.into() })
    }

    /// Add an equi-join node.
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
        how: JoinType,
    ) -> NodeId {
        let (left, right) = (self.check(left), self.check(right));
        self.push(PlanNode::Join {
            left,
            right,
            left_key: left_key.into(),
            right_key: right_key.into(),
            how,
        })
    }

    /// Add a fuzzy-join node.
    pub fn fuzzy_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
        threshold: f64,
    ) -> NodeId {
        let (left, right) = (self.check(left), self.check(right));
        self.push(PlanNode::FuzzyJoin {
            left,
            right,
            left_key: left_key.into(),
            right_key: right_key.into(),
            threshold,
        })
    }

    /// Add a filter node.
    pub fn filter(&mut self, input: NodeId, predicate: Expr) -> NodeId {
        let input = self.check(input);
        self.push(PlanNode::Filter { input, predicate })
    }

    /// Add a derived-column projection node.
    pub fn project(&mut self, input: NodeId, column: impl Into<String>, expr: Expr) -> NodeId {
        let input = self.check(input);
        self.push(PlanNode::Project {
            input,
            column: column.into(),
            expr,
        })
    }

    /// Add a column-selection node.
    pub fn select(&mut self, input: NodeId, columns: &[&str]) -> NodeId {
        let input = self.check(input);
        self.push(PlanNode::SelectColumns {
            input,
            columns: columns.iter().map(|c| c.to_string()).collect(),
        })
    }

    /// Add a distinct-by-key node.
    pub fn distinct(&mut self, input: NodeId, key: impl Into<String>) -> NodeId {
        let input = self.check(input);
        self.push(PlanNode::Distinct {
            input,
            key: key.into(),
        })
    }

    /// Add a row-wise concat node.
    pub fn concat(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let (left, right) = (self.check(left), self.check(right));
        self.push(PlanNode::Concat { left, right })
    }

    /// Names of all source tables referenced by the plan, in first-use order.
    pub fn source_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for node in &self.nodes {
            if let PlanNode::Source { name } = node {
                if !names.contains(&name.as_str()) {
                    names.push(name.as_str());
                }
            }
        }
        names
    }

    /// The children of a node (upstream inputs).
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>> {
        Ok(match self.node(id)? {
            PlanNode::Source { .. } => vec![],
            PlanNode::Join { left, right, .. }
            | PlanNode::FuzzyJoin { left, right, .. }
            | PlanNode::Concat { left, right } => {
                vec![*left, *right]
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Distinct { input, .. }
            | PlanNode::SelectColumns { input, .. } => vec![*input],
        })
    }

    /// Build the standard Fig. 3 hiring pipeline over sources
    /// `train_df`, `jobdetail_df`, `social_df`. Returns the plan and its root.
    pub fn hiring_pipeline() -> (Plan, NodeId) {
        let mut plan = Plan::new();
        let letters = plan.source("train_df");
        let jobs = plan.source("jobdetail_df");
        let social = plan.source("social_df");
        let j1 = plan.join(letters, jobs, "job_id", "job_id", JoinType::Inner);
        let j2 = plan.join(j1, social, "person_id", "person_id", JoinType::Left);
        let filtered = plan.filter(j2, Expr::col("sector").eq(Expr::str("healthcare")));
        let projected = plan.project(filtered, "has_twitter", Expr::col("twitter").is_not_null());
        (plan, projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_dag() {
        let mut p = Plan::new();
        let a = p.source("a");
        let b = p.source("b");
        let j = p.join(a, b, "k", "k", JoinType::Inner);
        let f = p.filter(j, Expr::col("x").is_not_null());
        assert_eq!(p.len(), 4);
        assert_eq!(p.children(f).unwrap(), vec![j]);
        assert_eq!(p.children(j).unwrap(), vec![a, b]);
        assert!(p.children(a).unwrap().is_empty());
        assert!(matches!(p.node(f).unwrap(), PlanNode::Filter { .. }));
        assert!(p.node(NodeId(99)).is_err());
    }

    #[test]
    fn source_names_deduped_in_order() {
        let mut p = Plan::new();
        let a = p.source("train");
        let b = p.source("side");
        let _ = p.source("train");
        let _ = p.join(a, b, "k", "k", JoinType::Inner);
        assert_eq!(p.source_names(), vec!["train", "side"]);
    }

    #[test]
    fn hiring_pipeline_shape() {
        let (plan, root) = Plan::hiring_pipeline();
        assert_eq!(
            plan.source_names(),
            vec!["train_df", "jobdetail_df", "social_df"]
        );
        assert!(matches!(plan.node(root).unwrap(), PlanNode::Project { .. }));
        // Root chains back to all three sources.
        let mut stack = vec![root];
        let mut sources = 0;
        while let Some(id) = stack.pop() {
            if plan.children(id).unwrap().is_empty() {
                sources += 1;
            }
            stack.extend(plan.children(id).unwrap());
        }
        assert_eq!(sources, 3);
    }
}
