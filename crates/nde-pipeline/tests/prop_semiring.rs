//! Randomized-property tests for provenance semantics: semiring laws and
//! the consistency of different semiring evaluations of the same
//! polynomial. Cases come from the in-tree seeded PRNG, so failures
//! reproduce exactly.

use nde_data::rng::{seeded, Rng, StdRng};
use nde_pipeline::provenance::{ProvArena, ProvExpr, TupleId};
use nde_pipeline::semiring::{why_var, BoolSemiring, CountSemiring, Semiring, WhySemiring};
use std::collections::BTreeSet;

const CASES: usize = 200;

fn random_why_elem(rng: &mut StdRng) -> <WhySemiring as Semiring>::Elem {
    let n_sets = rng.gen_range(0..3usize);
    (0..n_sets)
        .map(|_| {
            let n = rng.gen_range(0..3usize);
            (0..n)
                .map(|_| rng.gen_range(0..6u64))
                .collect::<BTreeSet<u64>>()
        })
        .collect()
}

/// Random provenance expression over a small variable pool, with bounded
/// depth so evaluation stays cheap.
fn random_prov_expr(rng: &mut StdRng, depth: usize) -> ProvExpr {
    if depth == 0 || rng.gen_bool(0.4) {
        return ProvExpr::Var(TupleId::new(rng.gen_range(0..2u32), rng.gen_range(0..5u32)));
    }
    let n = rng.gen_range(1..3usize);
    let children: Vec<ProvExpr> = (0..n).map(|_| random_prov_expr(rng, depth - 1)).collect();
    if rng.gen_bool(0.5) {
        ProvExpr::Times(children)
    } else {
        ProvExpr::Plus(children)
    }
}

#[test]
fn why_semiring_laws() {
    let mut rng = seeded(31);
    for _ in 0..CASES {
        let a = random_why_elem(&mut rng);
        let b = random_why_elem(&mut rng);
        let c = random_why_elem(&mut rng);
        // Commutativity.
        assert_eq!(WhySemiring::plus(&a, &b), WhySemiring::plus(&b, &a));
        assert_eq!(WhySemiring::times(&a, &b), WhySemiring::times(&b, &a));
        // Associativity.
        assert_eq!(
            WhySemiring::plus(&WhySemiring::plus(&a, &b), &c),
            WhySemiring::plus(&a, &WhySemiring::plus(&b, &c))
        );
        assert_eq!(
            WhySemiring::times(&WhySemiring::times(&a, &b), &c),
            WhySemiring::times(&a, &WhySemiring::times(&b, &c))
        );
        // Identities and annihilation.
        assert_eq!(WhySemiring::plus(&WhySemiring::zero(), &a), a.clone());
        assert_eq!(WhySemiring::times(&WhySemiring::one(), &a), a.clone());
        assert_eq!(
            WhySemiring::times(&WhySemiring::zero(), &a),
            WhySemiring::zero()
        );
        // Distributivity: a*(b+c) == a*b + a*c.
        assert_eq!(
            WhySemiring::times(&a, &WhySemiring::plus(&b, &c)),
            WhySemiring::plus(&WhySemiring::times(&a, &b), &WhySemiring::times(&a, &c))
        );
    }
}

#[test]
fn bool_eval_agrees_with_why_witnesses() {
    let mut rng = seeded(32);
    for _ in 0..CASES {
        let expr = random_prov_expr(&mut rng, 3);
        let alive_mask: Vec<bool> = (0..16).map(|_| rng.gen_bool(0.5)).collect();
        // A tuple (s, r) is alive iff its mask bit is set.
        let alive = |t: TupleId| alive_mask[(t.source * 5 + t.row) as usize % 16];
        let derivable = expr.eval::<BoolSemiring>(&alive);
        // Why-provenance view: derivable iff some witness is fully alive.
        let why = expr.why();
        let witness_alive = why
            .iter()
            .any(|w| w.iter().all(|&v| alive(TupleId::from_var(v))));
        assert_eq!(derivable, witness_alive);
    }
}

#[test]
fn count_eval_upper_bounds_why_witnesses() {
    let mut rng = seeded(33);
    for _ in 0..CASES {
        let expr = random_prov_expr(&mut rng, 3);
        // Counting all-ones evaluation counts derivations with multiplicity;
        // distinct witnesses can collapse (idempotent union), so the count
        // dominates the witness count.
        let count = expr.eval::<CountSemiring>(&|_| 1);
        let witnesses = expr.why().len() as u64;
        assert!(count >= witnesses, "count {count} < witnesses {witnesses}");
        assert!(witnesses >= 1);
    }
}

#[test]
fn arena_interning_preserves_all_semiring_evaluations() {
    // The hash-consed arena is an *encoding* of the reference tree: for
    // every random expression, interning then evaluating must agree with
    // direct recursive evaluation in every semiring, and the tuple support
    // must match.
    let mut rng = seeded(35);
    for _ in 0..CASES {
        let expr = random_prov_expr(&mut rng, 4);
        let mut arena = ProvArena::new();
        let id = arena.intern_expr(&expr);

        // Boolean under a random deletion pattern.
        let alive_mask: Vec<bool> = (0..16).map(|_| rng.gen_bool(0.5)).collect();
        let alive = |t: TupleId| alive_mask[(t.source * 5 + t.row) as usize % 16];
        assert_eq!(
            arena.eval_bool(&alive)[id.index()],
            expr.eval::<BoolSemiring>(&alive)
        );
        // Bitset lanes agree with the scalar Boolean path lane by lane.
        let lane_mask: Vec<u64> = (0..16).map(|_| rng.gen_range(0..u64::MAX)).collect();
        let lanes_of = |t: TupleId| lane_mask[(t.source * 5 + t.row) as usize % 16];
        let lanes = arena.eval_bool_lanes(&lanes_of)[id.index()];
        for j in [0u32, 1, 31, 63] {
            let alive_j = |t: TupleId| (lanes_of(t) >> j) & 1 == 1;
            assert_eq!((lanes >> j) & 1 == 1, expr.eval::<BoolSemiring>(&alive_j));
        }
        // Counting and why semantics survive interning too.
        assert_eq!(
            arena.eval_nodes::<CountSemiring>(&|_| 1)[id.index()],
            expr.eval::<CountSemiring>(&|_| 1)
        );
        assert_eq!(
            arena.eval_nodes::<WhySemiring>(&|t| why_var(t.as_var()))[id.index()],
            expr.why()
        );
        // Tuple support: direct walk, memoized index, and tree all agree.
        assert_eq!(arena.tuples_of(id), expr.tuples());
        assert_eq!(arena.tuple_index().of(id), expr.tuples().as_slice());
        // Materializing back to a tree is evaluation-equivalent (nested
        // products flatten, so structural equality is not guaranteed).
        let back = arena.expr(id);
        assert_eq!(
            back.eval::<BoolSemiring>(&alive),
            expr.eval::<BoolSemiring>(&alive)
        );
        assert_eq!(back.tuples(), expr.tuples());
    }
}

#[test]
fn arena_interning_is_idempotent_and_shares_nodes() {
    // Interning the same expression twice yields the same id and adds no
    // nodes; interning a forest of expressions with shared structure never
    // stores a distinct subtree twice.
    let mut rng = seeded(36);
    for _ in 0..CASES {
        let expr = random_prov_expr(&mut rng, 4);
        let mut arena = ProvArena::new();
        let id1 = arena.intern_expr(&expr);
        let len1 = arena.len();
        let id2 = arena.intern_expr(&expr);
        assert_eq!(id1, id2);
        assert_eq!(arena.len(), len1, "re-interning must not grow the arena");

        // Children precede parents: the arena is topologically sorted.
        for (id, node) in arena.iter_nodes() {
            if let nde_pipeline::provenance::ProvNodeRef::Times(kids)
            | nde_pipeline::provenance::ProvNodeRef::Plus(kids) = node
            {
                for k in kids {
                    assert!(k.index() < id.index(), "child {k:?} >= parent {id:?}");
                }
            }
        }
    }
}

#[test]
fn tuples_is_exactly_the_var_support() {
    let mut rng = seeded(34);
    for _ in 0..CASES {
        let expr = random_prov_expr(&mut rng, 3);
        let tuples = expr.tuples();
        // Sorted and deduplicated.
        let mut sorted = tuples.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(&tuples, &sorted);
        // Killing every tuple makes the expression underivable; keeping all
        // makes it derivable.
        assert!(expr.eval::<BoolSemiring>(&|_| true));
        assert!(!expr.eval::<BoolSemiring>(&|_| false));
        // Every tuple in support appears in some witness.
        let why = expr.why();
        for t in &tuples {
            let _in_some = why.iter().any(|w| w.contains(&t.as_var()));
            // Plus-branches may make some vars redundant, but a var absent
            // from all witnesses must be removable without changing
            // derivability anywhere; we check the weaker containment:
            assert!(why_var(t.as_var()).len() == 1);
        }
    }
}
