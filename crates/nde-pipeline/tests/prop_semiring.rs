//! Property-based tests for provenance semantics: semiring laws and the
//! consistency of different semiring evaluations of the same polynomial.

use nde_pipeline::provenance::{ProvExpr, TupleId};
use nde_pipeline::semiring::{why_var, BoolSemiring, CountSemiring, Semiring, WhySemiring};
use proptest::prelude::*;

fn why_elem_strategy() -> impl Strategy<Value = <WhySemiring as Semiring>::Elem> {
    prop::collection::vec(prop::collection::btree_set(0u64..6, 0..3), 0..3)
        .prop_map(|sets| sets.into_iter().collect())
}

/// Random provenance expression over a small variable pool.
fn prov_expr_strategy() -> impl Strategy<Value = ProvExpr> {
    let leaf = (0u32..2, 0u32..5).prop_map(|(s, r)| ProvExpr::Var(TupleId::new(s, r)));
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(ProvExpr::Times),
            prop::collection::vec(inner, 1..3).prop_map(ProvExpr::Plus),
        ]
    })
}

proptest! {
    #[test]
    fn why_semiring_laws(
        a in why_elem_strategy(),
        b in why_elem_strategy(),
        c in why_elem_strategy(),
    ) {
        // Commutativity.
        prop_assert_eq!(WhySemiring::plus(&a, &b), WhySemiring::plus(&b, &a));
        prop_assert_eq!(WhySemiring::times(&a, &b), WhySemiring::times(&b, &a));
        // Associativity.
        prop_assert_eq!(
            WhySemiring::plus(&WhySemiring::plus(&a, &b), &c),
            WhySemiring::plus(&a, &WhySemiring::plus(&b, &c))
        );
        prop_assert_eq!(
            WhySemiring::times(&WhySemiring::times(&a, &b), &c),
            WhySemiring::times(&a, &WhySemiring::times(&b, &c))
        );
        // Identities and annihilation.
        prop_assert_eq!(WhySemiring::plus(&WhySemiring::zero(), &a), a.clone());
        prop_assert_eq!(WhySemiring::times(&WhySemiring::one(), &a), a.clone());
        prop_assert_eq!(WhySemiring::times(&WhySemiring::zero(), &a), WhySemiring::zero());
        // Distributivity: a*(b+c) == a*b + a*c.
        prop_assert_eq!(
            WhySemiring::times(&a, &WhySemiring::plus(&b, &c)),
            WhySemiring::plus(&WhySemiring::times(&a, &b), &WhySemiring::times(&a, &c))
        );
    }

    #[test]
    fn bool_eval_agrees_with_why_witnesses(
        expr in prov_expr_strategy(),
        alive_mask in prop::collection::vec(any::<bool>(), 16),
    ) {
        // A tuple (s, r) is alive iff its mask bit is set.
        let alive = |t: TupleId| alive_mask[(t.source * 5 + t.row) as usize % 16];
        let derivable = expr.eval::<BoolSemiring>(&alive);
        // Why-provenance view: derivable iff some witness is fully alive.
        let why = expr.why();
        let witness_alive = why.iter().any(|w| {
            w.iter().all(|&v| alive(TupleId::from_var(v)))
        });
        prop_assert_eq!(derivable, witness_alive);
    }

    #[test]
    fn count_eval_upper_bounds_why_witnesses(expr in prov_expr_strategy()) {
        // Counting all-ones evaluation counts derivations with multiplicity;
        // distinct witnesses can collapse (idempotent union), so the count
        // dominates the witness count.
        let count = expr.eval::<CountSemiring>(&|_| 1);
        let witnesses = expr.why().len() as u64;
        prop_assert!(count >= witnesses, "count {count} < witnesses {witnesses}");
        prop_assert!(witnesses >= 1);
    }

    #[test]
    fn tuples_is_exactly_the_var_support(expr in prov_expr_strategy()) {
        let tuples = expr.tuples();
        // Sorted and deduplicated.
        let mut sorted = tuples.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&tuples, &sorted);
        // Killing every tuple makes the expression underivable; keeping all
        // makes it derivable.
        prop_assert!(expr.eval::<BoolSemiring>(&|_| true));
        prop_assert!(!expr.eval::<BoolSemiring>(&|_| false));
        // Every tuple in support appears in some witness.
        let why = expr.why();
        for t in &tuples {
            let _in_some = why.iter().any(|w| w.contains(&t.as_var()));
            // Plus-branches may make some vars redundant, but a var absent
            // from all witnesses must be removable without changing
            // derivability anywhere; we check the weaker containment:
            prop_assert!(why_var(t.as_var()).len() == 1);
        }
    }
}
