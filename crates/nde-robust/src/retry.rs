//! Bounded retries with exponential backoff for flaky dependencies
//! (cleaning oracles, external services).

use std::time::Duration;

/// Retry schedule: up to `max_attempts` tries, sleeping
/// `base_delay * multiplier^(attempt-1)` (capped at `max_delay`) between
/// consecutive tries.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff multiplier per retry.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` tries with zero delay — for tests and in-process oracles
    /// where backoff would only slow the suite down.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            multiplier: 1.0,
            max_delay: Duration::ZERO,
        }
    }

    /// The delay to sleep after failed attempt number `attempt` (1-based).
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let factor = self
            .multiplier
            .max(1.0)
            .powi(attempt.saturating_sub(1) as i32);
        let nanos = self.base_delay.as_secs_f64() * factor;
        Duration::from_secs_f64(nanos).min(self.max_delay)
    }
}

/// Outcome of [`retry_with_backoff`]: the final result plus how many
/// attempts were spent getting it.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// `Ok` from the first successful attempt, or the last error.
    pub result: std::result::Result<T, E>,
    /// Attempts performed (1-based; equals `max_attempts` on exhaustion or
    /// a fatal error on the last attempt).
    pub attempts: u32,
}

/// Run `op` until it succeeds, a non-transient error occurs, or the policy's
/// attempts are exhausted. `is_transient` decides which errors are worth
/// retrying; non-transient errors are returned immediately.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    is_transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> std::result::Result<T, E>,
) -> RetryOutcome<T, E> {
    let max = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt,
                }
            }
            Err(e) => {
                if attempt >= max || !is_transient(&e) {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt,
                    };
                }
                let delay = policy.delay_after(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = retry_with_backoff(
            &RetryPolicy::immediate(5),
            |_e: &String| true,
            || {
                calls += 1;
                if calls < 3 {
                    Err("flaky".to_string())
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn exhausts_attempts_on_persistent_failure() {
        let out = retry_with_backoff(
            &RetryPolicy::immediate(4),
            |_e: &String| true,
            || Err::<(), _>("down".to_string()),
        );
        assert_eq!(out.result, Err("down".to_string()));
        assert_eq!(out.attempts, 4);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let mut calls = 0;
        let out = retry_with_backoff(
            &RetryPolicy::immediate(10),
            |e: &String| e == "transient",
            || {
                calls += 1;
                Err::<(), _>("fatal".to_string())
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(out.attempts, 1);
        assert!(out.result.is_err());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(policy.delay_after(1), Duration::from_millis(10));
        assert_eq!(policy.delay_after(2), Duration::from_millis(20));
        // 40ms capped at 35ms.
        assert_eq!(policy.delay_after(3), Duration::from_millis(35));
    }

    #[test]
    fn zero_attempt_policies_still_run_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let out = retry_with_backoff(&policy, |_: &String| true, || Ok::<_, String>(1));
        assert_eq!(out.result, Ok(1));
        assert_eq!(out.attempts, 1);
    }
}
