//! Bounded retries with exponential backoff for flaky dependencies
//! (cleaning oracles, external services).

use nde_data::rng::{child_seed, seeded, Rng};
use std::time::Duration;

/// Retry schedule: up to `max_attempts` tries, sleeping
/// `base_delay * multiplier^(attempt-1)` (capped at `max_delay`) between
/// consecutive tries. With [`RetryPolicy::with_jitter`] each delay is
/// scaled by a factor in `[0.5, 1.0)` drawn deterministically from the
/// jitter seed and the attempt number, so two runs of the same policy
/// sleep the same schedule — chaos tests reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff multiplier per retry.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Seed for deterministic delay jitter; `None` disables jitter.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_secs(1),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` tries with zero delay — for tests and in-process oracles
    /// where backoff would only slow the suite down.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            multiplier: 1.0,
            max_delay: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// Enable deterministic jitter: delays are scaled by a factor in
    /// `[0.5, 1.0)` that depends only on `seed` and the attempt number.
    pub fn with_jitter(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay to sleep after failed attempt number `attempt` (1-based).
    ///
    /// The exponential term saturates at `max_delay` instead of overflowing:
    /// arbitrarily high attempt counts produce a finite, capped delay, never
    /// a panic from a non-finite `Duration` conversion.
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let exponent = attempt.saturating_sub(1).min(i32::MAX as u32) as i32;
        let factor = self.multiplier.max(1.0).powi(exponent);
        let max_secs = self.max_delay.as_secs_f64();
        let mut secs = self.base_delay.as_secs_f64() * factor;
        if !secs.is_finite() || secs > max_secs {
            secs = max_secs;
        }
        if let Some(seed) = self.jitter_seed {
            let mut rng = seeded(child_seed(seed, attempt as u64));
            secs *= rng.gen_range(0.5..1.0);
        }
        Duration::from_secs_f64(secs)
    }
}

/// Outcome of [`retry_with_backoff`]: the final result plus how many
/// attempts were spent getting it.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// `Ok` from the first successful attempt, or the last error.
    pub result: std::result::Result<T, E>,
    /// Attempts performed (1-based; equals `max_attempts` on exhaustion or
    /// a fatal error on the last attempt).
    pub attempts: u32,
}

/// Run `op` until it succeeds, a non-transient error occurs, or the policy's
/// attempts are exhausted. `is_transient` decides which errors are worth
/// retrying; non-transient errors are returned immediately.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    is_transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> std::result::Result<T, E>,
) -> RetryOutcome<T, E> {
    let max = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt,
                }
            }
            Err(e) => {
                if attempt >= max || !is_transient(&e) {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt,
                    };
                }
                let delay = policy.delay_after(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = retry_with_backoff(
            &RetryPolicy::immediate(5),
            |_e: &String| true,
            || {
                calls += 1;
                if calls < 3 {
                    Err("flaky".to_string())
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn exhausts_attempts_on_persistent_failure() {
        let out = retry_with_backoff(
            &RetryPolicy::immediate(4),
            |_e: &String| true,
            || Err::<(), _>("down".to_string()),
        );
        assert_eq!(out.result, Err("down".to_string()));
        assert_eq!(out.attempts, 4);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let mut calls = 0;
        let out = retry_with_backoff(
            &RetryPolicy::immediate(10),
            |e: &String| e == "transient",
            || {
                calls += 1;
                Err::<(), _>("fatal".to_string())
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(out.attempts, 1);
        assert!(out.result.is_err());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(35),
            jitter_seed: None,
        };
        assert_eq!(policy.delay_after(1), Duration::from_millis(10));
        assert_eq!(policy.delay_after(2), Duration::from_millis(20));
        // 40ms capped at 35ms.
        assert_eq!(policy.delay_after(3), Duration::from_millis(35));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: Duration::from_millis(10),
            multiplier: 10.0,
            max_delay: Duration::from_secs(2),
            jitter_seed: None,
        };
        // 10^(attempt-1) overflows f64 well before u32::MAX attempts; every
        // one of these must cap at max_delay rather than panic.
        for attempt in [5, 64, 400, 10_000, u32::MAX] {
            assert_eq!(policy.delay_after(attempt), Duration::from_secs(2));
        }
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let policy = RetryPolicy::default().with_jitter(99);
        for attempt in 1..=8 {
            let a = policy.delay_after(attempt);
            let b = policy.delay_after(attempt);
            assert_eq!(a, b, "same seed + attempt must give the same delay");
            let unjittered = RetryPolicy::default().delay_after(attempt);
            assert!(a <= unjittered);
            assert!(a >= unjittered.mul_f64(0.5));
        }
        // A different seed permutes the schedule.
        let other = RetryPolicy::default().with_jitter(100);
        assert!((1..=8).any(|n| other.delay_after(n) != policy.delay_after(n)));
    }

    #[test]
    fn zero_attempt_policies_still_run_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let out = retry_with_backoff(&policy, |_: &String| true, || Ok::<_, String>(1));
        assert_eq!(out.result, Ok(1));
        assert_eq!(out.attempts, 1);
    }
}
