//! The deterministic-parallelism substrate, plus budget accounting that is
//! safe to share across workers.
//!
//! The scheduling/caching primitives live in [`nde_data::par`] (the bottom
//! of the crate stack, so `nde-pipeline` can use them too) and are
//! re-exported here under the crate that owns the execution-robustness
//! story. This module adds [`AtomicBudgetClock`], the lock-free sibling of
//! [`crate::BudgetClock`].
//!
//! # How a budgeted parallel run stays bit-identical
//!
//! Budgets and parallelism pull in opposite directions: a budget wants a
//! deterministic stopping point, a worker pool finishes items in arbitrary
//! order. The substrate reconciles them with **speculative execution +
//! sequential settlement**:
//!
//! 1. Workers claim item indices from an atomic cursor and evaluate them
//!    speculatively, recording progress in an [`AtomicBudgetClock`]. When
//!    the clock trips, workers stop claiming (via the shared stop flag) —
//!    this only *bounds overshoot*, it decides nothing.
//! 2. The caller then folds the index-sorted results front-to-back through
//!    a plain sequential [`crate::BudgetClock`], applying exactly the
//!    stopping rule a single-threaded run would. Speculative results past
//!    the deterministic stopping point are discarded.
//!
//! The folded state (sums, cursors, checkpoints) is therefore a pure
//! function of the budget and the per-item costs — never of the schedule —
//! which is what makes parallel + budgeted + resumed runs bit-identical to
//! the sequential unbudgeted ones.

pub use nde_data::par::{
    effective_threads, member_signature, panic_message, par_map_indexed, par_map_indexed_scoped,
    par_map_indexed_scratch, par_map_indexed_scratch_scoped, subset_fingerprint,
    subset_fingerprint_sorted, tree_reduce, CostHint, MemoCache, WorkerFailure,
    SEQUENTIAL_CUTOFF_NANOS,
};
pub use nde_data::pool::{PoolStats, WorkerPool};

use crate::budget::{Exhaustion, RunBudget};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Lock-free budget accounting shared by a worker pool.
///
/// Tracks the same quantities as [`crate::BudgetClock`] but with atomic
/// counters, so every worker can record progress and probe for exhaustion
/// without serializing. Because workers race, the moment the clock trips is
/// schedule-dependent — treat it as a **heuristic** that bounds speculative
/// overshoot, and settle the authoritative budget by folding results
/// through a sequential [`crate::BudgetClock`] (see the module docs).
#[derive(Debug)]
pub struct AtomicBudgetClock {
    budget: RunBudget,
    started: Instant,
    iterations: AtomicU64,
    utility_calls: AtomicU64,
}

impl AtomicBudgetClock {
    /// Start a shared clock with progress carried over from a resumed run.
    pub fn resume(budget: &RunBudget, iterations: u64, utility_calls: u64) -> AtomicBudgetClock {
        AtomicBudgetClock {
            budget: budget.clone(),
            started: Instant::now(),
            iterations: AtomicU64::new(iterations),
            utility_calls: AtomicU64::new(utility_calls),
        }
    }

    /// Start a fresh shared clock.
    pub fn start(budget: &RunBudget) -> AtomicBudgetClock {
        AtomicBudgetClock::resume(budget, 0, 0)
    }

    /// Record one completed iteration.
    pub fn record_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` utility evaluations.
    pub fn record_utility_calls(&self, n: u64) {
        self.utility_calls.fetch_add(n, Ordering::Relaxed);
    }

    /// The first limit that has tripped, if any (same order as
    /// [`crate::BudgetClock::exhausted`]).
    pub fn exhausted(&self) -> Option<Exhaustion> {
        if let Some(max) = self.budget.max_iterations {
            if self.iterations.load(Ordering::Relaxed) >= max {
                return Some(Exhaustion::Iterations);
            }
        }
        if let Some(max) = self.budget.max_utility_calls {
            if self.utility_calls.load(Ordering::Relaxed) >= max {
                return Some(Exhaustion::UtilityCalls);
            }
        }
        if let Some(limit) = self.budget.wall_clock {
            if self.started.elapsed() >= limit {
                return Some(Exhaustion::Deadline);
            }
        }
        None
    }

    /// Heuristic count of utility calls left before the utility budget
    /// trips (`None` if unlimited). Like [`AtomicBudgetClock::exhausted`]
    /// this races with other workers — use it to bound the width of a
    /// speculative batch, never to decide the authoritative stopping point
    /// (that is the sequential [`crate::BudgetClock`]'s job).
    pub fn remaining_utility_calls(&self) -> Option<u64> {
        self.budget
            .max_utility_calls
            .map(|max| max.saturating_sub(self.utility_calls.load(Ordering::Relaxed)))
    }

    /// If the clock has tripped, raise `stop` so workers cease claiming new
    /// items. Returns `true` if the clock is (now) exhausted.
    pub fn arm_stop(&self, stop: &AtomicBool) -> bool {
        if self.exhausted().is_some() {
            stop.store(true, Ordering::Relaxed);
            true
        } else {
            stop.load(Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn atomic_clock_trips_like_sequential() {
        let budget = RunBudget::unlimited()
            .with_max_iterations(3)
            .with_max_utility_calls(10);
        let clock = AtomicBudgetClock::start(&budget);
        clock.record_iteration();
        clock.record_utility_calls(9);
        assert_eq!(clock.exhausted(), None);
        clock.record_utility_calls(1);
        assert_eq!(clock.exhausted(), Some(Exhaustion::UtilityCalls));
    }

    #[test]
    fn iteration_limit_checked_first() {
        let budget = RunBudget::unlimited()
            .with_max_iterations(1)
            .with_max_utility_calls(1);
        let clock = AtomicBudgetClock::resume(&budget, 1, 1);
        assert_eq!(clock.exhausted(), Some(Exhaustion::Iterations));
    }

    #[test]
    fn arm_stop_raises_flag_on_exhaustion() {
        let stop = AtomicBool::new(false);
        let clock = AtomicBudgetClock::start(&RunBudget::unlimited().with_max_iterations(1));
        assert!(!clock.arm_stop(&stop));
        assert!(!stop.load(Ordering::Relaxed));
        clock.record_iteration();
        assert!(clock.arm_stop(&stop));
        assert!(stop.load(Ordering::Relaxed));
        // Once raised, it stays raised even for a fresh unlimited clock.
        let fresh = AtomicBudgetClock::start(&RunBudget::unlimited());
        assert!(fresh.arm_stop(&stop));
    }

    #[test]
    fn deadline_trips() {
        let clock =
            AtomicBudgetClock::start(&RunBudget::unlimited().with_wall_clock(Duration::ZERO));
        assert_eq!(clock.exhausted(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn workers_share_one_clock() {
        let clock = AtomicBudgetClock::start(&RunBudget::unlimited().with_max_utility_calls(64));
        let stop = AtomicBool::new(false);
        let out = par_map_indexed::<u64, (), _>(4, 0..1000, &stop, |i| {
            clock.record_utility_calls(1);
            clock.arm_stop(&stop);
            Ok(i)
        })
        .unwrap();
        // The heuristic stop bounds overshoot: far fewer than 1000 ran.
        assert!(out.len() >= 64 && out.len() < 200, "{} ran", out.len());
    }
}
