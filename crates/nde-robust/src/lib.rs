//! Fault-tolerant execution foundation for the nde workspace.
//!
//! The paper's three pillars — Identify (Monte-Carlo Shapley sweeps), Debug
//! (multi-operator pipeline execution), and Learn (iterative training under
//! uncertainty) — all rest on long-running, failure-prone computations. This
//! crate provides the shared machinery to keep those computations **bounded,
//! resumable, and crash-isolated**:
//!
//! - [`budget`] — [`RunBudget`]: wall-clock deadlines plus iteration and
//!   utility-call budgets, with [`ConvergenceDiagnostics`] so a run that
//!   exhausts its budget degrades to a tagged best-so-far result instead of
//!   running forever or aborting.
//! - [`checkpoint`] — [`McCheckpoint`]: serializable snapshots of Monte-Carlo
//!   estimation state (permutation cursor, RNG state, running marginals) so
//!   an interrupted run resumes **bit-identically**.
//! - [`retry`] — [`RetryPolicy`]: bounded retries with exponential backoff
//!   for flaky external dependencies (e.g. cleaning oracles).
//! - [`durable`] — the crash-safe on-disk [`RunStore`]: checksummed,
//!   versioned checkpoint records written atomically under run-fingerprint
//!   keys, cross-process [`MemoCache`] persistence, and [`supervise`] to
//!   restart a crashed computation from its latest valid record.
//! - [`chaos`] — a deterministic fault-injection harness: operator panics,
//!   corrupt/NaN feature values, scheduled dependency failures, and
//!   durability faults (kill-at-checkpoint, torn writes, corrupt checksums,
//!   stale record versions), used by integration tests to prove every
//!   workflow survives each fault class.
//! - [`par`] — the deterministic-parallelism substrate: seed-partitioned
//!   worker pools, a subset-fingerprint memo cache for utility calls, and
//!   [`par::AtomicBudgetClock`] so budgets can be shared across workers
//!   while the fold stays bit-identical to a sequential run.

pub mod budget;
pub mod chaos;
pub mod checkpoint;
pub mod durable;
pub mod error;
pub mod par;
pub mod retry;

pub use budget::{BudgetClock, ConvergenceDiagnostics, Exhaustion, RunBudget};
pub use chaos::FaultSchedule;
pub use checkpoint::{InflightPermutation, McCheckpoint};
pub use durable::{
    supervise, CheckpointRecord, RunFingerprint, RunStore, SuperviseCtx, Supervised,
};
pub use error::RobustError;
pub use par::{AtomicBudgetClock, MemoCache};
pub use retry::{retry_with_backoff, RetryPolicy};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RobustError>;
