//! Deterministic fault injection ("chaos") harness.
//!
//! Integration tests use these helpers to prove that every workflow
//! survives each fault class the tutorial's long-running computations are
//! exposed to:
//!
//! - **operator panics** — [`panicking_predicate`] / [`panicking_projection`]
//!   build pipeline expressions that panic on a chosen row, exercising the
//!   executor's `catch_unwind` isolation;
//! - **corrupt / NaN feature values** — [`corrupt_features`] poisons chosen
//!   dataset cells, [`corrupting_projection`] emits NaN mid-pipeline;
//! - **flaky dependencies** — [`FaultSchedule`] decides deterministically
//!   which call indices fail (used by e.g. `nde-cleaning`'s `FlakyOracle`
//!   together with [`crate::retry`]);
//! - **durability faults** — [`CheckpointKillSwitch`] crashes a supervised
//!   run at scheduled checkpoint saves, while [`truncate_record`],
//!   [`corrupt_record_checksum`], and [`stale_record_version`] damage
//!   on-disk [`crate::durable::RunStore`] records the way torn writes,
//!   bit-rot, and format drift would.
//!
//! Everything here is deterministic: a fault plan is a pure function of its
//! configuration (and, for sampled plans, a seed), so a failing chaos test
//! reproduces exactly.

use crate::error::RobustError;
use crate::Result;
use nde_data::json::Json;
use nde_data::rng::{seeded, Rng};
use nde_data::{DataType, Value};
use nde_ml::dataset::Dataset;
use nde_pipeline::expr::Expr;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic schedule of which calls to an injected-fault site fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    plan: Plan,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Plan {
    Never,
    Always,
    /// Fail exactly these 0-based call indices.
    At(BTreeSet<u64>),
    /// Fail the first `k` calls (then recover) — the classic
    /// "service warms up" shape that retries must ride out.
    FirstN(u64),
    /// Fail every `n`-th call (indices n-1, 2n-1, ...).
    EveryNth(u64),
}

impl FaultSchedule {
    /// Never fail (the no-op schedule).
    pub fn never() -> FaultSchedule {
        FaultSchedule { plan: Plan::Never }
    }

    /// Fail every call (a hard outage).
    pub fn always() -> FaultSchedule {
        FaultSchedule { plan: Plan::Always }
    }

    /// Fail exactly the given 0-based call indices.
    pub fn at(indices: &[u64]) -> FaultSchedule {
        FaultSchedule {
            plan: Plan::At(indices.iter().copied().collect()),
        }
    }

    /// Fail the first `k` calls, then succeed forever.
    pub fn first_n(k: u64) -> FaultSchedule {
        FaultSchedule {
            plan: Plan::FirstN(k),
        }
    }

    /// Fail every `n`-th call (`n ≥ 1`).
    pub fn every_nth(n: u64) -> FaultSchedule {
        FaultSchedule {
            plan: Plan::EveryNth(n.max(1)),
        }
    }

    /// Sample a schedule failing each of the first `horizon` calls
    /// independently with probability `rate` — deterministic in `seed`.
    pub fn sampled(rate: f64, horizon: u64, seed: u64) -> FaultSchedule {
        let mut rng = seeded(seed);
        let fails = (0..horizon)
            .filter(|_| rng.gen_bool(rate))
            .collect::<BTreeSet<u64>>();
        FaultSchedule {
            plan: Plan::At(fails),
        }
    }

    /// Should the `call`-th invocation (0-based) fail?
    pub fn should_fail(&self, call: u64) -> bool {
        match &self.plan {
            Plan::Never => false,
            Plan::Always => true,
            Plan::At(set) => set.contains(&call),
            Plan::FirstN(k) => call < *k,
            Plan::EveryNth(n) => (call + 1).is_multiple_of(*n),
        }
    }
}

/// The panic payload prefix used by injected operator panics, so tests can
/// assert the failure they observe is the one they injected.
pub const CHAOS_PANIC_PREFIX: &str = "chaos: injected operator panic";

/// A boolean pipeline predicate (for `Filter` nodes) that returns `true`
/// for every row except `panic_row`, where it panics.
pub fn panicking_predicate(panic_row: usize) -> Expr {
    Expr::udf(
        format!("chaos_panic_predicate_row_{panic_row}"),
        DataType::Bool,
        &[],
        move |_table, row| {
            if row == panic_row {
                panic!("{CHAOS_PANIC_PREFIX} at row {row}");
            }
            Ok(Value::Bool(true))
        },
    )
}

/// A float projection UDF that returns `1.0` for every row except
/// `panic_row`, where it panics.
pub fn panicking_projection(panic_row: usize) -> Expr {
    Expr::udf(
        format!("chaos_panic_projection_row_{panic_row}"),
        DataType::Float,
        &[],
        move |_table, row| {
            if row == panic_row {
                panic!("{CHAOS_PANIC_PREFIX} at row {row}");
            }
            Ok(Value::Float(1.0))
        },
    )
}

/// A float projection UDF that emits `NaN` on the chosen row and `1.0`
/// elsewhere — a corrupt tuple flowing through an otherwise healthy
/// pipeline.
pub fn corrupting_projection(nan_row: usize) -> Expr {
    Expr::udf(
        format!("chaos_nan_projection_row_{nan_row}"),
        DataType::Float,
        &[],
        move |_table, row| Ok(Value::Float(if row == nan_row { f64::NAN } else { 1.0 })),
    )
}

/// Poison `n_cells` distinct feature cells of `data` with NaN, chosen
/// deterministically from `seed`. Returns the poisoned `(row, col)` cells.
pub fn corrupt_features(data: &mut Dataset, n_cells: usize, seed: u64) -> Vec<(usize, usize)> {
    let rows = data.len();
    let cols = data.dim();
    if rows == 0 || cols == 0 || n_cells == 0 {
        return Vec::new();
    }
    let total = rows * cols;
    let cells = nde_data::rng::sample_indices(total, n_cells.min(total), &mut seeded(seed));
    let mut out: Vec<(usize, usize)> = cells.into_iter().map(|c| (c / cols, c % cols)).collect();
    out.sort_unstable();
    for &(r, c) in &out {
        data.x.set(r, c, f64::NAN);
    }
    out
}

/// Crashes a supervised run at scheduled checkpoint saves.
///
/// Call [`CheckpointKillSwitch::observe`] right after each durable
/// checkpoint write; the switch counts invocations across restarts and
/// panics (with [`CHAOS_PANIC_PREFIX`]) whenever the [`FaultSchedule`]
/// fires for the current count — "the process died immediately after
/// persisting checkpoint k".
#[derive(Debug)]
pub struct CheckpointKillSwitch {
    schedule: FaultSchedule,
    saves: AtomicU64,
}

impl CheckpointKillSwitch {
    /// A switch that fires per the schedule (indices are cumulative
    /// checkpoint saves, 0-based, counted across restarts).
    pub fn new(schedule: FaultSchedule) -> CheckpointKillSwitch {
        CheckpointKillSwitch {
            schedule,
            saves: AtomicU64::new(0),
        }
    }

    /// Checkpoint saves observed so far.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Record one checkpoint save; panics if the schedule kills this one.
    pub fn observe(&self) {
        let k = self.saves.fetch_add(1, Ordering::Relaxed);
        if self.schedule.should_fail(k) {
            panic!("{CHAOS_PANIC_PREFIX}: process killed after checkpoint save {k}");
        }
    }
}

/// Torn write: truncate an on-disk record to its first `keep` bytes (a
/// crash mid-write under a non-atomic writer). `keep` past the end is a
/// no-op.
pub fn truncate_record(path: impl AsRef<Path>, keep: usize) -> Result<()> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| RobustError::Io(format!("reading {}: {e}", path.display())))?;
    let keep = keep.min(text.len());
    // Cutting mid-UTF-8 can't happen for ASCII JSON, but stay safe anyway.
    let cut = (0..=keep)
        .rev()
        .find(|&i| text.is_char_boundary(i))
        .unwrap_or(0);
    std::fs::write(path, &text[..cut])
        .map_err(|e| RobustError::Io(format!("truncating {}: {e}", path.display())))
}

/// Rewrite one top-level field of a JSON record in place (shared plumbing
/// for the corruption helpers below).
fn rewrite_field(path: &Path, field: &str, value: Json) -> Result<()> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RobustError::Io(format!("reading {}: {e}", path.display())))?;
    let doc = Json::parse(&text)
        .map_err(|e| RobustError::Io(format!("parsing {}: {e}", path.display())))?;
    let Json::Obj(mut fields) = doc else {
        return Err(RobustError::Io(format!(
            "{} is not a JSON object",
            path.display()
        )));
    };
    match fields.iter_mut().find(|(name, _)| name == field) {
        Some(slot) => slot.1 = value,
        None => fields.push((field.to_string(), value)),
    }
    std::fs::write(path, Json::Obj(fields).to_string_pretty())
        .map_err(|e| RobustError::Io(format!("rewriting {}: {e}", path.display())))
}

/// Bit-rot: flip the stored checksum of a record so it no longer matches
/// its payload. The payload itself is left untouched — exactly the failure
/// a flipped disk bit in the checksum field produces.
pub fn corrupt_record_checksum(path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| RobustError::Io(format!("reading {}: {e}", path.display())))?;
    let doc = Json::parse(&text)
        .map_err(|e| RobustError::Io(format!("parsing {}: {e}", path.display())))?;
    let stored = doc
        .get("checksum")
        .and_then(Json::as_u64)
        .ok_or_else(|| RobustError::Io(format!("{} has no integer checksum", path.display())))?;
    rewrite_field(path, "checksum", Json::UInt(stored.wrapping_add(1)))
}

/// Format drift: stamp a record with a different (stale) format version so
/// readers from the current version must skip it.
pub fn stale_record_version(path: impl AsRef<Path>, version: u64) -> Result<()> {
    rewrite_field(path.as_ref(), "format_version", Json::UInt(version))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let s = FaultSchedule::at(&[0, 3]);
        assert!(s.should_fail(0));
        assert!(!s.should_fail(1));
        assert!(s.should_fail(3));
        let f = FaultSchedule::first_n(2);
        assert!(f.should_fail(0) && f.should_fail(1) && !f.should_fail(2));
        let e = FaultSchedule::every_nth(3);
        assert!(!e.should_fail(0) && !e.should_fail(1) && e.should_fail(2));
        assert!(e.should_fail(5) && !e.should_fail(6));
        assert!(!FaultSchedule::never().should_fail(0));
        assert!(FaultSchedule::always().should_fail(7));
        assert_eq!(
            FaultSchedule::sampled(0.5, 100, 9),
            FaultSchedule::sampled(0.5, 100, 9)
        );
    }

    #[test]
    fn sampled_rate_is_roughly_respected() {
        let s = FaultSchedule::sampled(0.3, 1000, 4);
        let fails = (0..1000).filter(|&c| s.should_fail(c)).count();
        assert!((200..400).contains(&fails), "fails={fails}");
    }

    #[test]
    fn corrupt_features_poisons_exactly_the_reported_cells() {
        let mut data = Dataset::from_rows(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
            2,
        )
        .unwrap();
        let cells = corrupt_features(&mut data, 2, 7);
        assert_eq!(cells.len(), 2);
        for r in 0..3 {
            for c in 0..2 {
                let poisoned = cells.contains(&(r, c));
                assert_eq!(data.x.get(r, c).is_nan(), poisoned, "cell ({r}, {c})");
            }
        }
        // Deterministic in the seed.
        let mut again = Dataset::from_rows(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
            2,
        )
        .unwrap();
        assert_eq!(corrupt_features(&mut again, 2, 7), cells);
        // Degenerate inputs are no-ops.
        assert!(corrupt_features(&mut again, 0, 7).is_empty());
    }

    #[test]
    fn kill_switch_fires_on_schedule() {
        let ks = CheckpointKillSwitch::new(FaultSchedule::at(&[2]));
        ks.observe();
        ks.observe();
        assert_eq!(ks.saves(), 2);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ks.observe()));
        let msg = *died.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.starts_with(CHAOS_PANIC_PREFIX), "{msg}");
        assert!(msg.contains("checkpoint save 2"), "{msg}");
        // The schedule has passed; later saves survive.
        ks.observe();
        assert_eq!(ks.saves(), 4);
    }

    #[test]
    fn record_corruption_helpers_damage_files_as_advertised() {
        let dir = std::env::temp_dir().join(format!("nde-chaos-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let record = Json::Obj(vec![
            ("format_version".into(), Json::UInt(1)),
            ("checksum".into(), Json::UInt(77)),
            ("payload".into(), Json::Str("data".into())),
        ])
        .to_string_pretty();

        let p = dir.join("torn.json");
        std::fs::write(&p, &record).unwrap();
        truncate_record(&p, record.len() / 2).unwrap();
        let torn = std::fs::read_to_string(&p).unwrap();
        assert_eq!(torn.len(), record.len() / 2);
        assert!(Json::parse(&torn).is_err());

        let p = dir.join("rot.json");
        std::fs::write(&p, &record).unwrap();
        corrupt_record_checksum(&p).unwrap();
        let rotten = Json::parse(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(rotten.get("checksum").unwrap().as_u64(), Some(78));
        assert_eq!(rotten.get("payload").unwrap().as_str(), Some("data"));

        let p = dir.join("stale.json");
        std::fs::write(&p, &record).unwrap();
        stale_record_version(&p, 0).unwrap();
        let stale = Json::parse(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(stale.get("format_version").unwrap().as_u64(), Some(0));

        std::fs::remove_dir_all(&dir).ok();
    }
}
