//! Crash-safe on-disk run store and supervised resume.
//!
//! Long-running estimation loops (Monte-Carlo Shapley sweeps, interval
//! gradient descent, prioritized cleaning) checkpoint their state as JSON,
//! but an in-memory checkpoint dies with the process. [`RunStore`] gives
//! those snapshots a durable home:
//!
//! - **Atomic records.** Every checkpoint is written to a temp file and
//!   atomically renamed into place, so a crash mid-write leaves at worst a
//!   stray `.tmp` — never a half-written record under the real name.
//! - **Checksummed, versioned envelopes.** Each record wraps its payload in
//!   an envelope carrying a format version, the run fingerprint, the step
//!   number, and an [`FxHasher`]-based checksum of the serialized payload.
//!   [`RunStore::latest_valid`] walks records newest-first and skips any
//!   that are truncated, corrupt, mis-fingerprinted, or from a different
//!   format version — a torn write or bit-rot costs at most one
//!   checkpoint interval, never the run.
//! - **Fingerprint keys.** Records are grouped by [`RunFingerprint`] —
//!   method, seed, a config tag, and a 64-bit data fingerprint — so a
//!   resumed process only ever picks up state written by an identical run.
//! - **Cross-process memo persistence.** A coalition-utility [`MemoCache`]
//!   serializes through the same envelope ([`RunStore::save_memo`] /
//!   [`RunStore::load_memo`]), letting a restarted run re-serve utilities
//!   evaluated before the crash.
//!
//! [`supervise`] ties it together: it runs a closure under
//! `catch_unwind`, turning crashes into [`RetryPolicy`]-governed restarts,
//! with each attempt handed a [`SuperviseCtx`] through which it loads the
//! latest valid record and writes new ones. Because every estimator's
//! checkpoint restores its exact fold state (running sums, RNG streams,
//! cursors), a supervised run that crashed and resumed produces results
//! **bit-identical** to an uninterrupted one.

use crate::error::RobustError;
use crate::retry::RetryPolicy;
use crate::Result;
use nde_data::fxhash::FxHasher;
use nde_data::json::Json;
use nde_data::par::MemoCache;
use std::cell::Cell;
use std::hash::Hasher;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

// Crashes we supervise must not spam stderr through the default panic hook,
// but hooks are process-global: install a delegating hook once and silence
// it only on threads currently inside a supervised body (the same pattern
// as `nde-pipeline`'s per-tuple panic isolation).
thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<u32> = const { Cell::new(0) };
}
static INSTALL_HOOK: Once = Once::new();

fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) == 0 {
                previous(info);
            }
        }));
    });
}

fn catch_supervised<T>(f: impl FnOnce() -> T) -> std::result::Result<T, String> {
    install_quiet_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(s.get() + 1));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(s.get() - 1));
    outcome.map_err(panic_message)
}

/// On-disk envelope format version; bumped on incompatible layout changes.
/// Records from another version are skipped by [`RunStore::latest_valid`].
pub const STORE_FORMAT_VERSION: u64 = 1;

/// FxHash-64 over a serialized payload — the record checksum.
pub fn payload_checksum(text: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(text.as_bytes());
    h.finish()
}

/// Identity of a resumable run: which estimator, which seed, which
/// configuration, over which data. Records are stored under the hex digest
/// of all four, so state from a different run can never be resumed into
/// this one — even if both share a store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Estimator name (e.g. `"tmc-shapley"`).
    pub method: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Canonical rendering of every config knob that changes the
    /// trajectory (sample counts, tolerances, batch policy, ...).
    pub config: String,
    /// 64-bit fingerprint of the input data (e.g.
    /// `nde_ml::dataset::Dataset::fingerprint` folded over train + valid).
    pub data: u64,
}

impl RunFingerprint {
    /// Build a fingerprint from the four identity components.
    pub fn new(
        method: impl Into<String>,
        seed: u64,
        config: impl Into<String>,
        data: u64,
    ) -> RunFingerprint {
        RunFingerprint {
            method: method.into(),
            seed,
            config: config.into(),
            data,
        }
    }

    /// The store key: `<method>-<16-hex-digit digest>`. The method prefix
    /// keeps store directories human-readable; the digest covers all four
    /// components.
    pub fn key(&self) -> String {
        let mut h = FxHasher::default();
        h.write(self.method.as_bytes());
        h.write_u64(self.seed);
        h.write(self.config.as_bytes());
        h.write_u64(self.data);
        let digest = h.finish();
        let slug: String = self
            .method
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{slug}-{digest:016x}")
    }
}

/// A validated checkpoint record read back from a [`RunStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Monotone step number the writer assigned (iterations done, epochs
    /// done, fixes applied, ...).
    pub step: u64,
    /// The estimator snapshot, exactly as written.
    pub payload: Json,
}

/// Crash-safe checkpoint store rooted at a directory.
///
/// Layout: one subdirectory per [`RunFingerprint::key`], holding
/// `ckpt-<step>.json` records plus an optional `memo.json` utility cache.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<RunStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| RobustError::Io(format!("creating store {}: {e}", root.display())))?;
        Ok(RunStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding this run's records (not created until the
    /// first write).
    pub fn run_dir(&self, fingerprint: &RunFingerprint) -> PathBuf {
        self.root.join(fingerprint.key())
    }

    fn record_path(&self, fingerprint: &RunFingerprint, step: u64) -> PathBuf {
        self.run_dir(fingerprint)
            .join(format!("ckpt-{step:020}.json"))
    }

    fn envelope(&self, fingerprint: &RunFingerprint, step: u64, payload: &Json) -> String {
        Json::Obj(vec![
            ("format_version".into(), Json::UInt(STORE_FORMAT_VERSION)),
            ("fingerprint".into(), Json::Str(fingerprint.key())),
            ("step".into(), Json::UInt(step)),
            (
                "checksum".into(),
                Json::UInt(payload_checksum(&payload.to_string_pretty())),
            ),
            ("payload".into(), payload.clone()),
        ])
        .to_string_pretty()
    }

    fn write_atomic(path: &Path, text: &str) -> Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| RobustError::Io(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| RobustError::Io(format!("renaming {}: {e}", path.display())))
    }

    /// Durably write one checkpoint record (write-temp-then-atomic-rename).
    /// Returns the record's final path.
    pub fn save_checkpoint(
        &self,
        fingerprint: &RunFingerprint,
        step: u64,
        payload: &Json,
    ) -> Result<PathBuf> {
        let dir = self.run_dir(fingerprint);
        std::fs::create_dir_all(&dir)
            .map_err(|e| RobustError::Io(format!("creating {}: {e}", dir.display())))?;
        let path = self.record_path(fingerprint, step);
        RunStore::write_atomic(&path, &self.envelope(fingerprint, step, payload))?;
        Ok(path)
    }

    /// All record paths for a run, sorted by ascending step — including
    /// records that would fail validation (chaos tests corrupt these
    /// in place).
    pub fn record_paths(&self, fingerprint: &RunFingerprint) -> Result<Vec<(u64, PathBuf)>> {
        let dir = self.run_dir(fingerprint);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| RobustError::Io(format!("listing {}: {e}", dir.display())))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| RobustError::Io(format!("listing {}: {e}", dir.display())))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(step) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((step, entry.path()));
        }
        out.sort_unstable_by_key(|&(step, _)| step);
        Ok(out)
    }

    /// Parse and validate one record file against the expected fingerprint.
    fn read_record(path: &Path, expected_key: &str) -> Result<CheckpointRecord> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RobustError::Io(format!("reading {}: {e}", path.display())))?;
        let doc = Json::parse(&text).map_err(|e| {
            RobustError::Checkpoint(format!(
                "truncated or corrupt record {}: {e}",
                path.display()
            ))
        })?;
        let version = doc.get("format_version").and_then(Json::as_u64);
        if version != Some(STORE_FORMAT_VERSION) {
            return Err(RobustError::Checkpoint(format!(
                "record {} has format version {version:?}, expected {STORE_FORMAT_VERSION}",
                path.display()
            )));
        }
        let key = doc.get("fingerprint").and_then(Json::as_str);
        if key != Some(expected_key) {
            return Err(RobustError::Checkpoint(format!(
                "record {} belongs to run {key:?}, expected {expected_key}",
                path.display()
            )));
        }
        let step = doc.get("step").and_then(Json::as_u64).ok_or_else(|| {
            RobustError::Checkpoint(format!("record {} lacks a step", path.display()))
        })?;
        let stored = doc.get("checksum").and_then(Json::as_u64).ok_or_else(|| {
            RobustError::Checkpoint(format!("record {} lacks a checksum", path.display()))
        })?;
        let payload = doc.get("payload").ok_or_else(|| {
            RobustError::Checkpoint(format!("record {} lacks a payload", path.display()))
        })?;
        let actual = payload_checksum(&payload.to_string_pretty());
        if stored != actual {
            return Err(RobustError::Checkpoint(format!(
                "record {} checksum mismatch: stored {stored}, computed {actual}",
                path.display()
            )));
        }
        Ok(CheckpointRecord {
            step,
            payload: payload.clone(),
        })
    }

    /// The newest record that passes every validation layer (parse,
    /// version, fingerprint, checksum), or `None` when no usable record
    /// exists. Invalid records are skipped, not deleted — recovery never
    /// destroys evidence.
    pub fn latest_valid(&self, fingerprint: &RunFingerprint) -> Result<Option<CheckpointRecord>> {
        let key = fingerprint.key();
        for (_, path) in self.record_paths(fingerprint)?.iter().rev() {
            if let Ok(record) = RunStore::read_record(path, &key) {
                return Ok(Some(record));
            }
        }
        Ok(None)
    }

    /// Persist a [`MemoCache`] snapshot under this fingerprint (atomically,
    /// same envelope + checksum as checkpoint records). Entries are sorted
    /// by fingerprint, so the file is byte-deterministic for a given cache
    /// content.
    pub fn save_memo(&self, fingerprint: &RunFingerprint, cache: &MemoCache) -> Result<PathBuf> {
        let entries = cache.entries();
        let payload = Json::Obj(vec![(
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|&(k, v)| Json::Arr(vec![Json::UInt(k), Json::Float(v)]))
                    .collect(),
            ),
        )]);
        let dir = self.run_dir(fingerprint);
        std::fs::create_dir_all(&dir)
            .map_err(|e| RobustError::Io(format!("creating {}: {e}", dir.display())))?;
        let path = dir.join("memo.json");
        RunStore::write_atomic(
            &path,
            &self.envelope(fingerprint, entries.len() as u64, &payload),
        )?;
        Ok(path)
    }

    /// Load a persisted memo snapshot into `cache`, returning how many
    /// entries were restored. A missing or invalid file restores nothing
    /// (0) — the cache is an accelerator, so corruption degrades to a cold
    /// start rather than an error.
    pub fn load_memo(&self, fingerprint: &RunFingerprint, cache: &MemoCache) -> Result<usize> {
        let path = self.run_dir(fingerprint).join("memo.json");
        if !path.exists() {
            return Ok(0);
        }
        let Ok(record) = RunStore::read_record(&path, &fingerprint.key()) else {
            return Ok(0);
        };
        let Some(raw) = record.payload.get("entries").and_then(Json::as_arr) else {
            return Ok(0);
        };
        let mut entries = Vec::with_capacity(raw.len());
        for pair in raw {
            let Some(items) = pair.as_arr() else {
                return Ok(0);
            };
            let (Some(k), Some(v)) = (
                items.first().and_then(Json::as_u64),
                items.get(1).and_then(Json::as_f64),
            ) else {
                return Ok(0);
            };
            if !v.is_finite() {
                return Ok(0);
            }
            entries.push((k, v));
        }
        Ok(cache.load_entries(&entries))
    }
}

/// Handle a supervised closure uses to talk to its [`RunStore`].
#[derive(Debug)]
pub struct SuperviseCtx<'a> {
    store: &'a RunStore,
    fingerprint: &'a RunFingerprint,
    attempt: u32,
}

impl SuperviseCtx<'_> {
    /// 1-based attempt number (1 on the first run, 2 after one restart...).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The store this run checkpoints into.
    pub fn store(&self) -> &RunStore {
        self.store
    }

    /// This run's fingerprint.
    pub fn fingerprint(&self) -> &RunFingerprint {
        self.fingerprint
    }

    /// The newest valid record to resume from, if any.
    pub fn latest(&self) -> Result<Option<CheckpointRecord>> {
        self.store.latest_valid(self.fingerprint)
    }

    /// Durably write a checkpoint at `step`.
    pub fn checkpoint(&self, step: u64, payload: &Json) -> Result<PathBuf> {
        self.store.save_checkpoint(self.fingerprint, step, payload)
    }
}

/// Result of a [`supervise`]d computation.
#[derive(Debug)]
pub struct Supervised<T> {
    /// The successful attempt's return value.
    pub value: T,
    /// Total attempts spent, including the successful one.
    pub attempts: u32,
    /// One stringified failure (panic payload or error) per failed attempt.
    pub crashes: Vec<String>,
}

/// Render a `catch_unwind` payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `body` under crash supervision.
///
/// Each attempt gets a fresh [`SuperviseCtx`]; the body is expected to call
/// [`SuperviseCtx::latest`] to pick up where the previous attempt's
/// checkpoints left off, and [`SuperviseCtx::checkpoint`] as it progresses.
/// A panic (e.g. an injected crash from the chaos harness) or an `Err` is
/// caught, the [`RetryPolicy`] delay is slept, and the body is restarted —
/// up to `policy.max_attempts` total attempts, after which the last error
/// is returned (a final panic surfaces as [`RobustError::Crash`] through
/// `E::from`).
pub fn supervise<T, E, F>(
    store: &RunStore,
    fingerprint: &RunFingerprint,
    policy: &RetryPolicy,
    mut body: F,
) -> std::result::Result<Supervised<T>, E>
where
    F: FnMut(&SuperviseCtx<'_>) -> std::result::Result<T, E>,
    E: From<RobustError> + std::fmt::Display,
{
    let max = policy.max_attempts.max(1);
    let mut crashes = Vec::new();
    for attempt in 1..=max {
        let ctx = SuperviseCtx {
            store,
            fingerprint,
            attempt,
        };
        match catch_supervised(|| body(&ctx)) {
            Ok(Ok(value)) => {
                return Ok(Supervised {
                    value,
                    attempts: attempt,
                    crashes,
                })
            }
            Ok(Err(e)) => {
                if attempt >= max {
                    return Err(e);
                }
                crashes.push(e.to_string());
            }
            Err(message) => {
                if attempt >= max {
                    return Err(E::from(RobustError::Crash(format!(
                        "attempt {attempt}/{max} panicked: {message}"
                    ))));
                }
                crashes.push(message);
            }
        }
        let delay = policy.delay_after(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    unreachable!("loop returns on the final attempt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::CHAOS_PANIC_PREFIX;

    fn temp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("nde-durable-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        RunStore::open(dir).unwrap()
    }

    fn fp() -> RunFingerprint {
        RunFingerprint::new("tmc-shapley", 7, "perms=16;tol=0", 0xDA7A)
    }

    fn payload(step: u64) -> Json {
        Json::Obj(vec![
            ("cursor".into(), Json::UInt(step)),
            ("total".into(), Json::Float(0.1 * step as f64 + 1e-13)),
        ])
    }

    #[test]
    fn fingerprint_key_separates_runs() {
        let base = fp();
        assert!(base.key().starts_with("tmc-shapley-"));
        for other in [
            RunFingerprint::new("banzhaf", 7, "perms=16;tol=0", 0xDA7A),
            RunFingerprint::new("tmc-shapley", 8, "perms=16;tol=0", 0xDA7A),
            RunFingerprint::new("tmc-shapley", 7, "perms=32;tol=0", 0xDA7A),
            RunFingerprint::new("tmc-shapley", 7, "perms=16;tol=0", 0xDA7B),
        ] {
            assert_ne!(base.key(), other.key(), "{other:?}");
        }
    }

    #[test]
    fn save_then_latest_roundtrips_bit_identically() {
        let store = temp_store("roundtrip");
        let fp = fp();
        assert_eq!(store.latest_valid(&fp).unwrap(), None);
        for step in [3, 9, 27] {
            store.save_checkpoint(&fp, step, &payload(step)).unwrap();
        }
        let latest = store.latest_valid(&fp).unwrap().unwrap();
        assert_eq!(latest.step, 27);
        assert_eq!(latest.payload, payload(27));
        // Bit-identical float round-trip through the envelope.
        let v = latest.payload.get("total").unwrap().as_f64().unwrap();
        assert_eq!(v.to_bits(), (0.1 * 27.0 + 1e-13f64).to_bits());
        // A different fingerprint sees nothing.
        let other = RunFingerprint::new("banzhaf", 7, "perms=16;tol=0", 0xDA7A);
        assert_eq!(store.latest_valid(&other).unwrap(), None);
    }

    #[test]
    fn invalid_records_are_skipped_not_fatal() {
        let store = temp_store("skip");
        let fp = fp();
        for step in [1, 2, 3] {
            store.save_checkpoint(&fp, step, &payload(step)).unwrap();
        }
        let paths = store.record_paths(&fp).unwrap();
        assert_eq!(paths.len(), 3);
        // Truncate the newest (torn write): recovery falls back to step 2.
        let text = std::fs::read_to_string(&paths[2].1).unwrap();
        std::fs::write(&paths[2].1, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.latest_valid(&fp).unwrap().unwrap().step, 2);
        // Corrupt step 2's checksum: falls back to step 1.
        let text = std::fs::read_to_string(&paths[1].1).unwrap();
        std::fs::write(&paths[1].1, text.replace("\"cursor\": 2", "\"cursor\": 20")).unwrap();
        assert_eq!(store.latest_valid(&fp).unwrap().unwrap().step, 1);
        // Stale format version on the last good record: nothing valid left.
        let text = std::fs::read_to_string(&paths[0].1).unwrap();
        std::fs::write(
            &paths[0].1,
            text.replace("\"format_version\": 1", "\"format_version\": 0"),
        )
        .unwrap();
        assert_eq!(store.latest_valid(&fp).unwrap(), None);
    }

    #[test]
    fn memo_cache_persists_across_processes() {
        let store = temp_store("memo");
        let fp = fp();
        let cache = MemoCache::new();
        cache.insert(u64::MAX - 3, 0.875);
        cache.insert(42, -0.1 + 1e-15);
        store.save_memo(&fp, &cache).unwrap();
        // "New process": a fresh cache warmed from disk.
        let warmed = MemoCache::new();
        assert_eq!(store.load_memo(&fp, &warmed).unwrap(), 2);
        assert_eq!(
            warmed.get(42).unwrap().to_bits(),
            (-0.1 + 1e-15f64).to_bits()
        );
        assert_eq!(warmed.get(u64::MAX - 3), Some(0.875));
        // Corrupt memo degrades to a cold start, not an error.
        let path = store.run_dir(&fp).join("memo.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("0.875", "0.5")).unwrap();
        let cold = MemoCache::new();
        assert_eq!(store.load_memo(&fp, &cold).unwrap(), 0);
        assert!(cold.is_empty());
    }

    #[test]
    fn supervise_restarts_through_panics_and_resumes() {
        let store = temp_store("supervise");
        let fp = fp();
        let out: Supervised<u64> = supervise(
            &store,
            &fp,
            &RetryPolicy::immediate(5),
            |ctx: &SuperviseCtx<'_>| -> Result<u64> {
                // Resume from the last checkpoint, advance, crash twice.
                let start = ctx.latest()?.map_or(0, |r| r.step);
                let next = start + 1;
                ctx.checkpoint(next, &payload(next))?;
                if ctx.attempt() < 3 {
                    panic!("{CHAOS_PANIC_PREFIX}: kill at checkpoint {next}");
                }
                Ok(next)
            },
        )
        .unwrap();
        // Attempt 1 checkpoints step 1 and dies; attempt 2 resumes at 1,
        // checkpoints 2 and dies; attempt 3 resumes at 2 and finishes at 3.
        assert_eq!(out.value, 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.crashes.len(), 2);
        assert!(out
            .crashes
            .iter()
            .all(|c| c.starts_with(CHAOS_PANIC_PREFIX)));
        assert_eq!(store.latest_valid(&fp).unwrap().unwrap().step, 3);
    }

    #[test]
    fn supervise_exhaustion_is_a_typed_crash_error() {
        let store = temp_store("exhaust");
        let fp = fp();
        let out: std::result::Result<Supervised<()>, RobustError> = supervise(
            &store,
            &fp,
            &RetryPolicy::immediate(2),
            |_ctx: &SuperviseCtx<'_>| -> Result<()> { panic!("{CHAOS_PANIC_PREFIX}: hard down") },
        );
        assert!(matches!(out, Err(RobustError::Crash(_))));
        // Typed errors pass through unchanged on the final attempt.
        let out: std::result::Result<Supervised<()>, RobustError> = supervise(
            &store,
            &fp,
            &RetryPolicy::immediate(2),
            |_ctx: &SuperviseCtx<'_>| Err(RobustError::InvalidArgument("nope".into())),
        );
        assert!(matches!(out, Err(RobustError::InvalidArgument(_))));
    }
}
