//! Checkpoint/resume for Monte-Carlo estimation runs.
//!
//! A [`McCheckpoint`] captures everything a permutation-sampling estimator
//! needs to continue exactly where it stopped: the base seed, the
//! permutation cursor, the (optional) raw RNG state of an in-flight stream,
//! and the running marginal sums. Because floats are serialized with
//! shortest-round-trip formatting (see [`nde_data::json`]), a resumed run
//! is **bit-identical** to an uninterrupted one.

use crate::error::RobustError;
use crate::Result;
use nde_data::json::{Json, ToJson};
use std::path::Path;

/// Progress inside a single interrupted permutation walk.
///
/// When a utility-call budget trips partway through a permutation, the
/// runner records how far the prefix walk got so resume can continue the
/// walk **mid-permutation** instead of re-running it from scratch. The
/// permutation's shuffled order is not stored: it is reconstructed on
/// resume by re-shuffling with `child_seed(seed, cursor)`, and
/// [`McCheckpoint::rng_state`] carries the post-shuffle stream state.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightPermutation {
    /// Number of prefix positions already folded (the walk resumes at
    /// `order[pos]`).
    pub pos: u64,
    /// Utility of the prefix `order[..pos]` (the subtrahend for the next
    /// marginal).
    pub prev_u: f64,
    /// Marginal contributions recorded so far in this permutation, indexed
    /// by example (zero for examples not yet reached).
    pub marginals: Vec<f64>,
}

/// A resumable snapshot of a Monte-Carlo importance estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct McCheckpoint {
    /// Which estimator wrote the snapshot (e.g. `"tmc-shapley"`). Resume
    /// refuses checkpoints from a different method.
    pub method: String,
    /// The base seed; permutation `p` derives its stream from
    /// `child_seed(seed, p)`.
    pub seed: u64,
    /// Number of scored training examples.
    pub n: usize,
    /// Next permutation index to run (permutations `0..cursor` are folded
    /// into the running sums already).
    pub cursor: u64,
    /// Cumulative utility evaluations across all segments of the run.
    pub utility_calls: u64,
    /// Raw xoshiro256** state of an in-flight stream, if the runner was
    /// interrupted mid-permutation (permutation-granular runners leave this
    /// `None` and restart the cursor's permutation from its child seed).
    pub rng_state: Option<[u64; 4]>,
    /// Walk progress inside permutation `cursor`, if the runner was
    /// interrupted mid-permutation. `None` means the run stopped exactly on
    /// a permutation boundary.
    pub inflight: Option<InflightPermutation>,
    /// Running sum of marginal contributions per example.
    pub totals: Vec<f64>,
    /// Running sum of squared marginal contributions per example (for
    /// standard-error diagnostics).
    pub totals_sq: Vec<f64>,
}

impl McCheckpoint {
    /// A fresh checkpoint at permutation 0 with zeroed sums.
    pub fn fresh(method: impl Into<String>, seed: u64, n: usize) -> McCheckpoint {
        McCheckpoint {
            method: method.into(),
            seed,
            n,
            cursor: 0,
            utility_calls: 0,
            rng_state: None,
            inflight: None,
            totals: vec![0.0; n],
            totals_sq: vec![0.0; n],
        }
    }

    /// Validate internal consistency (vector lengths match `n`, every float
    /// is finite, in-flight state is well-formed).
    ///
    /// The finiteness check matters for parsing as much as for in-process
    /// state: a permissive JSON reader turns `1e999` into `+inf`, and a
    /// NaN smuggled into the running sums would silently poison every
    /// score folded after resume.
    pub fn validate(&self) -> Result<()> {
        if self.totals.len() != self.n || self.totals_sq.len() != self.n {
            return Err(RobustError::Checkpoint(format!(
                "checkpoint claims n={} but holds {} totals / {} squared totals",
                self.n,
                self.totals.len(),
                self.totals_sq.len()
            )));
        }
        let all_finite = |name: &str, values: &[f64]| -> Result<()> {
            match values.iter().position(|v| !v.is_finite()) {
                Some(i) => Err(RobustError::Checkpoint(format!(
                    "`{name}[{i}]` is not a finite number"
                ))),
                None => Ok(()),
            }
        };
        all_finite("totals", &self.totals)?;
        all_finite("totals_sq", &self.totals_sq)?;
        if let Some(inflight) = &self.inflight {
            if !inflight.prev_u.is_finite() {
                return Err(RobustError::Checkpoint(
                    "`inflight.prev_u` is not a finite number".into(),
                ));
            }
            all_finite("inflight.marginals", &inflight.marginals)?;
            if inflight.marginals.len() != self.n {
                return Err(RobustError::Checkpoint(format!(
                    "in-flight state claims n={} but holds {} marginals",
                    self.n,
                    inflight.marginals.len()
                )));
            }
            if inflight.pos as usize > self.n {
                return Err(RobustError::Checkpoint(format!(
                    "in-flight position {} exceeds n={}",
                    inflight.pos, self.n
                )));
            }
            if self.rng_state.is_none() {
                return Err(RobustError::Checkpoint(
                    "in-flight state requires `rng_state` to reconstruct the stream".into(),
                ));
            }
        }
        Ok(())
    }

    /// The checkpoint as a structured JSON payload — the form a durable
    /// [`crate::RunStore`] record carries. [`McCheckpoint::to_json`] is this
    /// payload rendered as pretty text.
    pub fn to_payload(&self) -> Json {
        let rng_state = match self.rng_state {
            Some(words) => Json::Arr(words.iter().map(|&w| Json::UInt(w)).collect()),
            None => Json::Null,
        };
        let inflight = match &self.inflight {
            Some(state) => Json::Obj(vec![
                ("pos".into(), Json::UInt(state.pos)),
                ("prev_u".into(), state.prev_u.to_json()),
                ("marginals".into(), state.marginals.to_json()),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("method".into(), self.method.to_json()),
            ("seed".into(), Json::UInt(self.seed)),
            ("n".into(), Json::UInt(self.n as u64)),
            ("cursor".into(), Json::UInt(self.cursor)),
            ("utility_calls".into(), Json::UInt(self.utility_calls)),
            ("rng_state".into(), rng_state),
            ("inflight".into(), inflight),
            ("totals".into(), self.totals.to_json()),
            ("totals_sq".into(), self.totals_sq.to_json()),
        ])
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_payload().to_string_pretty()
    }

    /// Parse a checkpoint serialized with [`McCheckpoint::to_json`].
    pub fn from_json(text: &str) -> Result<McCheckpoint> {
        let doc = Json::parse(text)
            .map_err(|e| RobustError::Checkpoint(format!("unparseable checkpoint: {e}")))?;
        McCheckpoint::from_payload(&doc)
    }

    /// Reconstruct from a structured payload (e.g. a durable-store record),
    /// validating field types, vector lengths, and float finiteness.
    pub fn from_payload(doc: &Json) -> Result<McCheckpoint> {
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| RobustError::Checkpoint(format!("missing field `{name}`")))
        };
        let floats = |name: &str| -> Result<Vec<f64>> {
            field(name)?
                .as_arr()
                .ok_or_else(|| RobustError::Checkpoint(format!("`{name}` is not an array")))?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        RobustError::Checkpoint(format!("`{name}` holds a non-number"))
                    })
                })
                .collect()
        };
        let uint = |name: &str| -> Result<u64> {
            field(name)?
                .as_u64()
                .ok_or_else(|| RobustError::Checkpoint(format!("`{name}` is not an integer")))
        };
        let rng_state = match field("rng_state")? {
            Json::Null => None,
            Json::Arr(words) if words.len() == 4 => {
                let mut out = [0u64; 4];
                for (slot, w) in out.iter_mut().zip(words) {
                    *slot = w.as_u64().ok_or_else(|| {
                        RobustError::Checkpoint("`rng_state` holds a non-integer".into())
                    })?;
                }
                Some(out)
            }
            _ => {
                return Err(RobustError::Checkpoint(
                    "`rng_state` must be null or a 4-word array".into(),
                ))
            }
        };
        // Written by older runners that stop only on permutation boundaries;
        // treat a missing `inflight` field the same as an explicit null.
        let inflight = match doc.get("inflight") {
            None | Some(Json::Null) => None,
            Some(obj @ Json::Obj(_)) => {
                let sub = |name: &str| {
                    obj.get(name).ok_or_else(|| {
                        RobustError::Checkpoint(format!("`inflight` missing field `{name}`"))
                    })
                };
                Some(InflightPermutation {
                    pos: sub("pos")?.as_u64().ok_or_else(|| {
                        RobustError::Checkpoint("`inflight.pos` is not an integer".into())
                    })?,
                    prev_u: sub("prev_u")?.as_f64().ok_or_else(|| {
                        RobustError::Checkpoint("`inflight.prev_u` is not a number".into())
                    })?,
                    marginals: sub("marginals")?
                        .as_arr()
                        .ok_or_else(|| {
                            RobustError::Checkpoint("`inflight.marginals` is not an array".into())
                        })?
                        .iter()
                        .map(|v| {
                            v.as_f64().ok_or_else(|| {
                                RobustError::Checkpoint(
                                    "`inflight.marginals` holds a non-number".into(),
                                )
                            })
                        })
                        .collect::<Result<Vec<f64>>>()?,
                })
            }
            Some(_) => {
                return Err(RobustError::Checkpoint(
                    "`inflight` must be null or an object".into(),
                ))
            }
        };
        let ckpt = McCheckpoint {
            method: field("method")?
                .as_str()
                .ok_or_else(|| RobustError::Checkpoint("`method` is not a string".into()))?
                .to_string(),
            seed: uint("seed")?,
            n: uint("n")? as usize,
            cursor: uint("cursor")?,
            utility_calls: uint("utility_calls")?,
            rng_state,
            inflight,
            totals: floats("totals")?,
            totals_sq: floats("totals_sq")?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Write the checkpoint to a file (atomically: write + rename, so a
    /// crash mid-write never leaves a truncated checkpoint behind).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| RobustError::Io(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| RobustError::Io(format!("renaming {}: {e}", path.display())))
    }

    /// Load a checkpoint file written by [`McCheckpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<McCheckpoint> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| RobustError::Io(format!("reading {}: {e}", path.display())))?;
        McCheckpoint::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> McCheckpoint {
        McCheckpoint {
            method: "tmc-shapley".into(),
            seed: u64::MAX - 7,
            n: 3,
            cursor: 41,
            utility_calls: 1234,
            rng_state: Some([1, u64::MAX, 0, 99]),
            inflight: Some(InflightPermutation {
                pos: 2,
                prev_u: 0.625 + 1e-16,
                marginals: vec![0.25, -0.125, 0.0],
            }),
            totals: vec![0.1 + 0.2, -1.5e-13, 1.0 / 3.0],
            totals_sq: vec![0.09, 2.25e-26, 1.0 / 9.0],
        }
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let ckpt = sample();
        let back = McCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back.method, ckpt.method);
        assert_eq!(back.seed, ckpt.seed);
        assert_eq!(back.cursor, ckpt.cursor);
        assert_eq!(back.rng_state, ckpt.rng_state);
        let (a, b) = (
            ckpt.inflight.as_ref().unwrap(),
            back.inflight.as_ref().unwrap(),
        );
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.prev_u.to_bits(), b.prev_u.to_bits());
        for (x, y) in a.marginals.iter().zip(&b.marginals) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (a, b) in ckpt.totals.iter().zip(&back.totals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in ckpt.totals_sq.iter().zip(&back.totals_sq) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nde-robust-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.json");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let back = McCheckpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        assert!(matches!(
            McCheckpoint::from_json("not json"),
            Err(RobustError::Checkpoint(_))
        ));
        assert!(matches!(
            McCheckpoint::from_json("{}"),
            Err(RobustError::Checkpoint(_))
        ));
        // Inconsistent n vs. totals length.
        let mut ckpt = sample();
        ckpt.totals.pop();
        let text = ckpt.to_json();
        assert!(matches!(
            McCheckpoint::from_json(&text),
            Err(RobustError::Checkpoint(_))
        ));
        // Missing file.
        assert!(matches!(
            McCheckpoint::load("/nonexistent/nope.json"),
            Err(RobustError::Io(_))
        ));
    }

    #[test]
    fn fresh_checkpoint_is_zeroed() {
        let ckpt = McCheckpoint::fresh("tmc-shapley", 9, 4);
        assert_eq!(ckpt.cursor, 0);
        assert_eq!(ckpt.totals, vec![0.0; 4]);
        assert!(ckpt.inflight.is_none());
        assert!(ckpt.validate().is_ok());
    }

    #[test]
    fn checkpoints_without_inflight_field_still_parse() {
        // A PR-1-era checkpoint predates the `inflight` field entirely.
        let mut ckpt = sample();
        ckpt.inflight = None;
        ckpt.rng_state = None;
        let legacy = ckpt.to_json().replace("  \"inflight\": null,\n", "");
        assert!(legacy.len() < ckpt.to_json().len());
        let back = McCheckpoint::from_json(&legacy).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn malformed_inflight_is_rejected() {
        // Marginals length must match n.
        let mut ckpt = sample();
        ckpt.inflight.as_mut().unwrap().marginals.pop();
        assert!(matches!(
            McCheckpoint::from_json(&ckpt.to_json()),
            Err(RobustError::Checkpoint(_))
        ));
        // In-flight state without an RNG stream to resume is unusable.
        let mut ckpt = sample();
        ckpt.rng_state = None;
        assert!(matches!(
            McCheckpoint::from_json(&ckpt.to_json()),
            Err(RobustError::Checkpoint(_))
        ));
        // Position can't exceed n.
        let mut ckpt = sample();
        ckpt.inflight.as_mut().unwrap().pos = 99;
        assert!(matches!(
            McCheckpoint::from_json(&ckpt.to_json()),
            Err(RobustError::Checkpoint(_))
        ));
    }

    #[test]
    fn truncated_serializations_never_panic() {
        // A torn write can cut the file at any byte; every prefix must come
        // back as a typed error (the full text parses, nothing panics).
        let text = sample().to_json();
        for cut in 0..text.len() {
            assert!(matches!(
                McCheckpoint::from_json(&text[..cut]),
                Err(RobustError::Checkpoint(_))
            ));
        }
        assert!(McCheckpoint::from_json(&text).is_ok());
    }

    #[test]
    fn non_finite_float_encodings_are_rejected() {
        // `1e999` overflows to +inf when parsed; the checkpoint layer must
        // refuse it in every float-bearing field rather than resume with an
        // infinite running sum.
        let text = sample().to_json();
        for token in [
            "0.30000000000000004",
            "0.09",
            "0.6250000000000001",
            "-0.125",
        ] {
            let smuggled = text.replacen(token, "1e999", 1);
            assert_ne!(smuggled, text, "token {token} not found in fixture");
            assert!(matches!(
                McCheckpoint::from_json(&smuggled),
                Err(RobustError::Checkpoint(_))
            ));
        }
        // In-process construction is policed the same way.
        let mut ckpt = sample();
        ckpt.totals[1] = f64::NAN;
        assert!(matches!(ckpt.validate(), Err(RobustError::Checkpoint(_))));
        let mut ckpt = sample();
        ckpt.inflight.as_mut().unwrap().prev_u = f64::INFINITY;
        assert!(matches!(ckpt.validate(), Err(RobustError::Checkpoint(_))));
    }

    #[test]
    fn wrong_type_fields_are_rejected() {
        let text = sample().to_json();
        let swaps = [
            ("\"method\": \"tmc-shapley\"", "\"method\": 17"),
            ("\"seed\": 18446744073709551608", "\"seed\": \"huge\""),
            ("\"cursor\": 41", "\"cursor\": -41"),
            ("\"utility_calls\": 1234", "\"utility_calls\": [1234]"),
            ("\"rng_state\": [", "\"rng_state\": 4["),
            ("\"pos\": 2", "\"pos\": 2.5"),
            ("\"totals\": [", "\"totals\": \"[\"["),
        ];
        for (from, to) in swaps {
            let mutated = text.replacen(from, to, 1);
            assert_ne!(mutated, text, "pattern {from} not found in fixture");
            assert!(
                McCheckpoint::from_json(&mutated).is_err(),
                "mutation {from} -> {to} was accepted"
            );
        }
    }

    #[test]
    fn random_mutations_error_or_validate_but_never_panic() {
        use nde_data::rng::{seeded, Rng};
        // Property test: round-trip the sample, then hammer the serialized
        // text with random byte edits. Every outcome must be a typed error
        // or a checkpoint that passes `validate()` — no panics, no accepted
        // non-finite state.
        let text = sample().to_json();
        let mut rng = seeded(0xC4A05);
        for _ in 0..600 {
            let mut bytes = text.clone().into_bytes();
            for _ in 0..1 + rng.gen_range(0..4usize) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(32..127usize) as u8;
            }
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(ckpt) = McCheckpoint::from_json(&mutated) {
                assert!(ckpt.validate().is_ok());
                assert!(ckpt.totals.iter().all(|v| v.is_finite()));
                assert!(ckpt.totals_sq.iter().all(|v| v.is_finite()));
            }
        }
    }
}
