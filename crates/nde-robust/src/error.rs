//! Error type for the robustness foundation.

use std::fmt;

/// Errors from budgets, checkpoints and the chaos harness.
#[derive(Debug, Clone, PartialEq)]
pub enum RobustError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A checkpoint file could not be parsed or is inconsistent.
    Checkpoint(String),
    /// A filesystem operation on a checkpoint file failed.
    Io(String),
    /// A supervised computation crashed (panicked) and exhausted its
    /// retry policy; the last panic payload is preserved.
    Crash(String),
}

impl fmt::Display for RobustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            RobustError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            RobustError::Io(msg) => write!(f, "io error: {msg}"),
            RobustError::Crash(msg) => write!(f, "supervised run crashed: {msg}"),
        }
    }
}

impl std::error::Error for RobustError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(RobustError::Checkpoint("bad".into())
            .to_string()
            .contains("checkpoint"));
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RobustError::Io("x".into()));
    }
}
