//! Run budgets: wall-clock deadlines plus iteration and utility-call
//! budgets, threaded through the workspace's long-running estimators.
//!
//! A budgeted runner checks its [`BudgetClock`] at iteration boundaries and,
//! on exhaustion, **degrades gracefully**: it returns the best-so-far
//! estimate tagged with [`ConvergenceDiagnostics`] (iterations done, maximum
//! marginal standard error, which limit tripped) instead of running forever
//! or aborting the process.

use std::fmt;
use std::time::{Duration, Instant};

/// Limits on a long-running estimation. All limits are optional; the
/// default budget is unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline, measured from [`RunBudget::start`].
    pub wall_clock: Option<Duration>,
    /// Maximum number of iterations (permutations, rounds, epochs — the
    /// runner's natural unit of progress).
    pub max_iterations: Option<u64>,
    /// Maximum number of utility evaluations (model retrain + score), the
    /// dominant cost of Shapley-style estimators.
    pub max_utility_calls: Option<u64>,
}

impl RunBudget {
    /// A budget with no limits.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Set a wall-clock deadline.
    pub fn with_wall_clock(mut self, limit: Duration) -> RunBudget {
        self.wall_clock = Some(limit);
        self
    }

    /// Set an iteration budget.
    pub fn with_max_iterations(mut self, limit: u64) -> RunBudget {
        self.max_iterations = Some(limit);
        self
    }

    /// Set a utility-call budget.
    pub fn with_max_utility_calls(mut self, limit: u64) -> RunBudget {
        self.max_utility_calls = Some(limit);
        self
    }

    /// Start the clock on this budget.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            budget: self.clone(),
            started: Instant::now(),
            iterations: 0,
            utility_calls: 0,
        }
    }

    /// Start the clock with progress carried over from a resumed checkpoint,
    /// so budgets count *total* work across interruptions.
    pub fn resume(&self, iterations: u64, utility_calls: u64) -> BudgetClock {
        BudgetClock {
            budget: self.clone(),
            started: Instant::now(),
            iterations,
            utility_calls,
        }
    }
}

/// Which budget limit tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The iteration budget was consumed.
    Iterations,
    /// The utility-call budget was consumed.
    UtilityCalls,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::Deadline => write!(f, "wall-clock deadline reached"),
            Exhaustion::Iterations => write!(f, "iteration budget exhausted"),
            Exhaustion::UtilityCalls => write!(f, "utility-call budget exhausted"),
        }
    }
}

/// Tracks consumption against a [`RunBudget`].
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: RunBudget,
    started: Instant,
    iterations: u64,
    utility_calls: u64,
}

impl BudgetClock {
    /// Record one completed iteration.
    pub fn record_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Record `n` utility evaluations.
    pub fn record_utility_calls(&mut self, n: u64) {
        self.utility_calls += n;
    }

    /// Iterations recorded so far (including any resumed base).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Utility calls recorded so far (including any resumed base).
    pub fn utility_calls(&self) -> u64 {
        self.utility_calls
    }

    /// Wall-clock time since the clock started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The first limit that has tripped, if any. Checked in a fixed order
    /// (iterations, utility calls, deadline) so tests are deterministic.
    pub fn exhausted(&self) -> Option<Exhaustion> {
        if let Some(max) = self.budget.max_iterations {
            if self.iterations >= max {
                return Some(Exhaustion::Iterations);
            }
        }
        if let Some(max) = self.budget.max_utility_calls {
            if self.utility_calls >= max {
                return Some(Exhaustion::UtilityCalls);
            }
        }
        if let Some(limit) = self.budget.wall_clock {
            if self.started.elapsed() >= limit {
                return Some(Exhaustion::Deadline);
            }
        }
        None
    }

    /// Whether `n` further utility calls would exceed the utility budget.
    pub fn would_exceed_utility(&self, n: u64) -> bool {
        match self.budget.max_utility_calls {
            Some(max) => self.utility_calls.saturating_add(n) > max,
            None => false,
        }
    }

    /// How many utility calls remain before the utility budget trips, or
    /// `None` if unlimited. Batched evaluators clamp their wave width to
    /// this so a tripping budget never pays for evaluations the sequential
    /// stopping rule will discard.
    pub fn remaining_utility_calls(&self) -> Option<u64> {
        self.budget
            .max_utility_calls
            .map(|max| max.saturating_sub(self.utility_calls))
    }

    /// Snapshot diagnostics for a finished (or interrupted) run.
    pub fn diagnostics(&self, max_marginal_std_error: Option<f64>) -> ConvergenceDiagnostics {
        ConvergenceDiagnostics {
            iterations: self.iterations,
            utility_calls: self.utility_calls,
            elapsed: self.started.elapsed(),
            max_marginal_std_error,
            exhausted: self.exhausted(),
        }
    }
}

/// How far a budgeted estimation got, and how trustworthy its output is.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceDiagnostics {
    /// Iterations completed (permutations, rounds, epochs).
    pub iterations: u64,
    /// Utility evaluations performed.
    pub utility_calls: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The largest standard error of any per-example marginal estimate,
    /// when the estimator tracks one (Monte-Carlo Shapley does).
    pub max_marginal_std_error: Option<f64>,
    /// `Some` iff the run stopped because a budget limit tripped; the
    /// result is then a best-so-far estimate, not a converged one.
    pub exhausted: Option<Exhaustion>,
}

impl ConvergenceDiagnostics {
    /// `true` if the run finished its planned work without hitting a limit.
    pub fn completed(&self) -> bool {
        self.exhausted.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut clock = RunBudget::unlimited().start();
        for _ in 0..10_000 {
            clock.record_iteration();
            clock.record_utility_calls(5);
        }
        assert_eq!(clock.exhausted(), None);
        assert!(clock.diagnostics(None).completed());
    }

    #[test]
    fn iteration_budget_trips() {
        let mut clock = RunBudget::unlimited().with_max_iterations(3).start();
        clock.record_iteration();
        clock.record_iteration();
        assert_eq!(clock.exhausted(), None);
        clock.record_iteration();
        assert_eq!(clock.exhausted(), Some(Exhaustion::Iterations));
        let d = clock.diagnostics(Some(0.25));
        assert!(!d.completed());
        assert_eq!(d.iterations, 3);
        assert_eq!(d.max_marginal_std_error, Some(0.25));
    }

    #[test]
    fn utility_budget_trips_and_predicts() {
        let mut clock = RunBudget::unlimited().with_max_utility_calls(10).start();
        clock.record_utility_calls(8);
        assert_eq!(clock.exhausted(), None);
        assert!(!clock.would_exceed_utility(2));
        assert!(clock.would_exceed_utility(3));
        assert_eq!(clock.remaining_utility_calls(), Some(2));
        clock.record_utility_calls(2);
        assert_eq!(clock.exhausted(), Some(Exhaustion::UtilityCalls));
        assert_eq!(clock.remaining_utility_calls(), Some(0));
        clock.record_utility_calls(5);
        // Overshoot saturates rather than wrapping.
        assert_eq!(clock.remaining_utility_calls(), Some(0));
    }

    #[test]
    fn unlimited_budget_has_no_remaining_count() {
        let clock = RunBudget::unlimited().start();
        assert_eq!(clock.remaining_utility_calls(), None);
    }

    #[test]
    fn deadline_trips() {
        let clock = RunBudget::unlimited()
            .with_wall_clock(Duration::ZERO)
            .start();
        assert_eq!(clock.exhausted(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn resume_carries_prior_progress() {
        let clock = RunBudget::unlimited()
            .with_max_iterations(10)
            .resume(10, 100);
        assert_eq!(clock.exhausted(), Some(Exhaustion::Iterations));
        assert_eq!(clock.iterations(), 10);
        assert_eq!(clock.utility_calls(), 100);
    }

    #[test]
    fn exhaustion_displays() {
        assert!(Exhaustion::Deadline.to_string().contains("deadline"));
        assert!(Exhaustion::Iterations.to_string().contains("iteration"));
        assert!(Exhaustion::UtilityCalls.to_string().contains("utility"));
    }
}
