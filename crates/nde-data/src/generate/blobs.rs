//! Simple numeric datasets: Gaussian class blobs and linear-regression data.
//!
//! These feed the §2.3 experiments (Zorro bounds, certain predictions,
//! certain models, dataset multiplicity) where we need controllable numeric
//! feature spaces rather than text.

use crate::rng::Rng;
use crate::rng::{normal, seeded};

/// A dense numeric classification dataset.
#[derive(Debug, Clone)]
pub struct NumericDataset {
    /// Row-major features, `n x d`.
    pub features: Vec<Vec<f64>>,
    /// Class labels in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl NumericDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }
}

/// Two Gaussian blobs in `d` dimensions, centered at `±separation/2` on every
/// axis; labels 0/1. Higher `separation` ⇒ easier problem.
pub fn two_gaussians(n: usize, d: usize, separation: f64, seed: u64) -> NumericDataset {
    let mut rng = seeded(seed);
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let center = if label == 0 {
            -separation / 2.0
        } else {
            separation / 2.0
        };
        let x: Vec<f64> = (0..d).map(|_| center + normal(&mut rng)).collect();
        features.push(x);
        labels.push(label);
    }
    // Shuffle so splits don't alternate classes systematically.
    let perm = crate::rng::permutation(n, &mut rng);
    NumericDataset {
        features: perm.iter().map(|&i| features[i].clone()).collect(),
        labels: perm.iter().map(|&i| labels[i]).collect(),
        n_classes: 2,
    }
}

/// A linear-regression dataset: `y = w·x + b + noise`, features uniform in
/// `[-1, 1]`. Returns `(features, targets, true_weights, true_bias)`.
pub fn linear_regression(
    n: usize,
    d: usize,
    noise_sd: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, f64) {
    let mut rng = seeded(seed);
    let w: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let b: f64 = rng.gen_range(-1.0..1.0);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y =
            w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>() + b + noise_sd * normal(&mut rng);
        xs.push(x);
        ys.push(y);
    }
    (xs, ys, w, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_separable_when_far_apart() {
        let ds = two_gaussians(400, 3, 6.0, 7);
        assert_eq!(ds.len(), 400);
        assert_eq!(ds.dim(), 3);
        // A trivial sign-of-mean classifier should do well at separation 6.
        let mut correct = 0;
        for (x, &y) in ds.features.iter().zip(&ds.labels) {
            let mean: f64 = x.iter().sum::<f64>() / x.len() as f64;
            let pred = usize::from(mean > 0.0);
            if pred == y {
                correct += 1;
            }
        }
        assert!(correct > 380, "correct={correct}");
    }

    #[test]
    fn blobs_balanced_and_deterministic() {
        let a = two_gaussians(100, 2, 2.0, 1);
        let b = two_gaussians(100, 2, 2.0, 1);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let ones = a.labels.iter().filter(|&&l| l == 1).count();
        assert_eq!(ones, 50);
    }

    #[test]
    fn linear_regression_recoverable_without_noise() {
        let (xs, ys, w, b) = linear_regression(200, 2, 0.0, 9);
        for (x, y) in xs.iter().zip(&ys) {
            let pred = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
            assert!((pred - y).abs() < 1e-9);
        }
    }
}
