//! The tutorial's hiring scenario: recommendation letters plus side tables.
//!
//! Reproduces the data layout of the hands-on session (paper §3.1, Figs. 2–3):
//!
//! * `letters` — the main training table with one recommendation letter per
//!   applicant and the sentiment label to predict;
//! * `job_details` — a side table keyed by `job_id` with the job's `sector`
//!   (the Fig. 3 pipeline filters on `sector == "healthcare"`);
//! * `social` — a side table keyed by `person_id` with an optional Twitter
//!   handle (the Fig. 3 pipeline derives `has_twitter` from its nullness).

use super::letters::{generate_letter, Sentiment};
use crate::column::Column;
use crate::rng::Rng;
use crate::rng::SliceRandom;
use crate::rng::{normal_with, seeded};
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;

/// Degrees appearing in the `degree` column (which also has natural nulls).
pub const DEGREES: &[&str] = &["bachelor", "master", "phd"];
/// Sectors appearing in `job_details.sector`.
pub const SECTORS: &[&str] = &["healthcare", "tech", "finance", "education"];
/// Seniority levels in `job_details.seniority`.
pub const SENIORITIES: &[&str] = &["junior", "mid", "senior"];

/// Name of the label column in the letters table.
pub const LABEL_COLUMN: &str = "sentiment";

/// The complete synthetic hiring scenario.
#[derive(Debug, Clone)]
pub struct HiringScenario {
    /// Main table: one row per applicant/letter.
    ///
    /// Columns: `person_id: Int`, `job_id: Int`, `letter_text: Str`,
    /// `degree: Str?`, `employer_rating: Float`, `years_experience: Float`,
    /// `sentiment: Str` (the label).
    pub letters: Table,
    /// Side table keyed by `job_id`: `sector: Str`, `salary_band: Int`,
    /// `seniority: Str`.
    pub job_details: Table,
    /// Side table keyed by `person_id`: `twitter: Str?`, `followers: Int`.
    pub social: Table,
}

/// Tunable knobs for scenario generation; [`Default`] matches the tutorial.
#[derive(Debug, Clone)]
pub struct HiringConfig {
    /// Fraction of positive-sentiment letters.
    pub positive_fraction: f64,
    /// Phrase purity passed to the letter generator (see [`generate_letter`]).
    pub letter_purity: f64,
    /// Fraction of naturally missing `degree` values.
    pub degree_missing_fraction: f64,
    /// Probability that an applicant has a Twitter handle.
    pub twitter_presence: f64,
    /// Number of distinct jobs the applicants are spread over.
    pub n_jobs: usize,
}

impl Default for HiringConfig {
    fn default() -> Self {
        HiringConfig {
            positive_fraction: 0.5,
            letter_purity: 0.88,
            degree_missing_fraction: 0.08,
            twitter_presence: 0.6,
            n_jobs: 40,
        }
    }
}

impl HiringScenario {
    /// Generate a scenario with `n` applicants, deterministically from `seed`.
    pub fn generate(n: usize, seed: u64) -> HiringScenario {
        Self::generate_with(n, seed, &HiringConfig::default())
    }

    /// Generate with explicit configuration.
    pub fn generate_with(n: usize, seed: u64, cfg: &HiringConfig) -> HiringScenario {
        let mut rng = seeded(seed);
        let n_jobs = cfg.n_jobs.max(1);

        // --- job_details -------------------------------------------------
        let mut job_details = Table::empty(
            "jobdetail_df",
            Schema::new(vec![
                Field::new("job_id", DataType::Int),
                Field::new("sector", DataType::Str),
                Field::new("salary_band", DataType::Int),
                Field::new("seniority", DataType::Str),
            ])
            .expect("static schema is valid"),
        );
        for job_id in 0..n_jobs as i64 {
            // Oversample healthcare so the Fig. 3 filter keeps a healthy subset.
            let sector = if rng.gen::<f64>() < 0.4 {
                "healthcare"
            } else {
                *SECTORS[1..].choose(&mut rng).expect("non-empty")
            };
            let band = rng.gen_range(1..=6);
            let seniority = *SENIORITIES.choose(&mut rng).expect("non-empty");
            job_details
                .push_row(vec![
                    job_id.into(),
                    sector.into(),
                    Value::Int(band),
                    seniority.into(),
                ])
                .expect("row matches schema");
        }

        // --- letters (main table) ----------------------------------------
        let mut letters = Table::empty(
            "train_df",
            Schema::new(vec![
                Field::new("person_id", DataType::Int),
                Field::new("job_id", DataType::Int),
                Field::new("letter_text", DataType::Str),
                Field::new("degree", DataType::Str),
                Field::new("employer_rating", DataType::Float),
                Field::new("years_experience", DataType::Float),
                Field::new(LABEL_COLUMN, DataType::Str),
            ])
            .expect("static schema is valid"),
        );
        let mut sentiments = Vec::with_capacity(n);
        for person_id in 0..n as i64 {
            let sentiment = if rng.gen::<f64>() < cfg.positive_fraction {
                Sentiment::Positive
            } else {
                Sentiment::Negative
            };
            sentiments.push(sentiment);
            let job_id = rng.gen_range(0..n_jobs as i64);
            let text = generate_letter(sentiment, cfg.letter_purity, &mut rng);
            let degree: Value = if rng.gen::<f64>() < cfg.degree_missing_fraction {
                Value::Null
            } else {
                (*DEGREES.choose(&mut rng).expect("non-empty")).into()
            };
            // employer_rating correlates with sentiment: positive letters come
            // from better-rated employments (makes it informative for Zorro).
            let rating_mean = match sentiment {
                Sentiment::Positive => 7.5,
                Sentiment::Negative => 4.5,
            };
            let rating = normal_with(rating_mean, 1.5, &mut rng).clamp(0.0, 10.0);
            let years = normal_with(8.0, 4.0, &mut rng).clamp(0.0, 40.0);
            letters
                .push_row(vec![
                    person_id.into(),
                    job_id.into(),
                    text.into(),
                    degree,
                    rating.into(),
                    years.into(),
                    sentiment.label().into(),
                ])
                .expect("row matches schema");
        }

        // --- social -------------------------------------------------------
        let mut social = Table::empty(
            "social_df",
            Schema::new(vec![
                Field::new("person_id", DataType::Int),
                Field::new("twitter", DataType::Str),
                Field::new("followers", DataType::Int),
            ])
            .expect("static schema is valid"),
        );
        for person_id in 0..n as i64 {
            let has_twitter = rng.gen::<f64>() < cfg.twitter_presence;
            let handle: Value = if has_twitter {
                format!("@applicant_{person_id}").into()
            } else {
                Value::Null
            };
            let followers = if has_twitter {
                rng.gen_range(10..5_000)
            } else {
                0
            };
            social
                .push_row(vec![person_id.into(), handle, Value::Int(followers)])
                .expect("row matches schema");
        }

        HiringScenario {
            letters,
            job_details,
            social,
        }
    }

    /// Ground-truth sentiment of each letter row (useful for oracles).
    pub fn labels(&self) -> Vec<Sentiment> {
        (0..self.letters.n_rows())
            .map(|i| {
                let v = self
                    .letters
                    .get(i, LABEL_COLUMN)
                    .expect("label column exists");
                Sentiment::parse(v.as_str().expect("labels are strings"))
                    .expect("labels are canonical")
            })
            .collect()
    }
}

/// Build a float column from per-row values (convenience for tests/benches).
pub fn float_column(values: &[f64]) -> Column {
    Column::Float(values.iter().copied().map(Some).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_keys() {
        let s = HiringScenario::generate(120, 9);
        assert_eq!(s.letters.n_rows(), 120);
        assert_eq!(s.social.n_rows(), 120);
        assert_eq!(s.job_details.n_rows(), HiringConfig::default().n_jobs);
        // Every letter's job_id exists in job_details.
        let (joined, _) = s
            .letters
            .hash_join(&s.job_details, "job_id", "job_id")
            .unwrap();
        assert_eq!(joined.n_rows(), 120);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = HiringScenario::generate(50, 1);
        let b = HiringScenario::generate(50, 1);
        assert_eq!(a.letters, b.letters);
        assert_eq!(a.job_details, b.job_details);
        assert_eq!(a.social, b.social);
        let c = HiringScenario::generate(50, 2);
        assert_ne!(a.letters, c.letters);
    }

    #[test]
    fn label_balance_and_rating_correlation() {
        let s = HiringScenario::generate(400, 3);
        let labels = s.labels();
        let pos = labels.iter().filter(|&&l| l == Sentiment::Positive).count();
        assert!(pos > 140 && pos < 260, "pos={pos}");
        // Positive letters have visibly higher mean employer_rating.
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        let (mut np, mut nn) = (0.0, 0.0);
        for (i, l) in labels.iter().enumerate() {
            let r = s
                .letters
                .get(i, "employer_rating")
                .unwrap()
                .as_float()
                .unwrap();
            match l {
                Sentiment::Positive => {
                    pos_sum += r;
                    np += 1.0;
                }
                Sentiment::Negative => {
                    neg_sum += r;
                    nn += 1.0;
                }
            }
        }
        assert!(pos_sum / np > neg_sum / nn + 1.0);
    }

    #[test]
    fn degree_has_natural_missingness() {
        let s = HiringScenario::generate(500, 4);
        let nulls = s.letters.column("degree").unwrap().null_count();
        assert!(nulls > 10 && nulls < 100, "nulls={nulls}");
    }

    #[test]
    fn some_applicants_lack_twitter() {
        let s = HiringScenario::generate(300, 5);
        let nulls = s.social.column("twitter").unwrap().null_count();
        assert!(nulls > 60 && nulls < 240, "nulls={nulls}");
    }

    #[test]
    fn healthcare_is_well_represented() {
        let s = HiringScenario::generate(10, 6);
        let counts = s.job_details.value_counts("sector").unwrap();
        let healthcare = counts
            .iter()
            .find(|(v, _)| v.as_str() == Some("healthcare"))
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(healthcare >= 5, "healthcare={healthcare}");
    }
}
