//! Deterministic synthetic data generators.
//!
//! The tutorial's hands-on session runs on *synthetically generated* data from
//! a hiring scenario — recommendation letters plus side tables with job and
//! social-media details (paper §3.1). These modules reproduce that scenario,
//! along with simple numeric datasets (Gaussian blobs, linear-regression data)
//! used by the learning-from-uncertain-data experiments.

pub mod blobs;
pub mod hiring;
pub mod letters;
pub mod splits;
