//! Train / validation / test splitting.

use crate::rng::{permutation, seeded};
use crate::table::Table;
use crate::{DataError, Result};

/// Row-index split of a dataset into train / validation / test parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Row indices of the training part.
    pub train: Vec<usize>,
    /// Row indices of the validation part.
    pub valid: Vec<usize>,
    /// Row indices of the test part.
    pub test: Vec<usize>,
}

/// Split `0..n` into train/valid/test by the given fractions (must sum ≤ 1;
/// the test part absorbs the remainder), shuffled deterministically by `seed`.
pub fn train_valid_test(n: usize, train_frac: f64, valid_frac: f64, seed: u64) -> Result<Split> {
    if !(0.0..=1.0).contains(&train_frac)
        || !(0.0..=1.0).contains(&valid_frac)
        || train_frac + valid_frac > 1.0
    {
        return Err(DataError::InvalidArgument(format!(
            "invalid split fractions: train={train_frac}, valid={valid_frac}"
        )));
    }
    let mut rng = seeded(seed);
    let perm = permutation(n, &mut rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let n_train = n_train.min(n);
    let n_valid = n_valid.min(n - n_train);
    Ok(Split {
        train: perm[..n_train].to_vec(),
        valid: perm[n_train..n_train + n_valid].to_vec(),
        test: perm[n_train + n_valid..].to_vec(),
    })
}

/// Apply a [`Split`] to a table, producing the three sub-tables.
pub fn split_table(table: &Table, split: &Split) -> Result<(Table, Table, Table)> {
    let mut train = table.take(&split.train)?;
    let mut valid = table.take(&split.valid)?;
    let mut test = table.take(&split.test)?;
    train.set_name(format!("{}_train", table.name()));
    valid.set_name(format!("{}_valid", table.name()));
    test.set_name(format!("{}_test", table.name()));
    Ok((train, valid, test))
}

/// K-fold cross-validation index sets: returns `k` (train, held-out) pairs.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 || k > n {
        return Err(DataError::InvalidArgument(format!(
            "k must be in [2, n]; got k={k}, n={n}"
        )));
    }
    let mut rng = seeded(seed);
    let perm = permutation(n, &mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let held: Vec<usize> = perm
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k == f)
            .map(|(_, v)| v)
            .collect();
        let train: Vec<usize> = perm
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k != f)
            .map(|(_, v)| v)
            .collect();
        folds.push((train, held));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::HiringScenario;

    #[test]
    fn split_sizes_and_disjointness() {
        let s = train_valid_test(100, 0.6, 0.2, 1).unwrap();
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.valid.len(), 20);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        assert_eq!(
            train_valid_test(50, 0.5, 0.25, 9).unwrap(),
            train_valid_test(50, 0.5, 0.25, 9).unwrap()
        );
        assert_ne!(
            train_valid_test(50, 0.5, 0.25, 9).unwrap(),
            train_valid_test(50, 0.5, 0.25, 10).unwrap()
        );
    }

    #[test]
    fn invalid_fractions_rejected() {
        assert!(train_valid_test(10, 0.9, 0.5, 1).is_err());
        assert!(train_valid_test(10, -0.1, 0.5, 1).is_err());
    }

    #[test]
    fn split_table_applies_indices() {
        let scenario = HiringScenario::generate(30, 2);
        let split = train_valid_test(30, 0.5, 0.2, 3).unwrap();
        let (train, valid, test) = split_table(&scenario.letters, &split).unwrap();
        assert_eq!(train.n_rows(), 15);
        assert_eq!(valid.n_rows(), 6);
        assert_eq!(test.n_rows(), 9);
        assert_eq!(
            train.get(0, "person_id").unwrap(),
            scenario.letters.get(split.train[0], "person_id").unwrap()
        );
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold(20, 4, 5).unwrap();
        assert_eq!(folds.len(), 4);
        let mut held_all: Vec<usize> = folds.iter().flat_map(|(_, h)| h.clone()).collect();
        held_all.sort_unstable();
        assert_eq!(held_all, (0..20).collect::<Vec<_>>());
        for (train, held) in &folds {
            assert_eq!(train.len() + held.len(), 20);
            for h in held {
                assert!(!train.contains(h));
            }
        }
    }

    #[test]
    fn k_fold_bounds_checked() {
        assert!(k_fold(10, 1, 0).is_err());
        assert!(k_fold(3, 5, 0).is_err());
    }
}
