//! Synthetic recommendation-letter text generation.
//!
//! The paper's hands-on session uses synthetic recommendation letters whose
//! sentiment (positive/negative) is the prediction target, encoded with a
//! sentence embedding. We substitute a deterministic phrase-sampling
//! generator: each letter concatenates sentiment-bearing phrases (drawn mostly
//! from the vocabulary of the letter's true sentiment) with neutral filler.
//! The result is text where sentiment is learnable from word statistics —
//! exactly the property the tutorial's classifier relies on.

use crate::rng::Rng;
use crate::rng::SliceRandom;

/// Sentiment of a letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sentiment {
    /// An overall supportive letter.
    Positive,
    /// An overall unsupportive letter.
    Negative,
}

impl Sentiment {
    /// Canonical string label used in tables ("positive"/"negative").
    pub fn label(self) -> &'static str {
        match self {
            Sentiment::Positive => "positive",
            Sentiment::Negative => "negative",
        }
    }

    /// Parse a canonical label.
    pub fn parse(s: &str) -> Option<Sentiment> {
        match s {
            "positive" => Some(Sentiment::Positive),
            "negative" => Some(Sentiment::Negative),
            _ => None,
        }
    }

    /// The opposite sentiment (used by label-error injection).
    pub fn flipped(self) -> Sentiment {
        match self {
            Sentiment::Positive => Sentiment::Negative,
            Sentiment::Negative => Sentiment::Positive,
        }
    }
}

pub(crate) const POSITIVE_PHRASES: &[&str] = &[
    "demonstrated exceptional dedication to every project",
    "consistently exceeded expectations in the team",
    "showed remarkable initiative and leadership",
    "earned the trust of colleagues through reliable work",
    "delivered outstanding results under pressure",
    "brought creative solutions to difficult problems",
    "meticulous attention to detail proved crucial to our success",
    "mentored junior staff with patience and generosity",
    "communicated clearly with stakeholders at all levels",
    "mastered new tools with impressive speed",
    "was a dependable and enthusiastic collaborator",
    "raised the quality bar for the entire department",
    "handled critical incidents with calm professionalism",
    "received repeated praise from clients",
    "contributed insightful analysis during planning",
    "improved our processes in lasting ways",
    "displayed integrity in every interaction",
    "volunteered for challenging assignments",
    "produced thorough and well-documented work",
    "strengthened team morale during difficult periods",
];

pub(crate) const NEGATIVE_PHRASES: &[&str] = &[
    "engaged in actions that undermined our project",
    "raised serious concerns among colleagues",
    "frequently missed important deadlines",
    "struggled to accept feedback constructively",
    "required close supervision for routine tasks",
    "caused friction within the team",
    "submitted work with recurring errors",
    "showed little interest in improving performance",
    "was often unprepared for meetings",
    "failed to communicate delays to stakeholders",
    "left critical documentation incomplete",
    "overcommitted and underdelivered repeatedly",
    "resisted adopting agreed processes",
    "displayed a dismissive attitude toward clients",
    "needed repeated reminders about responsibilities",
    "produced analysis with significant gaps",
    "was unreliable during critical incidents",
    "created confusion through inconsistent reporting",
    "missed opportunities to support junior staff",
    "expressed reluctance to take ownership of mistakes",
];

pub(crate) const NEUTRAL_PHRASES: &[&str] = &[
    "worked with us for several years",
    "was part of the platform engineering group",
    "joined during a period of organizational change",
    "participated in the quarterly planning cycle",
    "was involved in both internal and client-facing work",
    "reported to the regional office",
    "rotated across two departments",
    "attended the standard onboarding program",
    "used our established toolchain daily",
    "expressed a willingness to develop better time management skills",
    "worked on both short and long engagements",
    "was assigned to the data migration effort",
    "collaborated with the remote office occasionally",
    "followed the usual review procedures",
];

/// Generate one letter with the given sentiment.
///
/// `purity` in `[0.5, 1.0]` controls how strongly the phrase mix reflects the
/// sentiment (1.0 = all sentiment-bearing phrases match the label).
pub fn generate_letter(sentiment: Sentiment, purity: f64, rng: &mut impl Rng) -> String {
    debug_assert!((0.5..=1.0).contains(&purity));
    let n_sentiment: usize = rng.gen_range(3..=5);
    let n_neutral: usize = rng.gen_range(1..=3);
    let (own, other) = match sentiment {
        Sentiment::Positive => (POSITIVE_PHRASES, NEGATIVE_PHRASES),
        Sentiment::Negative => (NEGATIVE_PHRASES, POSITIVE_PHRASES),
    };
    let mut phrases: Vec<&str> = Vec::with_capacity(n_sentiment + n_neutral);
    for _ in 0..n_sentiment {
        let pool = if rng.gen::<f64>() < purity {
            own
        } else {
            other
        };
        phrases.push(pool.choose(rng).expect("non-empty vocabulary"));
    }
    for _ in 0..n_neutral {
        phrases.push(NEUTRAL_PHRASES.choose(rng).expect("non-empty vocabulary"));
    }
    phrases.shuffle(rng);
    let mut letter = String::with_capacity(phrases.iter().map(|p| p.len() + 16).sum());
    letter.push_str("The candidate ");
    for (i, p) in phrases.iter().enumerate() {
        if i > 0 {
            letter.push_str(if i % 2 == 0 { ", and " } else { "; they " });
        }
        letter.push_str(p);
    }
    letter.push('.');
    letter
}

/// Count of sentiment-bearing words from each vocabulary inside `text`
/// (`(positive_hits, negative_hits)`); used by tests and sanity checks.
pub fn sentiment_hits(text: &str) -> (usize, usize) {
    let pos = POSITIVE_PHRASES
        .iter()
        .filter(|p| text.contains(*p))
        .count();
    let neg = NEGATIVE_PHRASES
        .iter()
        .filter(|p| text.contains(*p))
        .count();
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn letters_lean_toward_their_sentiment() {
        let mut rng = seeded(11);
        let mut correct = 0;
        let n = 200;
        for i in 0..n {
            let s = if i % 2 == 0 {
                Sentiment::Positive
            } else {
                Sentiment::Negative
            };
            let letter = generate_letter(s, 0.9, &mut rng);
            let (pos, neg) = sentiment_hits(&letter);
            let inferred = if pos >= neg {
                Sentiment::Positive
            } else {
                Sentiment::Negative
            };
            if inferred == s {
                correct += 1;
            }
        }
        assert!(correct > n * 8 / 10, "only {correct}/{n} letters separable");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_letter(Sentiment::Positive, 0.9, &mut seeded(5));
        let b = generate_letter(Sentiment::Positive, 0.9, &mut seeded(5));
        assert_eq!(a, b);
    }

    #[test]
    fn purity_one_contains_no_cross_sentiment_phrases() {
        let mut rng = seeded(6);
        for _ in 0..50 {
            let letter = generate_letter(Sentiment::Negative, 1.0, &mut rng);
            let (pos, _neg) = sentiment_hits(&letter);
            assert_eq!(pos, 0, "positive phrase leaked into pure negative letter");
        }
    }

    #[test]
    fn sentiment_roundtrip() {
        assert_eq!(Sentiment::parse("positive"), Some(Sentiment::Positive));
        assert_eq!(Sentiment::parse("negative"), Some(Sentiment::Negative));
        assert_eq!(Sentiment::parse("meh"), None);
        assert_eq!(Sentiment::Positive.flipped(), Sentiment::Negative);
        assert_eq!(Sentiment::Negative.flipped().label(), "positive");
    }

    #[test]
    fn vocabularies_are_disjoint() {
        for p in POSITIVE_PHRASES {
            assert!(!NEGATIVE_PHRASES.contains(p));
            assert!(!NEUTRAL_PHRASES.contains(p));
        }
        for p in NEGATIVE_PHRASES {
            assert!(!NEUTRAL_PHRASES.contains(p));
        }
    }
}
