//! Error type for the data substrate.

use std::fmt;

/// Errors produced by table operations, generators and injectors.
///
/// All user-facing operations return [`crate::Result`] instead of panicking;
/// internal invariants use `debug_assert!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A column already exists and cannot be added again.
    DuplicateColumn(String),
    /// The value's type does not match the column's declared type.
    TypeMismatch {
        /// Column whose type was violated.
        column: String,
        /// Expected data type name.
        expected: &'static str,
        /// Actual value description.
        got: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// Row arity did not match the schema width.
    ArityMismatch {
        /// Expected number of values (schema width).
        expected: usize,
        /// Number of values provided.
        got: usize,
    },
    /// Two tables that must be conformant (same schema) were not.
    SchemaMismatch(String),
    /// An argument was outside its valid domain (e.g. a fraction not in `[0,1]`).
    InvalidArgument(String),
    /// CSV parsing failed.
    Csv(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::DuplicateColumn(name) => write!(f, "column `{name}` already exists"),
            DataError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, got {got}"
            ),
            DataError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds (table has {len} rows)")
            }
            DataError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            DataError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            DataError::Csv(msg) => write!(f, "csv error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::UnknownColumn("age".into());
        assert!(e.to_string().contains("age"));
        let e = DataError::TypeMismatch {
            column: "x".into(),
            expected: "Float",
            got: "Str(\"a\")".into(),
        };
        assert!(e.to_string().contains("expected Float"));
        let e = DataError::RowOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DataError::Csv("bad".into()));
    }
}
