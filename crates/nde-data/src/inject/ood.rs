//! Out-of-distribution row injection: shift numeric features of some rows.

use super::{ErrorKind, InjectionReport};
use crate::rng::{sample_indices, seeded};
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Shift every numeric (Float) cell of a random `fraction` of rows by
/// `delta` standard deviations of the respective column. This simulates
/// out-of-distribution values (e.g. records from a different population or a
/// unit-conversion bug affecting whole rows).
pub fn shift_rows(
    table: &mut Table,
    fraction: f64,
    delta: f64,
    seed: u64,
) -> Result<InjectionReport> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidArgument(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    let float_cols: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .filter(|f| f.dtype == DataType::Float)
        .map(|f| f.name.clone())
        .collect();
    if float_cols.is_empty() {
        return Err(DataError::InvalidArgument(
            "table has no Float columns to shift".into(),
        ));
    }

    // Column standard deviations over non-null values.
    let mut sds = Vec::with_capacity(float_cols.len());
    for name in &float_cols {
        let vals: Vec<f64> = table
            .column(name)?
            .to_f64_vec()
            .into_iter()
            .flatten()
            .collect();
        let sd = if vals.len() < 2 {
            1.0
        } else {
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64)
                .sqrt()
                .max(1e-9)
        };
        sds.push(sd);
    }

    let n = table.n_rows();
    let k = (n as f64 * fraction).round() as usize;
    let mut rng = seeded(seed);
    let mut affected = sample_indices(n, k, &mut rng);
    affected.sort_unstable();
    for &row in &affected {
        for (name, sd) in float_cols.iter().zip(&sds) {
            if let Some(v) = table.get(row, name)?.as_float() {
                table.set(row, name, Value::Float(v + delta * sd))?;
            }
        }
    }
    Ok(InjectionReport {
        kind: ErrorKind::OutOfDistribution,
        column: None,
        affected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::HiringScenario;

    #[test]
    fn shifts_all_float_columns_of_affected_rows() {
        let clean = HiringScenario::generate(100, 1).letters;
        let mut t = clean.clone();
        let report = shift_rows(&mut t, 0.1, 5.0, 2).unwrap();
        assert_eq!(report.affected.len(), 10);
        for &row in &report.affected {
            for col in ["employer_rating", "years_experience"] {
                let a = clean.get(row, col).unwrap().as_float();
                let b = t.get(row, col).unwrap().as_float();
                if let (Some(a), Some(b)) = (a, b) {
                    assert!(b > a, "row {row} col {col} not shifted up");
                }
            }
        }
        // Untouched rows are bit-identical.
        for row in 0..clean.n_rows() {
            if !report.is_affected(row) {
                assert_eq!(t.row(row).unwrap(), clean.row(row).unwrap());
            }
        }
    }

    #[test]
    fn preserves_nulls() {
        let mut t = HiringScenario::generate(50, 3).letters;
        t.set(0, "employer_rating", Value::Null).unwrap();
        // Force row 0 into the affected set by shifting everything.
        let report = shift_rows(&mut t, 1.0, 3.0, 4).unwrap();
        assert!(report.is_affected(0));
        assert!(t.get(0, "employer_rating").unwrap().is_null());
    }

    #[test]
    fn validates() {
        let mut t = HiringScenario::generate(10, 5).letters;
        assert!(shift_rows(&mut t, -0.5, 1.0, 0).is_err());
        let mut no_floats = t.select(&["person_id", "letter_text"]).unwrap();
        assert!(shift_rows(&mut no_floats, 0.1, 1.0, 0).is_err());
    }
}
