//! Duplicate-row injection.

use super::{ErrorKind, InjectionReport};
use crate::rng::{sample_indices, seeded};
use crate::table::Table;
use crate::{DataError, Result};

/// Append duplicates of a random `fraction` of rows to the table.
///
/// Duplicated rows are a classic silent data error: they skew class balances
/// and can leak between train/test splits. The report's `affected` lists the
/// indices of the *appended copies* (the tail of the mutated table).
pub fn duplicate_rows(table: &mut Table, fraction: f64, seed: u64) -> Result<InjectionReport> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidArgument(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    let n = table.n_rows();
    let k = (n as f64 * fraction).round() as usize;
    let mut rng = seeded(seed);
    let sources = sample_indices(n, k, &mut rng);
    let copies = table.take(&sources)?;
    table.append(&copies)?;
    Ok(InjectionReport {
        kind: ErrorKind::Duplicate,
        column: None,
        affected: (n..n + k).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::HiringScenario;

    #[test]
    fn appends_exact_copies() {
        let clean = HiringScenario::generate(100, 1).letters;
        let mut t = clean.clone();
        let report = duplicate_rows(&mut t, 0.1, 2).unwrap();
        assert_eq!(t.n_rows(), 110);
        assert_eq!(report.affected, (100..110).collect::<Vec<_>>());
        // Every appended row is identical to some original row.
        for &copy in &report.affected {
            let row = t.row(copy).unwrap();
            let found = (0..100).any(|i| t.row(i).unwrap() == row);
            assert!(found, "appended row {copy} has no original");
        }
    }

    #[test]
    fn zero_fraction_noop_and_validation() {
        let mut t = HiringScenario::generate(20, 3).letters;
        let report = duplicate_rows(&mut t, 0.0, 1).unwrap();
        assert_eq!(t.n_rows(), 20);
        assert!(report.affected.is_empty());
        assert!(duplicate_rows(&mut t, 1.2, 1).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let clean = HiringScenario::generate(40, 4).letters;
        let mut a = clean.clone();
        let mut b = clean.clone();
        duplicate_rows(&mut a, 0.25, 9).unwrap();
        duplicate_rows(&mut b, 0.25, 9).unwrap();
        assert_eq!(a, b);
    }
}
