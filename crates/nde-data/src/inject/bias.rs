//! Selection-bias injection: biased subsampling of a table.

use super::{ErrorKind, InjectionReport};
use crate::rng::seeded;
use crate::rng::Rng;
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Produce a biased subsample of `table`: rows whose `group_col` equals
/// `group_value` are kept only with probability `keep_prob` (others always
/// kept). This models the under-representation biases of §2.3 (e.g. a
/// demographic group undersampled in training data).
///
/// Returns the biased table, the kept original row indices, and a report
/// whose `affected` lists the *dropped* original rows.
pub fn selection_bias(
    table: &Table,
    group_col: &str,
    group_value: &Value,
    keep_prob: f64,
    seed: u64,
) -> Result<(Table, Vec<usize>, InjectionReport)> {
    if !(0.0..=1.0).contains(&keep_prob) {
        return Err(DataError::InvalidArgument(format!(
            "keep_prob must be in [0,1], got {keep_prob}"
        )));
    }
    let col = table.column(group_col)?;
    let mut rng = seeded(seed);
    let mut kept = Vec::with_capacity(table.n_rows());
    let mut dropped = Vec::new();
    for row in 0..table.n_rows() {
        let v = col.get(row).expect("in bounds");
        let in_group = v.total_cmp(group_value) == std::cmp::Ordering::Equal
            && v.data_type() == group_value.data_type();
        if in_group && rng.gen::<f64>() >= keep_prob {
            dropped.push(row);
        } else {
            kept.push(row);
        }
    }
    let biased = table.take(&kept)?;
    Ok((
        biased,
        kept,
        InjectionReport {
            kind: ErrorKind::SelectionBias,
            column: Some(group_col.to_owned()),
            affected: dropped,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::{HiringScenario, LABEL_COLUMN};

    #[test]
    fn drops_only_group_rows() {
        let t = HiringScenario::generate(300, 1).letters;
        let (biased, kept, report) =
            selection_bias(&t, LABEL_COLUMN, &Value::Str("negative".into()), 0.3, 2).unwrap();
        assert_eq!(biased.n_rows(), kept.len());
        assert_eq!(kept.len() + report.affected.len(), t.n_rows());
        for &row in &report.affected {
            assert_eq!(
                t.get(row, LABEL_COLUMN).unwrap(),
                Value::Str("negative".into())
            );
        }
        // The negative class is now under-represented.
        let neg_before = t
            .value_counts(LABEL_COLUMN)
            .unwrap()
            .iter()
            .find(|(v, _)| v.as_str() == Some("negative"))
            .map(|(_, c)| *c)
            .unwrap();
        let neg_after = biased
            .value_counts(LABEL_COLUMN)
            .unwrap()
            .iter()
            .find(|(v, _)| v.as_str() == Some("negative"))
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(neg_after * 2 < neg_before, "{neg_after} vs {neg_before}");
    }

    #[test]
    fn keep_prob_one_is_identity() {
        let t = HiringScenario::generate(50, 3).letters;
        let (biased, kept, report) =
            selection_bias(&t, LABEL_COLUMN, &Value::Str("positive".into()), 1.0, 4).unwrap();
        assert_eq!(biased.n_rows(), t.n_rows());
        assert_eq!(kept, (0..t.n_rows()).collect::<Vec<_>>());
        assert!(report.affected.is_empty());
    }

    #[test]
    fn keep_prob_zero_removes_group_entirely() {
        let t = HiringScenario::generate(80, 5).letters;
        let (biased, _, _) =
            selection_bias(&t, LABEL_COLUMN, &Value::Str("positive".into()), 0.0, 6).unwrap();
        for i in 0..biased.n_rows() {
            assert_eq!(
                biased.get(i, LABEL_COLUMN).unwrap(),
                Value::Str("negative".into())
            );
        }
    }

    #[test]
    fn validates_arguments() {
        let t = HiringScenario::generate(10, 7).letters;
        assert!(selection_bias(&t, LABEL_COLUMN, &Value::Str("x".into()), 1.5, 0).is_err());
        assert!(selection_bias(&t, "nope", &Value::Str("x".into()), 0.5, 0).is_err());
    }
}
