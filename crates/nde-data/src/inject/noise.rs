//! Numeric noise and outlier injection.

use super::{ErrorKind, InjectionReport};
use crate::rng::Rng;
use crate::rng::{normal, sample_indices, seeded};
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Add zero-mean Gaussian noise with standard deviation `sigma` to a random
/// `fraction` of the non-null values in a numeric column.
pub fn add_gaussian_noise(
    table: &mut Table,
    column: &str,
    fraction: f64,
    sigma: f64,
    seed: u64,
) -> Result<InjectionReport> {
    validate(table, column, fraction)?;
    if sigma < 0.0 {
        return Err(DataError::InvalidArgument("sigma must be >= 0".into()));
    }
    let candidates = non_null_rows(table, column)?;
    let k = (candidates.len() as f64 * fraction).round() as usize;
    let mut rng = seeded(seed);
    let picked = sample_indices(candidates.len(), k, &mut rng);
    let mut affected: Vec<usize> = picked.iter().map(|&i| candidates[i]).collect();
    affected.sort_unstable();
    for &row in &affected {
        let v = table
            .get(row, column)?
            .as_float()
            .expect("candidates are non-null numeric");
        table.set(row, column, Value::Float(v + sigma * normal(&mut rng)))?;
    }
    Ok(InjectionReport {
        kind: ErrorKind::Noise { sigma },
        column: Some(column.to_owned()),
        affected,
    })
}

/// Replace a random `fraction` of the non-null values in a numeric column by
/// extreme outliers: `median ± scale * IQR-ish spread`, sign chosen randomly.
pub fn inject_outliers(
    table: &mut Table,
    column: &str,
    fraction: f64,
    scale: f64,
    seed: u64,
) -> Result<InjectionReport> {
    validate(table, column, fraction)?;
    if scale <= 0.0 {
        return Err(DataError::InvalidArgument("scale must be > 0".into()));
    }
    let candidates = non_null_rows(table, column)?;
    let mut values: Vec<f64> = candidates
        .iter()
        .map(|&r| {
            table
                .get(r, column)
                .expect("row in bounds")
                .as_float()
                .expect("non-null numeric")
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = values[values.len() / 2];
    let spread = (values[values.len() * 3 / 4] - values[values.len() / 4]).max(1e-9);

    let k = (candidates.len() as f64 * fraction).round() as usize;
    let mut rng = seeded(seed);
    let picked = sample_indices(candidates.len(), k, &mut rng);
    let mut affected: Vec<usize> = picked.iter().map(|&i| candidates[i]).collect();
    affected.sort_unstable();
    for &row in &affected {
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        let magnitude = scale * spread * (1.0 + rng.gen::<f64>());
        table.set(row, column, Value::Float(median + sign * magnitude))?;
    }
    Ok(InjectionReport {
        kind: ErrorKind::Outlier,
        column: Some(column.to_owned()),
        affected,
    })
}

fn validate(table: &Table, column: &str, fraction: f64) -> Result<()> {
    table.schema().index_of(column)?;
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidArgument(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    Ok(())
}

fn non_null_rows(table: &Table, column: &str) -> Result<Vec<usize>> {
    let values = table.column(column)?.to_f64_vec();
    let rows: Vec<usize> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|_| i))
        .collect();
    if rows.is_empty() {
        return Err(DataError::InvalidArgument(format!(
            "column `{column}` has no non-null numeric values"
        )));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::HiringScenario;

    #[test]
    fn noise_changes_only_reported_rows() {
        let clean = HiringScenario::generate(150, 1).letters;
        let mut t = clean.clone();
        let report = add_gaussian_noise(&mut t, "employer_rating", 0.2, 3.0, 5).unwrap();
        assert_eq!(report.affected.len(), 30);
        for i in 0..t.n_rows() {
            let a = clean.get(i, "employer_rating").unwrap();
            let b = t.get(i, "employer_rating").unwrap();
            if report.is_affected(i) {
                assert_ne!(a, b, "row {i} should have been perturbed");
            } else {
                assert_eq!(a, b, "row {i} should be untouched");
            }
        }
    }

    #[test]
    fn outliers_are_extreme() {
        let clean = HiringScenario::generate(200, 2).letters;
        let mut t = clean.clone();
        let report = inject_outliers(&mut t, "employer_rating", 0.1, 10.0, 6).unwrap();
        // Clean ratings live in [0, 10]; scale-10 outliers must leave that range.
        for &row in &report.affected {
            let v = t.get(row, "employer_rating").unwrap().as_float().unwrap();
            assert!(!(0.0..=10.0).contains(&v), "outlier {v} not extreme");
        }
    }

    #[test]
    fn zero_sigma_noise_keeps_values() {
        let clean = HiringScenario::generate(50, 3).letters;
        let mut t = clean.clone();
        add_gaussian_noise(&mut t, "employer_rating", 0.5, 0.0, 7).unwrap();
        for i in 0..t.n_rows() {
            assert_eq!(
                t.get(i, "employer_rating").unwrap(),
                clean.get(i, "employer_rating").unwrap()
            );
        }
    }

    #[test]
    fn arguments_validated() {
        let mut t = HiringScenario::generate(20, 4).letters;
        assert!(add_gaussian_noise(&mut t, "employer_rating", -0.1, 1.0, 0).is_err());
        assert!(add_gaussian_noise(&mut t, "employer_rating", 0.1, -1.0, 0).is_err());
        assert!(add_gaussian_noise(&mut t, "nope", 0.1, 1.0, 0).is_err());
        assert!(inject_outliers(&mut t, "employer_rating", 0.1, 0.0, 0).is_err());
        // String columns have no numeric values.
        assert!(add_gaussian_noise(&mut t, "letter_text", 0.1, 1.0, 0).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let clean = HiringScenario::generate(80, 5).letters;
        let mut a = clean.clone();
        let mut b = clean.clone();
        let ra = inject_outliers(&mut a, "years_experience", 0.2, 5.0, 11).unwrap();
        let rb = inject_outliers(&mut b, "years_experience", 0.2, 5.0, 11).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }
}
