//! Label-error injection (Fig. 2 of the paper).

use super::{ErrorKind, InjectionReport};
use crate::rng::SliceRandom;
use crate::rng::{sample_indices, seeded};
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Flip the labels of a random `fraction` of rows to a *different* class.
///
/// The label column must be a string column; the set of classes is the set of
/// distinct non-null values observed in it. Mutates `table` in place and
/// returns the ground-truth report. With two classes this is a deterministic
/// flip; with more, a uniformly random wrong class is chosen.
pub fn flip_labels(
    table: &mut Table,
    label_col: &str,
    fraction: f64,
    seed: u64,
) -> Result<InjectionReport> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidArgument(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    let classes: Vec<String> = {
        let counts = table.value_counts(label_col)?;
        counts
            .into_iter()
            .filter_map(|(v, _)| v.as_str().map(str::to_owned))
            .collect()
    };
    if classes.len() < 2 {
        return Err(DataError::InvalidArgument(format!(
            "label column `{label_col}` has {} distinct classes; need >= 2",
            classes.len()
        )));
    }

    let n = table.n_rows();
    let k = (n as f64 * fraction).round() as usize;
    let mut rng = seeded(seed);
    let mut affected = sample_indices(n, k, &mut rng);
    affected.sort_unstable();

    for &row in &affected {
        let current = table.get(row, label_col)?;
        let current_str = current.as_str().unwrap_or("");
        let wrong: Vec<&String> = classes
            .iter()
            .filter(|c| c.as_str() != current_str)
            .collect();
        let new = (*wrong.choose(&mut rng).expect(">=2 classes")).clone();
        table.set(row, label_col, Value::Str(new))?;
    }

    Ok(InjectionReport {
        kind: ErrorKind::LabelFlip,
        column: Some(label_col.to_owned()),
        affected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::{HiringScenario, LABEL_COLUMN};

    #[test]
    fn flips_exactly_the_requested_fraction() {
        let scenario = HiringScenario::generate(200, 1);
        let mut dirty = scenario.letters.clone();
        let report = flip_labels(&mut dirty, LABEL_COLUMN, 0.1, 42).unwrap();
        assert_eq!(report.affected.len(), 20);
        let mut changed = 0;
        for i in 0..dirty.n_rows() {
            if dirty.get(i, LABEL_COLUMN).unwrap() != scenario.letters.get(i, LABEL_COLUMN).unwrap()
            {
                changed += 1;
                assert!(report.is_affected(i), "row {i} changed but not reported");
            }
        }
        assert_eq!(changed, 20);
    }

    #[test]
    fn flipped_labels_are_valid_classes() {
        let scenario = HiringScenario::generate(100, 2);
        let mut dirty = scenario.letters.clone();
        flip_labels(&mut dirty, LABEL_COLUMN, 0.3, 7).unwrap();
        for i in 0..dirty.n_rows() {
            let l = dirty.get(i, LABEL_COLUMN).unwrap();
            let s = l.as_str().unwrap();
            assert!(s == "positive" || s == "negative", "bad label {s}");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let scenario = HiringScenario::generate(100, 3);
        let mut a = scenario.letters.clone();
        let mut b = scenario.letters.clone();
        let ra = flip_labels(&mut a, LABEL_COLUMN, 0.2, 5).unwrap();
        let rb = flip_labels(&mut b, LABEL_COLUMN, 0.2, 5).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let scenario = HiringScenario::generate(20, 4);
        let mut t = scenario.letters.clone();
        assert!(flip_labels(&mut t, LABEL_COLUMN, 1.5, 1).is_err());
        assert!(flip_labels(&mut t, "no_such_col", 0.1, 1).is_err());
        // A single-class column cannot be flipped.
        let mut t2 = scenario.letters.clone();
        for i in 0..t2.n_rows() {
            t2.set(i, LABEL_COLUMN, Value::Str("positive".into()))
                .unwrap();
        }
        assert!(flip_labels(&mut t2, LABEL_COLUMN, 0.1, 1).is_err());
    }

    #[test]
    fn zero_fraction_is_a_noop() {
        let scenario = HiringScenario::generate(50, 5);
        let mut t = scenario.letters.clone();
        let report = flip_labels(&mut t, LABEL_COLUMN, 0.0, 1).unwrap();
        assert!(report.affected.is_empty());
        assert_eq!(t, scenario.letters);
    }
}
