//! Synthetic data-error injection.
//!
//! The hands-on session injects *known* errors (label flips, missing values,
//! noise) into clean data and then measures how well the debugging tools find
//! them (paper §3.1, Figs. 2 & 4). Every injector here returns an
//! [`InjectionReport`] recording exactly which rows were corrupted so that
//! detection quality (precision@k etc.) can be evaluated against ground truth.

pub mod bias;
pub mod duplicates;
pub mod labels;
pub mod missing;
pub mod noise;
pub mod ood;

pub use bias::selection_bias;
pub use duplicates::duplicate_rows;
pub use labels::flip_labels;
pub use missing::{inject_missing, Missingness};
pub use noise::{add_gaussian_noise, inject_outliers};
pub use ood::shift_rows;

/// The kind of error an injector introduced.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// Class labels replaced by a wrong class.
    LabelFlip,
    /// Values removed under a missingness mechanism.
    Missing(Missingness),
    /// Gaussian noise added to numeric values.
    Noise {
        /// Standard deviation of the added noise.
        sigma: f64,
    },
    /// Values replaced by extreme outliers.
    Outlier,
    /// Rows dropped according to a biased sampling rule.
    SelectionBias,
    /// Rows duplicated.
    Duplicate,
    /// Rows shifted out of distribution.
    OutOfDistribution,
}

/// Ground-truth record of an injection: which rows were touched and how.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionReport {
    /// What was injected.
    pub kind: ErrorKind,
    /// Column affected, if the error is column-scoped.
    pub column: Option<String>,
    /// Row indices (in the *output* table) that carry the error. For
    /// [`ErrorKind::SelectionBias`] these are the rows that were *dropped*
    /// (indices into the input table).
    pub affected: Vec<usize>,
}

impl InjectionReport {
    /// `true` iff `row` carries the injected error.
    pub fn is_affected(&self, row: usize) -> bool {
        self.affected.contains(&row)
    }

    /// Affected rows as a hash set, for O(1) membership checks in evaluation.
    pub fn affected_set(&self) -> crate::fxhash::FxHashSet<usize> {
        self.affected.iter().copied().collect()
    }
}
