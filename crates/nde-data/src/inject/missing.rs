//! Missing-value injection under MCAR / MAR / MNAR mechanisms (Fig. 4).

use super::{ErrorKind, InjectionReport};
use crate::rng::seeded;
use crate::rng::Rng;
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// The missingness mechanism controlling *which* cells go missing.
#[derive(Debug, Clone, PartialEq)]
pub enum Missingness {
    /// Missing Completely At Random: every row equally likely.
    Mcar,
    /// Missing At Random: the missingness probability depends on another
    /// (fully observed) column — rows above that column's median are
    /// `skew`-times more likely to lose the target value.
    Mar {
        /// The observed column driving missingness.
        cond_column: String,
        /// Odds multiplier for rows above the median (≥ 1).
        skew: f64,
    },
    /// Missing Not At Random: the probability depends on the value *itself* —
    /// values above the column median are `skew`-times more likely to go
    /// missing (e.g. bad employer ratings withheld). This is the mechanism
    /// used in the paper's Fig. 4 (`missingness="MNAR"`).
    Mnar {
        /// Odds multiplier for above-median values (≥ 1).
        skew: f64,
    },
}

impl Missingness {
    /// Short display name ("MCAR"/"MAR"/"MNAR").
    pub fn name(&self) -> &'static str {
        match self {
            Missingness::Mcar => "MCAR",
            Missingness::Mar { .. } => "MAR",
            Missingness::Mnar { .. } => "MNAR",
        }
    }
}

/// Remove approximately `fraction` of the values in `column` according to the
/// given mechanism. Returns the ground-truth report of nulled rows.
///
/// The exact count is `round(n * fraction)`; the *which-rows* distribution
/// follows the mechanism by weighted sampling without replacement.
pub fn inject_missing(
    table: &mut Table,
    column: &str,
    fraction: f64,
    mechanism: Missingness,
    seed: u64,
) -> Result<InjectionReport> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DataError::InvalidArgument(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    let n = table.n_rows();
    let k = (n as f64 * fraction).round() as usize;

    // Per-row weights under the mechanism.
    let weights: Vec<f64> = match &mechanism {
        Missingness::Mcar => vec![1.0; n],
        Missingness::Mar { cond_column, skew } => {
            if *skew < 1.0 {
                return Err(DataError::InvalidArgument("MAR skew must be >= 1".into()));
            }
            weights_above_median(table, cond_column, *skew)?
        }
        Missingness::Mnar { skew } => {
            if *skew < 1.0 {
                return Err(DataError::InvalidArgument("MNAR skew must be >= 1".into()));
            }
            weights_above_median(table, column, *skew)?
        }
    };
    // Validate target column exists before mutating.
    table.schema().index_of(column)?;

    let mut rng = seeded(seed);
    let mut affected = weighted_sample_without_replacement(&weights, k, &mut rng);
    affected.sort_unstable();
    for &row in &affected {
        table.set(row, column, Value::Null)?;
    }
    Ok(InjectionReport {
        kind: ErrorKind::Missing(mechanism),
        column: Some(column.to_owned()),
        affected,
    })
}

/// Weight of `skew` for rows whose `col` value is above the column median
/// (computed over non-null numeric values), 1.0 otherwise. Null cells get the
/// baseline weight.
fn weights_above_median(table: &Table, col: &str, skew: f64) -> Result<Vec<f64>> {
    let values = table.column(col)?.to_f64_vec();
    let mut present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
    if present.is_empty() {
        return Err(DataError::InvalidArgument(format!(
            "column `{col}` has no numeric values to condition on"
        )));
    }
    present.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in columns"));
    let median = present[present.len() / 2];
    Ok(values
        .iter()
        .map(|v| match v {
            Some(x) if *x > median => skew,
            _ => 1.0,
        })
        .collect())
}

/// Weighted sampling of `k` distinct indices via the Efraimidis–Spirakis
/// exponential-jitter method: key = u^(1/w), take the k largest keys.
fn weighted_sample_without_replacement(
    weights: &[f64],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            (u.powf(1.0 / w.max(f64::MIN_POSITIVE)), i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    keyed.into_iter().take(k).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::hiring::HiringScenario;

    #[test]
    fn mcar_nulls_exact_count() {
        let mut t = HiringScenario::generate(200, 1).letters;
        let before = t.column("employer_rating").unwrap().null_count();
        let report = inject_missing(&mut t, "employer_rating", 0.15, Missingness::Mcar, 3).unwrap();
        assert_eq!(report.affected.len(), 30);
        let after = t.column("employer_rating").unwrap().null_count();
        assert_eq!(after - before, 30);
        for &row in &report.affected {
            assert!(t.get(row, "employer_rating").unwrap().is_null());
        }
    }

    #[test]
    fn mnar_prefers_above_median_values() {
        let clean = HiringScenario::generate(400, 2).letters;
        let mut present: Vec<f64> = (0..clean.n_rows())
            .filter_map(|i| clean.get(i, "employer_rating").unwrap().as_float())
            .collect();
        present.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = present[present.len() / 2];

        let mut t = clean.clone();
        let report = inject_missing(
            &mut t,
            "employer_rating",
            0.2,
            Missingness::Mnar { skew: 8.0 },
            4,
        )
        .unwrap();
        let above = report
            .affected
            .iter()
            .filter(|&&row| {
                clean
                    .get(row, "employer_rating")
                    .unwrap()
                    .as_float()
                    .map(|v| v > median)
                    .unwrap_or(false)
            })
            .count();
        // With skew 8, far more than half of the nulled cells are above-median.
        assert!(
            above * 10 > report.affected.len() * 6,
            "above={above}/{}",
            report.affected.len()
        );
    }

    #[test]
    fn mar_conditions_on_other_column() {
        let clean = HiringScenario::generate(400, 5).letters;
        let mut t = clean.clone();
        let report = inject_missing(
            &mut t,
            "employer_rating",
            0.2,
            Missingness::Mar {
                cond_column: "years_experience".into(),
                skew: 8.0,
            },
            6,
        )
        .unwrap();
        let mut years: Vec<f64> = (0..clean.n_rows())
            .filter_map(|i| clean.get(i, "years_experience").unwrap().as_float())
            .collect();
        years.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = years[years.len() / 2];
        let above = report
            .affected
            .iter()
            .filter(|&&row| {
                clean
                    .get(row, "years_experience")
                    .unwrap()
                    .as_float()
                    .map(|v| v > median)
                    .unwrap_or(false)
            })
            .count();
        assert!(above * 10 > report.affected.len() * 6, "above={above}");
    }

    #[test]
    fn deterministic_and_validated() {
        let clean = HiringScenario::generate(100, 7).letters;
        let mut a = clean.clone();
        let mut b = clean.clone();
        let ra = inject_missing(&mut a, "degree", 0.1, Missingness::Mcar, 9).unwrap();
        let rb = inject_missing(&mut b, "degree", 0.1, Missingness::Mcar, 9).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);

        let mut t = clean.clone();
        assert!(inject_missing(&mut t, "degree", 2.0, Missingness::Mcar, 0).is_err());
        assert!(inject_missing(&mut t, "nope", 0.1, Missingness::Mcar, 0).is_err());
        assert!(inject_missing(&mut t, "degree", 0.1, Missingness::Mnar { skew: 0.5 }, 0).is_err());
        // MNAR on a non-numeric column cannot compute a median.
        assert!(inject_missing(&mut t, "degree", 0.1, Missingness::Mnar { skew: 2.0 }, 0).is_err());
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = seeded(1);
        let weights = vec![1.0, 1.0, 100.0, 1.0];
        let mut hits = [0usize; 4];
        for _ in 0..200 {
            let s = weighted_sample_without_replacement(&weights, 1, &mut rng);
            hits[s[0]] += 1;
        }
        assert!(hits[2] > 150, "hits={hits:?}");
    }
}
