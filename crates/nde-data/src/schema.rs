//! Schemas: ordered collections of named, typed fields.

use crate::error::DataError;
use crate::Result;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Static name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Bool => "Bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields, checking name uniqueness.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.clone()) {
                return Err(DataError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_owned()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// `true` iff a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// Append a field, enforcing name uniqueness.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.contains(&field.name) {
            return Err(DataError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Names of all fields, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_lookup() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field("c").unwrap().dtype, DataType::Float);
        assert!(s.contains("a"));
        assert!(!s.contains("z"));
        assert!(matches!(s.index_of("z"), Err(DataError::UnknownColumn(_))));
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
        assert!(matches!(err, Err(DataError::DuplicateColumn(_))));

        let mut s = abc();
        assert!(s.push(Field::new("a", DataType::Bool)).is_err());
        assert!(s.push(Field::new("d", DataType::Bool)).is_ok());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn names_in_order() {
        assert_eq!(abc().names(), vec!["a", "b", "c"]);
    }
}
