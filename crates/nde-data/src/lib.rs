//! # nde-data
//!
//! Data substrate for the *navigating-data-errors* toolkit: a small columnar
//! table engine, deterministic synthetic data generators for the tutorial's
//! hiring scenario, and a library of **data error injectors** (label flips,
//! MCAR/MAR/MNAR missingness, noise, outliers, selection bias, duplicates,
//! out-of-distribution rows).
//!
//! Everything is deterministic: every stochastic routine takes an explicit
//! seed, so experiments are exactly reproducible.
//!
//! ```
//! use nde_data::generate::hiring::HiringScenario;
//! let scenario = HiringScenario::generate(200, 42);
//! assert_eq!(scenario.letters.n_rows(), 200);
//! ```

pub mod backend;
pub mod column;
pub mod csvio;
pub mod dict;
pub mod error;
pub mod fxhash;
pub mod generate;
pub mod inject;
pub mod json;
pub mod par;
pub mod planes;
pub mod pool;
pub mod rng;
pub mod schema;
pub mod table;
pub mod value;

pub use backend::{BackendKind, TableBackend};
pub use column::Column;
pub use dict::Dict;
pub use error::DataError;
pub use schema::{DataType, Field, Schema};
pub use table::{join_key_matches, Table};
pub use value::{Value, ValueRef};

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, DataError>;
