//! A small in-tree implementation of the Fx hash algorithm (as used by rustc).
//!
//! Provenance tracking and join processing hash millions of small integer
//! keys; SipHash (the std default) is needlessly slow for that workload and
//! HashDoS resistance is irrelevant for in-process analytics. This module
//! provides drop-in [`FxHashMap`] / [`FxHashSet`] aliases without pulling in
//! an external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: a fast, non-cryptographic hasher for small keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` using the fast Fx hash; use for hot integer-keyed maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the fast Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64` with the Fx algorithm (useful for feature hashing).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a byte string with the Fx algorithm (useful for feature hashing).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_bytes(b"letter"), hash_bytes(b"letter"));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        // Tail handling must distinguish lengths even with shared prefix bytes.
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<usize> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }

    #[test]
    fn spread_is_reasonable() {
        // Sequential keys should land in many distinct buckets of a 256-way table.
        let mut buckets = [0u32; 256];
        for i in 0..4096u64 {
            buckets[(hash_u64(i) >> 56) as usize] += 1;
        }
        let occupied = buckets.iter().filter(|&&c| c > 0).count();
        assert!(occupied > 200, "only {occupied} buckets occupied");
    }
}
