//! Minimal CSV reading and writing for tables.
//!
//! RFC-4180-style: quoting with `"` (doubled quotes escape), quoted fields
//! may span newlines, typed parsing against a schema. Nulls are written as
//! *unquoted* empty fields; the empty string is written as `""` so the two
//! round-trip distinctly.

use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::{Value, ValueRef};
use crate::{DataError, Result};
use std::io::{Read, Write};

/// Write a table as CSV (header row, RFC-4180 quoting, `Null` as an unquoted
/// empty field, `Str("")` as a quoted empty field).
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> std::io::Result<()> {
    let names = table.schema().names();
    writeln!(
        out,
        "{}",
        names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(",")
    )?;
    for row in 0..table.n_rows() {
        let mut parts = Vec::with_capacity(table.n_cols());
        for ci in 0..table.n_cols() {
            let v = table.value_ref_at(row, ci).expect("in bounds");
            parts.push(match v {
                ValueRef::Null => String::new(),
                ValueRef::Str(s) => quote(s),
                ValueRef::Int(x) => x.to_string(),
                ValueRef::Float(x) => x.to_string(),
                ValueRef::Bool(b) => b.to_string(),
            });
        }
        writeln!(out, "{}", parts.join(","))?;
    }
    Ok(())
}

/// One parsed CSV field: its text plus whether it was quoted (needed to
/// distinguish `Null` from the empty string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvField {
    /// The field's unescaped text.
    pub text: String,
    /// `true` iff the field was written with surrounding quotes.
    pub quoted: bool,
}

/// Read a CSV with a header row into a table using the given schema.
///
/// The header must match the schema's column names exactly (order included).
pub fn read_csv<R: Read>(name: &str, schema: Schema, mut input: R) -> Result<Table> {
    let mut text = String::new();
    input
        .read_to_string(&mut text)
        .map_err(|e| DataError::Csv(e.to_string()))?;
    let mut records = parse_records(&text)?;
    if records.is_empty() {
        return Err(DataError::Csv("empty input".into()));
    }
    let header: Vec<String> = records.remove(0).into_iter().map(|f| f.text).collect();
    let expected: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    if header != expected {
        return Err(DataError::Csv(format!(
            "header mismatch: expected {expected:?}, got {header:?}"
        )));
    }

    let mut table = Table::empty(name, schema);
    for (recno, fields) in records.into_iter().enumerate() {
        if fields.len() != table.n_cols() {
            return Err(DataError::Csv(format!(
                "record {}: expected {} fields, got {}",
                recno + 2,
                table.n_cols(),
                fields.len()
            )));
        }
        let row: Result<Vec<Value>> = fields
            .iter()
            .zip(table.schema().fields().to_vec())
            .map(|(raw, f)| parse_value(raw, &f))
            .collect();
        table.push_row(row?)?;
    }
    Ok(table)
}

fn parse_value(raw: &CsvField, field: &Field) -> Result<Value> {
    if raw.text.is_empty() && !raw.quoted {
        return Ok(Value::Null);
    }
    let err = |raw: &str| DataError::Csv(format!("cannot parse `{raw}` as {}", field.dtype));
    Ok(match field.dtype {
        DataType::Int => Value::Int(raw.text.parse().map_err(|_| err(&raw.text))?),
        DataType::Float => Value::Float(raw.text.parse().map_err(|_| err(&raw.text))?),
        DataType::Str => Value::Str(raw.text.clone()),
        DataType::Bool => match raw.text.as_str() {
            "true" | "True" | "1" => Value::Bool(true),
            "false" | "False" | "0" => Value::Bool(false),
            _ => return Err(err(&raw.text)),
        },
    })
}

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parse a full CSV text into records, honoring quoted fields that contain
/// commas, doubled quotes and newlines. Records are separated by `\n` or
/// `\r\n` outside quotes; a trailing newline does not produce an empty
/// record, and fully empty lines are skipped.
pub fn parse_records(text: &str) -> Result<Vec<Vec<CsvField>>> {
    let mut records = Vec::new();
    let mut record: Vec<CsvField> = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any_field_content = false;

    let flush_field = |record: &mut Vec<CsvField>, cur: &mut String, quoted: &mut bool| {
        record.push(CsvField {
            text: std::mem::take(cur),
            quoted: *quoted,
        });
        *quoted = false;
    };

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    cur_quoted = true;
                    any_field_content = true;
                }
                ',' => {
                    flush_field(&mut record, &mut cur, &mut cur_quoted);
                    any_field_content = true;
                }
                '\r' => {
                    // Swallow; the following '\n' (if any) ends the record.
                }
                '\n' => {
                    if any_field_content || !cur.is_empty() || !record.is_empty() {
                        flush_field(&mut record, &mut cur, &mut cur_quoted);
                        records.push(std::mem::take(&mut record));
                    }
                    any_field_content = false;
                }
                _ => {
                    cur.push(c);
                    any_field_content = true;
                }
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv("unterminated quoted field".into()));
    }
    if any_field_content || !cur.is_empty() || !record.is_empty() {
        flush_field(&mut record, &mut cur, &mut cur_quoted);
        records.push(record);
    }
    Ok(records)
}

/// Round-trip a table through CSV text (useful in tests and snapshots).
pub fn to_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::empty(
            "s",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("note", DataType::Str),
                Field::new("score", DataType::Float),
                Field::new("ok", DataType::Bool),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "plain".into(), 0.5.into(), true.into()])
            .unwrap();
        t.push_row(vec![
            2.into(),
            "has, comma".into(),
            Value::Null,
            false.into(),
        ])
        .unwrap();
        t.push_row(vec![
            3.into(),
            "has \"quote\"".into(),
            (-1.25).into(),
            Value::Null,
        ])
        .unwrap();
        t.push_row(vec![4.into(), "".into(), 1.0.into(), true.into()])
            .unwrap();
        t.push_row(vec![
            5.into(),
            "line\nbreak".into(),
            2.0.into(),
            false.into(),
        ])
        .unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_values() {
        let t = sample();
        let csv = to_csv_string(&t);
        let back = read_csv("s", t.schema().clone(), csv.as_bytes()).unwrap();
        assert_eq!(back.n_rows(), t.n_rows());
        for row in 0..t.n_rows() {
            assert_eq!(back.row(row).unwrap(), t.row(row).unwrap());
        }
    }

    #[test]
    fn quoting_rules() {
        let csv = to_csv_string(&sample());
        assert!(csv.contains("\"has, comma\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
        assert!(csv.contains("\"line\nbreak\""));
    }

    #[test]
    fn null_and_empty_string_are_distinct() {
        let csv = to_csv_string(&sample());
        // Row 2's score is Null: unquoted empty. Row 4's note is "": quoted.
        assert!(csv.contains(",,"));
        assert!(csv.contains("\"\""));
        let back = read_csv("s", sample().schema().clone(), csv.as_bytes()).unwrap();
        assert_eq!(back.get(1, "score").unwrap(), Value::Null);
        assert_eq!(back.get(3, "note").unwrap(), Value::Str(String::new()));
    }

    #[test]
    fn header_mismatch_rejected() {
        let t = sample();
        let wrong = Schema::new(vec![Field::new("zz", DataType::Int)]).unwrap();
        let err = read_csv("s", wrong, to_csv_string(&t).as_bytes());
        assert!(matches!(err, Err(DataError::Csv(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int)]).unwrap();
        let err = read_csv("s", schema, "id\nnot_a_number\n".as_bytes());
        assert!(matches!(err, Err(DataError::Csv(_))));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_records("a,\"unterminated").is_err());
    }

    #[test]
    fn multiline_quoted_field_parses_as_one_record() {
        let recs = parse_records("a,\"x\ny\"\nb,c\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0][1].text, "x\ny");
        assert!(recs[0][1].quoted);
        assert_eq!(recs[1][0].text, "b");
    }

    #[test]
    fn bool_parsing_variants() {
        let schema = Schema::new(vec![Field::new("b", DataType::Bool)]).unwrap();
        let t = read_csv("s", schema, "b\ntrue\n0\nTrue\n".as_bytes()).unwrap();
        assert_eq!(t.get(0, "b").unwrap(), Value::Bool(true));
        assert_eq!(t.get(1, "b").unwrap(), Value::Bool(false));
        assert_eq!(t.get(2, "b").unwrap(), Value::Bool(true));
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap();
        let t = read_csv("s", schema, "a,b\r\n1,x\r\n2,y\r\n".as_bytes()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get(1, "b").unwrap(), Value::Str("y".into()));
    }
}
