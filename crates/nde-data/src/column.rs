//! Columnar storage: one typed vector of optional values per column.

use crate::schema::DataType;
use crate::value::Value;
use crate::{DataError, Result};

/// A single typed column. Missing values are `None`.
///
/// Storage is columnar to keep hot loops (encoding, distance computation,
/// injection sweeps) cache-friendly and free of per-cell enum dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// An empty column with preallocated capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// `true` if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of missing cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Float(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Str(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|c| c.is_none()).count(),
        }
    }

    /// Get the cell at `row` as a [`Value`]. Returns `None` if out of bounds.
    pub fn get(&self, row: usize) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(match self {
            Column::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(v) => v[row]
                .as_ref()
                .map(|s| Value::Str(s.clone()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        })
    }

    /// Append a value, checking type compatibility (`Null` fits any column).
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            // Widen ints written into float columns; convenient for literals.
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(DataError::TypeMismatch {
                    column: String::new(),
                    expected: col.data_type().name(),
                    got: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Overwrite the cell at `row`, checking bounds and type.
    pub fn set(&mut self, row: usize, value: Value) -> Result<()> {
        let len = self.len();
        if row >= len {
            return Err(DataError::RowOutOfBounds { index: row, len });
        }
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v[row] = Some(x),
            (Column::Int(v), Value::Null) => v[row] = None,
            (Column::Float(v), Value::Float(x)) => v[row] = Some(x),
            (Column::Float(v), Value::Int(x)) => v[row] = Some(x as f64),
            (Column::Float(v), Value::Null) => v[row] = None,
            (Column::Str(v), Value::Str(x)) => v[row] = Some(x),
            (Column::Str(v), Value::Null) => v[row] = None,
            (Column::Bool(v), Value::Bool(x)) => v[row] = Some(x),
            (Column::Bool(v), Value::Null) => v[row] = None,
            (col, value) => {
                return Err(DataError::TypeMismatch {
                    column: String::new(),
                    expected: col.data_type().name(),
                    got: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Build a new column containing the cells at `indices` (rows may repeat).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Append all cells of `other` (must have the same type).
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend(b.iter().cloned()),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(DataError::SchemaMismatch(format!(
                    "cannot append {} column to {} column",
                    b.data_type(),
                    a.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Borrow as a float slice-of-options, if this is a float column.
    pub fn as_float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as an int slice-of-options, if this is an int column.
    pub fn as_int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a string slice-of-options, if this is a string column.
    pub fn as_str_slice(&self) -> Option<&[Option<String>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a bool slice-of-options, if this is a bool column.
    pub fn as_bool_slice(&self) -> Option<&[Option<bool>]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Cell values widened to `f64` (ints widen; non-numeric types yield `None`s).
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        match self {
            Column::Float(v) => v.clone(),
            Column::Int(v) => v.iter().map(|c| c.map(|x| x as f64)).collect(),
            Column::Bool(v) => v.iter().map(|c| c.map(|b| b as i64 as f64)).collect(),
            Column::Str(v) => vec![None; v.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Some(Value::Int(1)));
        assert_eq!(c.get(1), Some(Value::Null));
        assert_eq!(c.get(2), None);
        c.set(1, Value::Int(5)).unwrap();
        assert_eq!(c.get(1), Some(Value::Int(5)));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn type_checks() {
        let mut c = Column::empty(DataType::Str);
        assert!(c.push(Value::Int(1)).is_err());
        assert!(c.push(Value::Str("x".into())).is_ok());
        assert!(c.set(0, Value::Bool(true)).is_err());
        assert!(c.set(9, Value::Null).is_err());
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Some(Value::Float(3.0)));
    }

    #[test]
    fn take_repeats_and_reorders() {
        let mut c = Column::empty(DataType::Str);
        for s in ["a", "b", "c"] {
            c.push(Value::Str(s.into())).unwrap();
        }
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Some(Value::Str("c".into())));
        assert_eq!(t.get(1), Some(Value::Str("a".into())));
        assert_eq!(t.get(2), Some(Value::Str("a".into())));
    }

    #[test]
    fn extend_checks_types() {
        let mut a = Column::Int(vec![Some(1)]);
        let b = Column::Int(vec![Some(2), None]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 1);
        let f = Column::Float(vec![Some(1.0)]);
        assert!(a.extend_from(&f).is_err());
    }

    #[test]
    fn to_f64_widens() {
        let c = Column::Int(vec![Some(2), None]);
        assert_eq!(c.to_f64_vec(), vec![Some(2.0), None]);
        let b = Column::Bool(vec![Some(true), Some(false)]);
        assert_eq!(b.to_f64_vec(), vec![Some(1.0), Some(0.0)]);
        let s = Column::Str(vec![Some("x".into())]);
        assert_eq!(s.to_f64_vec(), vec![None]);
    }
}
