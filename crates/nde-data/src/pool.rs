//! A resident worker pool with adaptive chunk scheduling.
//!
//! The scoped substrate in [`crate::par`] historically spawned OS threads on
//! every call, which made small parallel regions (a pipeline exec over a few
//! thousand rows, one Zorro gradient epoch) *slower* than sequential: spawn
//! plus join costs tens of microseconds per worker, paid again for every
//! epoch and every operator. [`WorkerPool`] fixes that by spawning workers
//! once and parking them on a condvar between jobs; submitting a job is a
//! queue push plus a wake, and an idle pool costs nothing but parked threads.
//!
//! # Scheduling model
//!
//! A job is an indexed map over `range` with `threads - 1` pool slots; the
//! **submitting thread always participates as one worker**, so a map is never
//! starved even when every pool worker is busy (a saturated pool degrades to
//! inline execution, never deadlocks). Workers claim *chunks* of indices from
//! a shared atomic cursor. Chunk size is adaptive:
//!
//! - while the per-item cost is unknown, workers claim single items and the
//!   first completed claim publishes a measured per-item nanosecond cost;
//! - afterwards chunks are sized to roughly `TARGET_CHUNK_NANOS` of work
//!   (inside the 100µs–1ms band), capped so every worker still gets several
//!   claims for load balancing.
//!
//! Chunk boundaries provably cannot affect output: each result is tagged
//! with its item index, merged and sorted exactly as the scoped substrate
//! did, so the determinism contract of [`crate::par`] (bit-identical output
//! at every thread count) carries over unchanged. Callers that know their
//! per-item cost can pass a [`CostHint`] to skip the probe *and* let
//! [`effective_threads`] fall back to sequential for cheap small batches.
//!
//! # Failure and stop semantics
//!
//! Identical to the scoped substrate: panics in `f` are caught per item and
//! surfaced as [`WorkerFailure::Panic`]; the reported failure is always the
//! one with the smallest index (claims are monotone in the cursor and a
//! worker finishes its already-claimed chunk when *another* worker fails, so
//! the smallest failing index is always evaluated). A cooperative `stop`
//! drops the unevaluated remainder of a claimed chunk — consumers with
//! budget heuristics settle sorted results front-to-back and re-claim gaps,
//! so this only affects the speculative tail, never the settled prefix.
//!
//! Worker panics never poison the pool: the resident threads survive, and
//! the pool remains usable for subsequent jobs. Dropping a pool joins all
//! worker threads (no leaks).

use crate::par::{effective_threads, panic_message, CostHint, WorkerFailure};
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Target work per claimed chunk once the per-item cost is known (~0.25ms,
/// the middle of the 100µs–1ms sweet spot: large enough to amortize the
/// claim, small enough to load-balance and honor stop flags promptly).
const TARGET_CHUNK_NANOS: u64 = 250_000;
/// Hard ceiling on adaptive chunk size (keeps result merging cheap even for
/// nanosecond-scale items).
const MAX_CHUNK: u64 = 8192;
/// Keep at least this many claims available per worker for load balancing.
const CLAIMS_PER_WORKER: u64 = 4;

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on a resident pool worker thread. Nested maps run inline there:
/// the outer job already owns the pool's parallelism, and queueing from
/// inside a worker would only add scheduling churn.
fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// Monotone counters describing pool activity since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted to the pool (one per parallel map that ran pooled).
    pub jobs: u64,
    /// Chunks claimed from job cursors (adaptive batches, including the
    /// submitting thread's own claims).
    pub chunks: u64,
    /// Times a worker parked on the condvar waiting for work.
    pub parks: u64,
    /// Times a parked worker woke up (includes spurious wakeups).
    pub wakes: u64,
}

/// Type-erased pointer to a job body living on the submitter's stack.
struct RawBody(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync`, and every dereference happens before the
// submitting call returns — `JobGuard` retires the job and blocks until all
// joined workers have finished, so the pointee outlives all uses.
unsafe impl Send for RawBody {}
unsafe impl Sync for RawBody {}

/// Per-job control block shared between the submitter and the workers.
struct JobCtl {
    body: RawBody,
    /// Pool worker slots this job wants (`threads - 1`).
    slots: usize,
    /// Workers that claimed a slot so far (mutated only under the queue
    /// lock, so `retire` reads a final value once the job leaves the queue).
    joined: AtomicUsize,
    /// Workers that finished running the body.
    finished: AtomicUsize,
}

struct PoolQueue {
    jobs: VecDeque<Arc<JobCtl>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
    done_cv: Condvar,
    jobs: AtomicU64,
    chunks: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
}

/// A long-lived pool of parked worker threads for deterministic indexed maps.
///
/// Construct a dedicated pool with [`WorkerPool::new`], or share the
/// process-wide one via [`WorkerPool::shared`] (sized from the machine, at
/// least 7 workers so `threads <= 8` never degrades, overridable with the
/// `NDE_POOL_WORKERS` environment variable). Dropping a pool shuts down and
/// joins every worker thread.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

fn worker_loop(shared: Arc<PoolShared>) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        if q.shutdown {
            return;
        }
        let open = q
            .jobs
            .iter()
            .position(|j| j.joined.load(Ordering::Relaxed) < j.slots);
        let Some(pos) = open else {
            shared.parks.fetch_add(1, Ordering::Relaxed);
            q = shared.work_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            shared.wakes.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let job = Arc::clone(&q.jobs[pos]);
        let slot = job.joined.fetch_add(1, Ordering::Relaxed);
        if slot + 1 >= job.slots {
            // Fully joined: no further workers may claim it.
            q.jobs.remove(pos);
        }
        drop(q);
        // The job body catches user panics itself; this outer guard only
        // shields the resident thread from bookkeeping bugs so one bad job
        // cannot kill the pool.
        let body = unsafe { &*job.body.0 };
        let _ = panic::catch_unwind(AssertUnwindSafe(|| body(slot)));
        job.finished.fetch_add(1, Ordering::Release);
        q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        shared.done_cv.notify_all();
    }
}

/// Pool size for [`WorkerPool::shared`]: `NDE_POOL_WORKERS` if set, else
/// one less than the hardware parallelism (the submitter is a worker too),
/// floored so that 8-way maps still get real pool slots on small machines.
fn default_workers() -> usize {
    if let Ok(raw) = std::env::var("NDE_POOL_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n;
        }
    }
    let hw = std::thread::available_parallelism().map_or(8, |n| n.get());
    hw.max(8) - 1
}

impl WorkerPool {
    /// Spawn a dedicated pool with exactly `workers` resident threads.
    /// `workers == 0` is valid: every map then runs inline on the caller.
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            jobs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("nde-pool".into())
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The process-wide shared pool (spawned once, on first use).
    pub fn shared() -> Arc<WorkerPool> {
        static SHARED: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(WorkerPool::new(default_workers()))))
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            wakes: self.shared.wakes.load(Ordering::Relaxed),
        }
    }

    fn submit(&self, slots: usize, body: &(dyn Fn(usize) + Sync)) -> Arc<JobCtl> {
        // SAFETY: `JobGuard::drop` retires the job and blocks until every
        // joined worker finished, before `body`'s stack frame can unwind.
        let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let job = Arc::new(JobCtl {
            body: RawBody(body),
            slots,
            joined: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
        });
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if !q.shutdown {
                q.jobs.push_back(Arc::clone(&job));
            }
        }
        self.shared.jobs.fetch_add(1, Ordering::Relaxed);
        self.shared.work_cv.notify_all();
        job
    }

    /// Remove `job` from the queue (no new joiners) and wait for every
    /// worker that already joined. Waits only for *joined* workers: a job
    /// nobody picked up retires immediately, which is what makes nested or
    /// saturated submission degrade to inline execution instead of
    /// deadlocking.
    fn retire(&self, job: &Arc<JobCtl>) {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(pos) = q.jobs.iter().position(|j| Arc::ptr_eq(j, job)) {
            q.jobs.remove(pos);
        }
        let joined = job.joined.load(Ordering::Relaxed);
        while job.finished.load(Ordering::Acquire) < joined {
            q = self
                .shared
                .done_cv
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Parallel indexed map on this pool; see [`crate::par::par_map_indexed`]
    /// for the determinism contract.
    pub fn map_indexed<T, E, F>(
        &self,
        threads: usize,
        range: Range<u64>,
        stop: &AtomicBool,
        cost: CostHint,
        f: F,
    ) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
    where
        T: Send,
        E: Send,
        F: Fn(u64) -> Result<T, E> + Sync,
    {
        self.map_indexed_scratch(threads, range, stop, cost, || (), |(), i| f(i))
    }

    /// Parallel indexed map with per-worker scratch state on this pool; see
    /// [`crate::par::par_map_indexed_scratch`] for the determinism contract.
    pub fn map_indexed_scratch<S, T, E, I, F>(
        &self,
        threads: usize,
        range: Range<u64>,
        stop: &AtomicBool,
        cost: CostHint,
        init: I,
        f: F,
    ) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
    where
        T: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, u64) -> Result<T, E> + Sync,
    {
        let items = range.end.saturating_sub(range.start);
        let mut threads = effective_threads(threads, items.min(usize::MAX as u64) as usize, cost);
        if in_pool_worker() {
            threads = 1;
        }
        let next = AtomicU64::new(range.start);
        let failed = AtomicBool::new(false);
        let failure: Mutex<Option<WorkerFailure<E>>> = Mutex::new(None);
        let cost_ns = AtomicU64::new(cost.per_item_nanos());
        let claims = AtomicU64::new(0);

        let record_failure = |fail: WorkerFailure<E>| {
            failed.store(true, Ordering::Relaxed);
            let mut slot = failure.lock().unwrap_or_else(|p| p.into_inner());
            if slot.as_ref().is_none_or(|prev| fail.index() < prev.index()) {
                *slot = Some(fail);
            }
        };

        let worker = |out: &mut Vec<(u64, T)>| {
            let mut scratch = init();
            'claims: loop {
                if stop.load(Ordering::Relaxed) || failed.load(Ordering::Relaxed) {
                    break;
                }
                let est = cost_ns.load(Ordering::Relaxed);
                let want = chunk_size(est, items, threads);
                let start = next.fetch_add(want, Ordering::Relaxed);
                if start >= range.end {
                    break;
                }
                let end = range.end.min(start.saturating_add(want));
                claims.fetch_add(1, Ordering::Relaxed);
                let probe = (est == 0).then(Instant::now);
                for i in start..end {
                    // A cooperative stop drops the unevaluated rest of the
                    // chunk (budgeted callers settle front-to-back and
                    // re-claim gaps next round). A failure elsewhere does
                    // NOT: finishing the claimed chunk preserves the
                    // smallest-failing-index guarantee, because claims are
                    // monotone in the cursor.
                    if stop.load(Ordering::Relaxed) {
                        break 'claims;
                    }
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i)));
                    match outcome {
                        Ok(Ok(v)) => out.push((i, v)),
                        Ok(Err(e)) => {
                            record_failure(WorkerFailure::Err(i, e));
                            break 'claims;
                        }
                        Err(payload) => {
                            record_failure(WorkerFailure::Panic(i, panic_message(payload)));
                            break 'claims;
                        }
                    }
                }
                if let Some(t0) = probe {
                    let spent = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    let per_item = (spent / (end - start)).max(1);
                    let _ =
                        cost_ns.compare_exchange(0, per_item, Ordering::Relaxed, Ordering::Relaxed);
                }
            }
        };

        let mut results: Vec<(u64, T)> = Vec::with_capacity(items.min(1 << 20) as usize);
        if threads == 1 {
            worker(&mut results);
        } else {
            let extra = threads - 1;
            let slots: Vec<Mutex<Vec<(u64, T)>>> =
                (0..extra).map(|_| Mutex::new(Vec::new())).collect();
            let pool_panic: Mutex<Option<String>> = Mutex::new(None);
            let body = |slot: usize| {
                let run = panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut local = Vec::new();
                    worker(&mut local);
                    local
                }));
                match run {
                    Ok(local) => {
                        *slots[slot].lock().unwrap_or_else(|p| p.into_inner()) = local;
                    }
                    Err(payload) => {
                        // Only `init` can panic outside the per-item guard;
                        // match the scoped-spawn behavior by re-raising on
                        // the submitting thread once the job drains.
                        failed.store(true, Ordering::Relaxed);
                        let mut first = pool_panic.lock().unwrap_or_else(|p| p.into_inner());
                        if first.is_none() {
                            *first = Some(panic_message(payload));
                        }
                    }
                }
            };
            {
                let _guard = JobGuard {
                    pool: self,
                    job: self.submit(extra, &body),
                };
                worker(&mut results);
            }
            for slot in slots {
                results.append(&mut slot.into_inner().unwrap_or_else(|p| p.into_inner()));
            }
            results.sort_unstable_by_key(|&(i, _)| i);
            if let Some(msg) = pool_panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
                panic!("pool worker panicked outside the item guard: {msg}");
            }
        }
        self.shared
            .chunks
            .fetch_add(claims.load(Ordering::Relaxed), Ordering::Relaxed);

        match failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(fail) => Err(fail),
            None => Ok(results),
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Ensures a submitted job is retired even if the submitter's own worker
/// body panics (e.g. a panicking `init` on the calling thread): the job must
/// never outlive the stack frame its body borrows from.
struct JobGuard<'p> {
    pool: &'p WorkerPool,
    job: Arc<JobCtl>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.pool.retire(&self.job);
    }
}

/// Items to claim in one chunk given the current cost estimate.
fn chunk_size(est_ns: u64, items: u64, threads: usize) -> u64 {
    if est_ns == 0 {
        // Cost unknown: claim single items so the first completion can
        // publish a measured estimate (and so expensive items are never
        // over-claimed before we know they are expensive).
        return 1;
    }
    let target = (TARGET_CHUNK_NANOS / est_ns).max(1);
    let fair = (items / (threads as u64 * CLAIMS_PER_WORKER)).max(1);
    target.min(fair).min(MAX_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_map_indexed_scratch_scoped;

    #[test]
    fn pooled_map_matches_scoped_reference_across_thread_counts() {
        let pool = WorkerPool::new(6);
        let stop = AtomicBool::new(false);
        let reference = par_map_indexed_scratch_scoped::<u64, u64, (), _, _>(
            1,
            0..500,
            &stop,
            || 0,
            |_, i| Ok(i.wrapping_mul(i) ^ 0x9e37),
        )
        .unwrap();
        for threads in [1, 2, 4, 7] {
            // Reuse the same pool many times: results must stay identical.
            for _ in 0..5 {
                let pooled = pool
                    .map_indexed_scratch::<u64, u64, (), _, _>(
                        threads,
                        0..500,
                        &stop,
                        CostHint::Unknown,
                        || 0,
                        |_, i| Ok(i.wrapping_mul(i) ^ 0x9e37),
                    )
                    .unwrap();
                assert_eq!(pooled, reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn adaptive_chunking_is_output_invariant() {
        let pool = WorkerPool::new(3);
        let stop = AtomicBool::new(false);
        // Give wildly wrong and wildly varied hints: chunk geometry changes,
        // output must not.
        let hints = [
            CostHint::Unknown,
            CostHint::PerItemNanos(1),
            CostHint::PerItemNanos(200_000),
            CostHint::PerItemNanos(u64::MAX),
        ];
        let reference: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i * 3 + 1)).collect();
        for hint in hints {
            let out = pool
                .map_indexed::<u64, (), _>(4, 0..1000, &stop, hint, |i| Ok(i * 3 + 1))
                .unwrap();
            assert_eq!(out, reference, "hint={hint:?}");
        }
    }

    #[test]
    fn worker_panic_is_contained_and_pool_stays_usable() {
        let pool = WorkerPool::new(4);
        let stop = AtomicBool::new(false);
        let err = pool
            .map_indexed::<(), (), _>(4, 0..64, &stop, CostHint::Unknown, |i| {
                if i == 9 {
                    panic!("chaos {i}");
                }
                Ok(())
            })
            .unwrap_err();
        match err {
            WorkerFailure::Panic(9, msg) => assert!(msg.contains("chaos 9")),
            other => panic!("expected panic at 9, got {other:?}"),
        }
        // The pool survives the panic and keeps producing correct results.
        let ok = pool
            .map_indexed::<u64, (), _>(4, 0..64, &stop, CostHint::Unknown, |i| Ok(i + 1))
            .unwrap();
        assert_eq!(ok.len(), 64);
        assert!(ok.iter().all(|&(i, v)| v == i + 1));
    }

    #[test]
    fn smallest_failing_index_wins_with_adaptive_chunks() {
        let pool = WorkerPool::new(4);
        let stop = AtomicBool::new(false);
        // A cheap hint forces multi-item chunks; the reported failure must
        // still be the smallest failing index.
        for threads in [1, 4, 7] {
            let err = pool
                .map_indexed::<(), String, _>(
                    threads,
                    0..256,
                    &stop,
                    CostHint::PerItemNanos(10),
                    |i| {
                        if i % 50 == 13 {
                            Err(format!("bad {i}"))
                        } else {
                            Ok(())
                        }
                    },
                )
                .unwrap_err();
            assert_eq!(err, WorkerFailure::Err(13, "bad 13".into()));
        }
    }

    #[test]
    fn stats_count_jobs_chunks_and_parks() {
        let pool = WorkerPool::new(2);
        let stop = AtomicBool::new(false);
        let before = pool.stats();
        pool.map_indexed::<u64, (), _>(3, 0..100, &stop, CostHint::PerItemNanos(10_000), Ok)
            .unwrap();
        let after = pool.stats();
        assert_eq!(after.jobs, before.jobs + 1);
        assert!(after.chunks > before.chunks);
        // threads == 1 must bypass the pool entirely.
        pool.map_indexed::<u64, (), _>(1, 0..100, &stop, CostHint::Unknown, Ok)
            .unwrap();
        assert_eq!(pool.stats().jobs, after.jobs);
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let stop = AtomicBool::new(false);
        let inner_pool = Arc::clone(&pool);
        let out = pool
            .map_indexed::<u64, (), _>(3, 0..8, &stop, CostHint::Unknown, |i| {
                let inner_stop = AtomicBool::new(false);
                let inner = inner_pool
                    .map_indexed::<u64, (), _>(4, 0..10, &inner_stop, CostHint::Unknown, |j| {
                        Ok(i * 100 + j)
                    })
                    .unwrap();
                Ok(inner.iter().map(|&(_, v)| v).sum())
            })
            .unwrap();
        let expect: Vec<(u64, u64)> = (0..8u64).map(|i| (i, i * 1000 + 45)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_worker_pool_runs_everything_inline() {
        let pool = WorkerPool::new(0);
        let stop = AtomicBool::new(false);
        let out = pool
            .map_indexed::<u64, (), _>(8, 0..50, &stop, CostHint::Unknown, |i| Ok(i * 2))
            .unwrap();
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|&(i, v)| v == i * 2));
    }

    #[test]
    fn drop_joins_all_workers() {
        // Run a job, then drop: Drop must join every resident thread (a
        // hang here fails the test harness timeout; completing proves the
        // shutdown handshake works even right after activity).
        let pool = WorkerPool::new(4);
        let stop = AtomicBool::new(false);
        pool.map_indexed::<u64, (), _>(4, 0..200, &stop, CostHint::Unknown, Ok)
            .unwrap();
        drop(pool);
    }
}
