//! Storage backends behind [`crate::Table`].
//!
//! Two backends implement the [`TableBackend`] trait:
//!
//! * [`ColumnarStore`] — the default: typed planes (`i64`, `f64`, `bool`,
//!   dictionary-encoded strings) with null bitmaps, plus fast-path hooks
//!   (`stats_sum`, `distinct_count`, `dictionary_values`, `filter_eq`) that
//!   operators use to skip per-row `Value` materialization entirely.
//! * [`RefStore`] — the original `Value`-per-cell [`Column`] representation,
//!   retained as the differential-testing reference; every fast-path hook
//!   returns `None`, so operators fall back to the per-row path that shipped
//!   with the seed.
//!
//! Both backends hold the same logical cells; `Table` equality and every
//! relational operator are backend-agnostic, which is what the differential
//! property tests in `tests/tests/columnar_backend.rs` exercise.

use crate::column::Column;
use crate::planes::{BoolPlane, F64Plane, I64Plane, StrPlane};
use crate::schema::{DataType, Schema};
use crate::value::{Value, ValueRef};
use crate::{DataError, Result};

/// Which storage representation a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Typed planes with dictionary-encoded strings (default).
    Columnar,
    /// `Value`-per-cell columns (differential-testing reference).
    Reference,
}

/// Read-oriented storage abstraction with optional acceleration hooks.
///
/// The required methods describe the cells; the `stats_*`/`filter_eq`/
/// `dictionary_values` hooks default to `None`, meaning "no fast path —
/// compute it row by row". Callers must treat a `None` as *unknown*, never
/// as an empty result.
pub trait TableBackend {
    /// Number of rows.
    fn row_count(&self) -> usize;
    /// Number of columns.
    fn column_count(&self) -> usize;
    /// Data type of column `col`.
    fn data_type(&self, col: usize) -> DataType;
    /// Owned cell value at (`row`, `col`).
    fn value(&self, row: usize, col: usize) -> Value;
    /// Borrowed cell value at (`row`, `col`).
    fn value_ref(&self, row: usize, col: usize) -> ValueRef<'_>;
    /// Number of null cells in column `col`.
    fn null_count(&self, col: usize) -> usize;

    /// Sum of the non-null cells of a numeric column, if the backend can
    /// produce it without row iteration over `Value`s.
    fn stats_sum(&self, _col: usize) -> Option<f64> {
        None
    }
    /// Number of distinct non-null values in the column, when cheap.
    fn distinct_count(&self, _col: usize) -> Option<usize> {
        None
    }
    /// The dictionary of a dictionary-encoded string column, in code order.
    /// May include values no surviving row references (dictionaries are
    /// shared across row-subset tables).
    fn dictionary_values(&self, _col: usize) -> Option<&[String]> {
        None
    }
    /// Row indices whose cell equals `value` under SQL equality (nulls never
    /// match, `Int`/`Float` compare numerically), in ascending order.
    fn filter_eq(&self, _col: usize, _value: &Value) -> Option<Vec<usize>> {
        None
    }
}

/// One typed column plane of a [`ColumnarStore`].
#[derive(Debug, Clone, PartialEq)]
pub enum Plane {
    /// Integer plane.
    I64(I64Plane),
    /// Float plane.
    F64(F64Plane),
    /// Dictionary-encoded string plane.
    Str(StrPlane),
    /// Boolean plane.
    Bool(BoolPlane),
}

impl Plane {
    /// An empty plane of the given type.
    pub fn empty(dtype: DataType) -> Plane {
        match dtype {
            DataType::Int => Plane::I64(I64Plane::new()),
            DataType::Float => Plane::F64(F64Plane::new()),
            DataType::Str => Plane::Str(StrPlane::new()),
            DataType::Bool => Plane::Bool(BoolPlane::new()),
        }
    }

    /// The plane's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Plane::I64(_) => DataType::Int,
            Plane::F64(_) => DataType::Float,
            Plane::Str(_) => DataType::Str,
            Plane::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Plane::I64(p) => p.len(),
            Plane::F64(p) => p.len(),
            Plane::Str(p) => p.len(),
            Plane::Bool(p) => p.len(),
        }
    }

    /// `true` if the plane has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match self {
            Plane::I64(p) => p.null_count(),
            Plane::F64(p) => p.null_count(),
            Plane::Str(p) => p.null_count(),
            Plane::Bool(p) => p.null_count(),
        }
    }

    /// Owned cell value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Plane::I64(p) => p.get(row).map(Value::Int).unwrap_or(Value::Null),
            Plane::F64(p) => p.get(row).map(Value::Float).unwrap_or(Value::Null),
            Plane::Str(p) => p
                .get(row)
                .map(|s| Value::Str(s.to_owned()))
                .unwrap_or(Value::Null),
            Plane::Bool(p) => p.get(row).map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Borrowed cell value at `row`.
    pub fn value_ref(&self, row: usize) -> ValueRef<'_> {
        match self {
            Plane::I64(p) => p.get(row).map(ValueRef::Int).unwrap_or(ValueRef::Null),
            Plane::F64(p) => p.get(row).map(ValueRef::Float).unwrap_or(ValueRef::Null),
            Plane::Str(p) => p.get(row).map(ValueRef::Str).unwrap_or(ValueRef::Null),
            Plane::Bool(p) => p.get(row).map(ValueRef::Bool).unwrap_or(ValueRef::Null),
        }
    }

    /// Append a value, checking type compatibility (`Null` fits any plane;
    /// ints widen into float planes) — same contract as [`Column::push`].
    pub fn push_value(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Plane::I64(p), Value::Int(x)) => p.push(x),
            (Plane::I64(p), Value::Null) => p.push_null(),
            (Plane::F64(p), Value::Float(x)) => p.push(x),
            (Plane::F64(p), Value::Int(x)) => p.push(x as f64),
            (Plane::F64(p), Value::Null) => p.push_null(),
            (Plane::Str(p), Value::Str(x)) => p.push(&x),
            (Plane::Str(p), Value::Null) => p.push_null(),
            (Plane::Bool(p), Value::Bool(x)) => p.push(x),
            (Plane::Bool(p), Value::Null) => p.push_null(),
            (plane, value) => {
                return Err(DataError::TypeMismatch {
                    column: String::new(),
                    expected: plane.data_type().name(),
                    got: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Overwrite the cell at `row`, checking bounds and type — same contract
    /// as [`Column::set`].
    pub fn set_value(&mut self, row: usize, value: Value) -> Result<()> {
        let len = self.len();
        if row >= len {
            return Err(DataError::RowOutOfBounds { index: row, len });
        }
        match (self, value) {
            (Plane::I64(p), Value::Int(x)) => p.set(row, Some(x)),
            (Plane::I64(p), Value::Null) => p.set(row, None),
            (Plane::F64(p), Value::Float(x)) => p.set(row, Some(x)),
            (Plane::F64(p), Value::Int(x)) => p.set(row, Some(x as f64)),
            (Plane::F64(p), Value::Null) => p.set(row, None),
            (Plane::Str(p), Value::Str(x)) => p.set(row, Some(&x)),
            (Plane::Str(p), Value::Null) => p.set(row, None),
            (Plane::Bool(p), Value::Bool(x)) => p.set(row, Some(x)),
            (Plane::Bool(p), Value::Null) => p.set(row, None),
            (plane, value) => {
                return Err(DataError::TypeMismatch {
                    column: String::new(),
                    expected: plane.data_type().name(),
                    got: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Plane with the rows at `indices` (callers bounds-check).
    pub fn take(&self, indices: &[usize]) -> Plane {
        match self {
            Plane::I64(p) => Plane::I64(p.take(indices)),
            Plane::F64(p) => Plane::F64(p.take(indices)),
            Plane::Str(p) => Plane::Str(p.take(indices)),
            Plane::Bool(p) => Plane::Bool(p.take(indices)),
        }
    }

    /// Plane gathering `indices` with nulls for `None` slots.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Plane {
        match self {
            Plane::I64(p) => Plane::I64(p.take_opt(indices)),
            Plane::F64(p) => Plane::F64(p.take_opt(indices)),
            Plane::Str(p) => Plane::Str(p.take_opt(indices)),
            Plane::Bool(p) => Plane::Bool(p.take_opt(indices)),
        }
    }

    /// Append all rows of `other` (must have the same type).
    pub fn extend_from(&mut self, other: &Plane) -> Result<()> {
        match (self, other) {
            (Plane::I64(a), Plane::I64(b)) => a.extend_from(b),
            (Plane::F64(a), Plane::F64(b)) => a.extend_from(b),
            (Plane::Str(a), Plane::Str(b)) => a.extend_from(b),
            (Plane::Bool(a), Plane::Bool(b)) => a.extend_from(b),
            (a, b) => {
                return Err(DataError::SchemaMismatch(format!(
                    "cannot append {} column to {} column",
                    b.data_type(),
                    a.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Convert an owned [`Column`] into a plane (interning strings).
    pub fn from_column(col: Column) -> Plane {
        match col {
            Column::Int(v) => {
                let mut p = I64Plane::with_capacity(v.len());
                for c in v {
                    match c {
                        Some(x) => p.push(x),
                        None => p.push_null(),
                    }
                }
                Plane::I64(p)
            }
            Column::Float(v) => {
                let mut p = F64Plane::with_capacity(v.len());
                for c in v {
                    match c {
                        Some(x) => p.push(x),
                        None => p.push_null(),
                    }
                }
                Plane::F64(p)
            }
            Column::Str(v) => {
                let mut p = StrPlane::with_capacity(v.len());
                for c in v {
                    match c {
                        Some(s) => p.push(&s),
                        None => p.push_null(),
                    }
                }
                Plane::Str(p)
            }
            Column::Bool(v) => {
                let mut p = BoolPlane::with_capacity(v.len());
                for c in v {
                    match c {
                        Some(b) => p.push(b),
                        None => p.push_null(),
                    }
                }
                Plane::Bool(p)
            }
        }
    }

    /// Materialize the plane as a `Value`-per-cell [`Column`].
    pub fn to_column(&self) -> Column {
        match self {
            Plane::I64(p) => Column::Int((0..p.len()).map(|r| p.get(r)).collect()),
            Plane::F64(p) => Column::Float((0..p.len()).map(|r| p.get(r)).collect()),
            Plane::Str(p) => {
                Column::Str((0..p.len()).map(|r| p.get(r).map(str::to_owned)).collect())
            }
            Plane::Bool(p) => Column::Bool((0..p.len()).map(|r| p.get(r)).collect()),
        }
    }
}

/// Typed-plane storage: the default backend.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnarStore {
    planes: Vec<Plane>,
}

impl ColumnarStore {
    /// Empty store matching `schema`.
    pub fn empty(schema: &Schema) -> ColumnarStore {
        ColumnarStore {
            planes: schema
                .fields()
                .iter()
                .map(|f| Plane::empty(f.dtype))
                .collect(),
        }
    }

    /// Store built directly from planes (used by plane-wise gathers).
    pub fn from_planes(planes: Vec<Plane>) -> ColumnarStore {
        ColumnarStore { planes }
    }

    /// The plane of column `col`.
    pub fn plane(&self, col: usize) -> &Plane {
        &self.planes[col]
    }

    /// Mutable plane of column `col`.
    pub fn plane_mut(&mut self, col: usize) -> &mut Plane {
        &mut self.planes[col]
    }

    /// All planes in column order.
    pub fn planes(&self) -> &[Plane] {
        &self.planes
    }
}

impl TableBackend for ColumnarStore {
    fn row_count(&self) -> usize {
        self.planes.first().map_or(0, Plane::len)
    }

    fn column_count(&self) -> usize {
        self.planes.len()
    }

    fn data_type(&self, col: usize) -> DataType {
        self.planes[col].data_type()
    }

    fn value(&self, row: usize, col: usize) -> Value {
        self.planes[col].value(row)
    }

    fn value_ref(&self, row: usize, col: usize) -> ValueRef<'_> {
        self.planes[col].value_ref(row)
    }

    fn null_count(&self, col: usize) -> usize {
        self.planes[col].null_count()
    }

    fn stats_sum(&self, col: usize) -> Option<f64> {
        match &self.planes[col] {
            Plane::I64(p) => Some(
                (0..p.len())
                    .filter(|&r| !p.nulls.get(r))
                    .map(|r| p.values[r] as f64)
                    .sum(),
            ),
            Plane::F64(p) => Some(
                (0..p.len())
                    .filter(|&r| !p.nulls.get(r))
                    .map(|r| p.values[r])
                    .sum(),
            ),
            _ => None,
        }
    }

    fn distinct_count(&self, col: usize) -> Option<usize> {
        match &self.planes[col] {
            Plane::Str(p) => {
                let mut seen = vec![false; p.dict().len()];
                let mut distinct = 0usize;
                for row in 0..p.len() {
                    if !p.nulls.get(row) {
                        let c = p.codes[row] as usize;
                        if !seen[c] {
                            seen[c] = true;
                            distinct += 1;
                        }
                    }
                }
                Some(distinct)
            }
            _ => None,
        }
    }

    fn dictionary_values(&self, col: usize) -> Option<&[String]> {
        match &self.planes[col] {
            Plane::Str(p) => Some(p.dict().values()),
            _ => None,
        }
    }

    fn filter_eq(&self, col: usize, value: &Value) -> Option<Vec<usize>> {
        if value.is_null() {
            return Some(Vec::new()); // SQL equality: null matches nothing
        }
        let rows = match &self.planes[col] {
            Plane::I64(p) => {
                let target = match value {
                    Value::Int(x) => Target::Int(*x),
                    Value::Float(f) => Target::Float(*f),
                    _ => return Some(Vec::new()),
                };
                (0..p.len())
                    .filter(|&r| {
                        !p.nulls.get(r)
                            && match target {
                                Target::Int(x) => p.values[r] == x,
                                Target::Float(f) => p.values[r] as f64 == f,
                            }
                    })
                    .collect()
            }
            Plane::F64(p) => {
                let target = match value {
                    Value::Float(f) => *f,
                    Value::Int(x) => *x as f64,
                    _ => return Some(Vec::new()),
                };
                (0..p.len())
                    .filter(|&r| !p.nulls.get(r) && p.values[r] == target)
                    .collect()
            }
            Plane::Str(p) => {
                let Some(code) = value.as_str().and_then(|s| p.dict().code_of(s)) else {
                    return Some(Vec::new());
                };
                (0..p.len())
                    .filter(|&r| !p.nulls.get(r) && p.codes[r] == code)
                    .collect()
            }
            Plane::Bool(p) => {
                let Some(target) = value.as_bool() else {
                    return Some(Vec::new());
                };
                (0..p.len())
                    .filter(|&r| !p.nulls.get(r) && p.values[r] == target)
                    .collect()
            }
        };
        Some(rows)
    }
}

/// Lit target for numeric `filter_eq` scans over an integer plane.
#[derive(Clone, Copy)]
enum Target {
    Int(i64),
    Float(f64),
}

/// `Value`-per-cell storage: the seed representation, kept as the
/// differential-testing reference. All acceleration hooks stay `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RefStore {
    columns: Vec<Column>,
}

impl RefStore {
    /// Empty store matching `schema`.
    pub fn empty(schema: &Schema) -> RefStore {
        RefStore {
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::empty(f.dtype))
                .collect(),
        }
    }

    /// The column at `col`.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }
}

impl TableBackend for RefStore {
    fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    fn column_count(&self) -> usize {
        self.columns.len()
    }

    fn data_type(&self, col: usize) -> DataType {
        self.columns[col].data_type()
    }

    fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row).unwrap_or(Value::Null)
    }

    fn value_ref(&self, row: usize, col: usize) -> ValueRef<'_> {
        match &self.columns[col] {
            Column::Int(v) => v[row].map(ValueRef::Int).unwrap_or(ValueRef::Null),
            Column::Float(v) => v[row].map(ValueRef::Float).unwrap_or(ValueRef::Null),
            Column::Str(v) => v[row]
                .as_deref()
                .map(ValueRef::Str)
                .unwrap_or(ValueRef::Null),
            Column::Bool(v) => v[row].map(ValueRef::Bool).unwrap_or(ValueRef::Null),
        }
    }

    fn null_count(&self, col: usize) -> usize {
        self.columns[col].null_count()
    }
}

/// The dispatching storage of a [`crate::Table`].
#[derive(Debug, Clone)]
pub enum Store {
    /// Typed planes (default).
    Columnar(ColumnarStore),
    /// `Value`-per-cell reference.
    Reference(RefStore),
}

impl Store {
    /// Empty store of the requested kind matching `schema`.
    pub fn empty(schema: &Schema, kind: BackendKind) -> Store {
        match kind {
            BackendKind::Columnar => Store::Columnar(ColumnarStore::empty(schema)),
            BackendKind::Reference => Store::Reference(RefStore::empty(schema)),
        }
    }

    /// Columnar store built by converting owned columns into planes.
    pub fn from_columns(columns: Vec<Column>) -> Store {
        Store::Columnar(ColumnarStore {
            planes: columns.into_iter().map(Plane::from_column).collect(),
        })
    }

    /// Store of the requested kind built from owned columns.
    pub fn from_columns_with_kind(columns: Vec<Column>, kind: BackendKind) -> Store {
        match kind {
            BackendKind::Columnar => Store::from_columns(columns),
            BackendKind::Reference => Store::Reference(RefStore { columns }),
        }
    }

    /// Which backend this store is.
    pub fn kind(&self) -> BackendKind {
        match self {
            Store::Columnar(_) => BackendKind::Columnar,
            Store::Reference(_) => BackendKind::Reference,
        }
    }

    /// The trait object view of the active backend.
    pub fn backend(&self) -> &dyn TableBackend {
        match self {
            Store::Columnar(s) => s,
            Store::Reference(s) => s,
        }
    }

    /// The columnar store, when active.
    pub fn as_columnar(&self) -> Option<&ColumnarStore> {
        match self {
            Store::Columnar(s) => Some(s),
            Store::Reference(_) => None,
        }
    }

    /// Append one pre-validated row of values.
    pub fn push_row(&mut self, row: Vec<Value>) {
        match self {
            Store::Columnar(s) => {
                for (plane, value) in s.planes.iter_mut().zip(row) {
                    plane
                        .push_value(value)
                        .expect("validated by Table::push_row");
                }
            }
            Store::Reference(s) => {
                for (col, value) in s.columns.iter_mut().zip(row) {
                    col.push(value).expect("validated by Table::push_row");
                }
            }
        }
    }

    /// Overwrite a cell, checking bounds and type.
    pub fn set(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        match self {
            Store::Columnar(s) => s.planes[col].set_value(row, value),
            Store::Reference(s) => s.columns[col].set(row, value),
        }
    }

    /// Store with the rows at `indices` (callers bounds-check).
    pub fn take(&self, indices: &[usize]) -> Store {
        match self {
            Store::Columnar(s) => Store::Columnar(ColumnarStore {
                planes: s.planes.iter().map(|p| p.take(indices)).collect(),
            }),
            Store::Reference(s) => Store::Reference(RefStore {
                columns: s.columns.iter().map(|c| c.take(indices)).collect(),
            }),
        }
    }

    /// Store keeping only the columns at `cols`, in that order.
    pub fn select_columns(&self, cols: &[usize]) -> Store {
        match self {
            Store::Columnar(s) => Store::Columnar(ColumnarStore {
                planes: cols.iter().map(|&c| s.planes[c].clone()).collect(),
            }),
            Store::Reference(s) => Store::Reference(RefStore {
                columns: cols.iter().map(|&c| s.columns[c].clone()).collect(),
            }),
        }
    }

    /// Add a column on the right (converted to a plane when columnar).
    pub fn add_column(&mut self, column: Column) {
        match self {
            Store::Columnar(s) => s.planes.push(Plane::from_column(column)),
            Store::Reference(s) => s.columns.push(column),
        }
    }

    /// Materialize column `col` as an owned [`Column`].
    pub fn materialize(&self, col: usize) -> Column {
        match self {
            Store::Columnar(s) => s.planes[col].to_column(),
            Store::Reference(s) => s.columns[col].clone(),
        }
    }

    /// Append all rows of `other` column-wise. Schemas must already match;
    /// cross-backend appends convert cell by cell.
    pub fn extend_from(&mut self, other: &Store) -> Result<()> {
        match (&mut *self, other) {
            (Store::Columnar(a), Store::Columnar(b)) => {
                for (pa, pb) in a.planes.iter_mut().zip(&b.planes) {
                    pa.extend_from(pb)?;
                }
            }
            (Store::Reference(a), Store::Reference(b)) => {
                for (ca, cb) in a.columns.iter_mut().zip(&b.columns) {
                    ca.extend_from(cb)?;
                }
            }
            (a, b) => {
                let (rows, cols) = (b.backend().row_count(), b.backend().column_count());
                for row in 0..rows {
                    for col in 0..cols {
                        match a {
                            Store::Columnar(s) => {
                                s.planes[col].push_value(b.backend().value(row, col))?
                            }
                            Store::Reference(s) => {
                                s.columns[col].push(b.backend().value(row, col))?
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert to the requested backend (no-op clone if already there).
    pub fn convert_to(&self, kind: BackendKind) -> Store {
        match (self, kind) {
            (Store::Columnar(_), BackendKind::Columnar)
            | (Store::Reference(_), BackendKind::Reference) => self.clone(),
            (Store::Columnar(s), BackendKind::Reference) => Store::Reference(RefStore {
                columns: s.planes.iter().map(Plane::to_column).collect(),
            }),
            (Store::Reference(s), BackendKind::Columnar) => Store::Columnar(ColumnarStore {
                planes: s
                    .columns
                    .iter()
                    .map(|c| Plane::from_column(c.clone()))
                    .collect(),
            }),
        }
    }
}

/// Stores are equal iff they hold the same logical cells — the backends
/// compare interchangeably, which is what lets differential tests
/// `assert_eq!` a columnar result against the reference path.
impl PartialEq for Store {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.backend(), other.backend());
        if a.row_count() != b.row_count() || a.column_count() != b.column_count() {
            return false;
        }
        for col in 0..a.column_count() {
            if a.data_type(col) != b.data_type(col) {
                return false;
            }
            for row in 0..a.row_count() {
                if a.value_ref(row, col) != b.value_ref(row, col) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ])
        .unwrap()
    }

    fn filled(kind: BackendKind) -> Store {
        let mut s = Store::empty(&schema(), kind);
        s.push_row(vec![1.into(), 1.5.into(), "a".into(), true.into()]);
        s.push_row(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
        s.push_row(vec![2.into(), 2.5.into(), "a".into(), false.into()]);
        s.push_row(vec![1.into(), 1.5.into(), "b".into(), true.into()]);
        s
    }

    #[test]
    fn backends_hold_identical_cells() {
        let c = filled(BackendKind::Columnar);
        let r = filled(BackendKind::Reference);
        assert_eq!(c, r);
        assert_eq!(c.backend().value(0, 2), Value::Str("a".into()));
        assert_eq!(c.backend().value(1, 2), Value::Null);
        assert_eq!(c.backend().value_ref(3, 2), ValueRef::Str("b"));
        assert_eq!(c.backend().null_count(1), r.backend().null_count(1));
    }

    #[test]
    fn columnar_hooks_fire_and_reference_hooks_dont() {
        let c = filled(BackendKind::Columnar);
        let r = filled(BackendKind::Reference);
        assert_eq!(c.backend().stats_sum(0), Some(4.0));
        assert_eq!(c.backend().stats_sum(1), Some(5.5));
        assert_eq!(c.backend().stats_sum(2), None);
        assert_eq!(c.backend().distinct_count(2), Some(2));
        assert_eq!(
            c.backend().dictionary_values(2),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        for col in 0..4 {
            assert_eq!(r.backend().stats_sum(col), None);
            assert_eq!(r.backend().distinct_count(col), None);
            assert_eq!(r.backend().dictionary_values(col), None);
            assert_eq!(r.backend().filter_eq(col, &Value::Int(1)), None);
        }
    }

    #[test]
    fn filter_eq_matches_sql_equality() {
        let c = filled(BackendKind::Columnar);
        assert_eq!(c.backend().filter_eq(0, &Value::Int(1)), Some(vec![0, 3]));
        // Numeric cross-type equality.
        assert_eq!(c.backend().filter_eq(0, &Value::Float(2.0)), Some(vec![2]));
        assert_eq!(c.backend().filter_eq(1, &Value::Float(2.5)), Some(vec![2]));
        assert_eq!(
            c.backend().filter_eq(2, &Value::Str("a".into())),
            Some(vec![0, 2])
        );
        assert_eq!(
            c.backend().filter_eq(2, &Value::Str("zzz".into())),
            Some(vec![])
        );
        assert_eq!(
            c.backend().filter_eq(3, &Value::Bool(true)),
            Some(vec![0, 3])
        );
        // Nulls never match; type-mismatched literals match nothing.
        assert_eq!(c.backend().filter_eq(0, &Value::Null), Some(vec![]));
        assert_eq!(c.backend().filter_eq(2, &Value::Int(1)), Some(vec![]));
    }

    #[test]
    fn conversion_roundtrips() {
        let c = filled(BackendKind::Columnar);
        let r = c.convert_to(BackendKind::Reference);
        assert_eq!(r.kind(), BackendKind::Reference);
        assert_eq!(c, r);
        let back = r.convert_to(BackendKind::Columnar);
        assert_eq!(back.kind(), BackendKind::Columnar);
        assert_eq!(back, c);
    }

    #[test]
    fn cross_backend_extend() {
        let mut c = filled(BackendKind::Columnar);
        let r = filled(BackendKind::Reference);
        c.extend_from(&r).unwrap();
        assert_eq!(c.backend().row_count(), 8);
        assert_eq!(c.backend().value(4, 2), Value::Str("a".into()));
        assert_eq!(c.backend().value(5, 3), Value::Null);
    }
}
