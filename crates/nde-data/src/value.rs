//! Dynamically-typed cell values.

use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A single cell value in a [`crate::Table`].
///
/// `Null` models a *missing* value — the central object of study in this
/// toolkit. Comparisons order `Null` first, then by value within a type.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is not a valid payload; use `Null` for missing.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for `Null` (which is untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// `true` iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float; integers are widened to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Extract a boolean, if this value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total order used for sorting and grouping: `Null < Bool < Int/Float < Str`,
    /// with numeric types compared by value (so `Int(2) == Float(2.0)` sorts equal).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// A borrowed view of a cell value: like [`Value`] but with `Str` borrowing
/// the backing storage, so inspecting string cells allocates nothing.
///
/// Produced by `Table::get_ref`; convert with [`ValueRef::to_value`] when an
/// owned [`Value`] is genuinely needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed UTF-8 string.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl<'a> ValueRef<'a> {
    /// `true` iff this is [`ValueRef::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Extract a string slice, if this value is a `Str`.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a float; integers are widened to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ValueRef::Float(v) => Some(*v),
            ValueRef::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Materialize an owned [`Value`] (clones `Str` payloads).
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(v) => Value::Int(*v),
            ValueRef::Float(v) => Value::Float(*v),
            ValueRef::Str(s) => Value::Str((*s).to_owned()),
            ValueRef::Bool(b) => Value::Bool(*b),
        }
    }

    /// Borrow a [`Value`] as a `ValueRef`.
    pub fn from_value(v: &'a Value) -> ValueRef<'a> {
        match v {
            Value::Null => ValueRef::Null,
            Value::Int(x) => ValueRef::Int(*x),
            Value::Float(x) => ValueRef::Float(*x),
            Value::Str(s) => ValueRef::Str(s.as_str()),
            Value::Bool(b) => ValueRef::Bool(*b),
        }
    }
}

impl PartialEq<Value> for ValueRef<'_> {
    fn eq(&self, other: &Value) -> bool {
        *self == ValueRef::from_value(other)
    }
}

impl fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Null => write!(f, "null"),
            ValueRef::Int(v) => write!(f, "{v}"),
            ValueRef::Float(v) => write!(f, "{v}"),
            ValueRef::Str(s) => write!(f, "{s}"),
            ValueRef::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int(4));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn ordering_null_first_and_numeric_cross_type() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(
            Value::Str("b".into()).total_cmp(&Value::Str("a".into())),
            Ordering::Greater
        );
        assert_eq!(Value::Bool(false).total_cmp(&Value::Int(0)), Ordering::Less);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
