//! Deterministic parallelism and a utility-call memo cache.
//!
//! Every long-running estimator in the workspace is a loop over independent,
//! seed-derived work items (permutations, coalition samples, validation
//! points, pipeline tuples, possible worlds). This module provides the one
//! substrate they all share:
//!
//! - [`par_map_indexed`] / [`par_map_indexed_scratch`] — a
//!   seed-partition-friendly indexed map, executed on the process-wide
//!   resident [`WorkerPool`] (workers are spawned
//!   once and parked between jobs — never per call). Work item `i` must
//!   depend only on `i` (typically via `child_seed(seed, i)`), never on
//!   which worker ran it or what ran before it. Workers claim adaptively
//!   sized index chunks from an atomic cursor; results come back **sorted
//!   by index**, so any fold over them is order-independent of the schedule
//!   and the output is bit-identical for every thread count, including 1.
//! - [`par_map_indexed_scratch_scoped`] — the original scoped-spawn
//!   implementation, kept as the differential reference the pool is tested
//!   against (and as a fallback that owns no long-lived threads).
//! - [`MemoCache`] — a sharded, thread-safe memoization cache for utility
//!   evaluations keyed by a [`subset_fingerprint`] of the coalition's index
//!   set, so repeated coalition evaluations across permutations and across
//!   methods (TMC-Shapley, Banzhaf, Beta-Shapley) are served from cache.
//!
//! # Determinism contract
//!
//! `par_map_indexed` guarantees: if `f(i)` is a pure function of `i`, the
//! returned `(index, value)` pairs are identical for any `threads >= 1`.
//! Early termination via the `stop` flag only affects *which* items are
//! missing (a set of the highest claimed indices plus possibly gaps past
//! the first unevaluated index) — callers that need a deterministic cut
//! must fold the sorted results front-to-back and apply their own
//! (count-based) stopping rule, discarding the speculative tail.
//! Failures are deterministic too: the error reported is always the one
//! from the **smallest failing index**, matching what a sequential run
//! would hit first.

use crate::fxhash::{FxHashMap, FxHasher};
use crate::pool::WorkerPool;
use std::hash::Hasher;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a parallel map stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure<E> {
    /// `f` returned an error for the given index (the smallest failing one).
    Err(u64, E),
    /// `f` panicked for the given index; the payload is stringified.
    Panic(u64, String),
}

impl<E> WorkerFailure<E> {
    /// The failing work-item index.
    pub fn index(&self) -> u64 {
        match self {
            WorkerFailure::Err(i, _) => *i,
            WorkerFailure::Panic(i, _) => *i,
        }
    }
}

/// What one work item roughly costs, used to size chunks and to decide
/// whether parallelism is worth engaging at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CostHint {
    /// No idea — the first completed chunk is timed to find out.
    #[default]
    Unknown,
    /// Approximate per-item cost in nanoseconds (order of magnitude is
    /// plenty; it seeds the adaptive chunk size and the sequential-fallback
    /// decision, neither of which can affect output).
    PerItemNanos(u64),
}

impl CostHint {
    /// The hinted per-item cost, or 0 when unknown (0 doubles as the
    /// "probe required" sentinel in the adaptive scheduler).
    pub fn per_item_nanos(self) -> u64 {
        match self {
            CostHint::Unknown => 0,
            CostHint::PerItemNanos(ns) => ns.max(1),
        }
    }
}

/// Batches whose total hinted work is below this run sequentially: the
/// fixed cost of waking pool workers (~tens of µs) is not worth paying for
/// less than ~100µs of actual work.
pub const SEQUENTIAL_CUTOFF_NANOS: u64 = 100_000;

/// Clamp a requested thread count to something sensible for `items` items
/// of roughly `cost` each.
///
/// Cost-aware: when the total hinted work is under
/// [`SEQUENTIAL_CUTOFF_NANOS`], the answer is 1 regardless of item count —
/// a thousand nanosecond-scale items lose more to coordination than they
/// gain from threads. [`CostHint::Unknown`] preserves the old
/// item-count-only behavior.
pub fn effective_threads(requested: usize, items: usize, cost: CostHint) -> usize {
    let capped = requested.max(1).min(items.max(1));
    if capped > 1 {
        if let CostHint::PerItemNanos(ns) = cost {
            if (items as u64).saturating_mul(ns.max(1)) < SEQUENTIAL_CUTOFF_NANOS {
                return 1;
            }
        }
    }
    capped
}

/// Parallel map over an index range with per-worker scratch state.
///
/// Runs on the process-wide resident [`WorkerPool`]
/// (no threads are spawned per call). Each worker builds one scratch value
/// with `init` (reusable buffers — the whole point is to avoid per-item
/// allocation churn) and then repeatedly claims adaptively sized chunks of
/// indices, evaluating `f(&mut scratch, index)` for each. Results are
/// returned sorted by index.
///
/// Early exit:
/// - `stop` — cooperative flag; once set (by a worker, by the caller, or by
///   a budget heuristic) no *new* indices are claimed and the unevaluated
///   remainder of in-flight chunks is dropped (budgeted callers settle
///   sorted results front-to-back and re-claim gaps).
/// - An `Err` or panic from `f` sets an internal failure flag; after all
///   workers drain, the failure with the smallest index is returned.
///
/// With `threads == 1` the items run inline on the calling thread (no
/// pool interaction), in index order — bit-identical to the parallel
/// schedule by the module's determinism contract. Callers that know their
/// per-item cost should use
/// [`WorkerPool::map_indexed_scratch`](crate::pool::WorkerPool) directly
/// with a [`CostHint`] to skip the timing probe.
pub fn par_map_indexed_scratch<S, T, E, I, F>(
    threads: usize,
    range: Range<u64>,
    stop: &AtomicBool,
    init: I,
    f: F,
) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
where
    T: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> Result<T, E> + Sync,
{
    WorkerPool::shared().map_indexed_scratch(threads, range, stop, CostHint::Unknown, init, f)
}

/// The original scoped-spawn implementation of [`par_map_indexed_scratch`].
///
/// Spawns `threads` fresh scoped workers per call (single-item claims, no
/// chunking, no resident pool). Kept as the differential-testing reference
/// the pool implementation is checked against, and for callers that must
/// not share the process-wide pool. Same determinism, failure, and stop
/// contract as the pooled path.
pub fn par_map_indexed_scratch_scoped<S, T, E, I, F>(
    threads: usize,
    range: Range<u64>,
    stop: &AtomicBool,
    init: I,
    f: F,
) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
where
    T: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> Result<T, E> + Sync,
{
    let items = range.end.saturating_sub(range.start);
    let threads = effective_threads(
        threads,
        items.min(usize::MAX as u64) as usize,
        CostHint::Unknown,
    );
    let next = AtomicU64::new(range.start);
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<WorkerFailure<E>>> = Mutex::new(None);

    let worker = |out: &mut Vec<(u64, T)>| {
        let mut scratch = init();
        loop {
            if stop.load(Ordering::Relaxed) || failed.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= range.end {
                break;
            }
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i)));
            let fail = match outcome {
                Ok(Ok(v)) => {
                    out.push((i, v));
                    continue;
                }
                Ok(Err(e)) => WorkerFailure::Err(i, e),
                Err(payload) => WorkerFailure::Panic(i, panic_message(payload)),
            };
            failed.store(true, Ordering::Relaxed);
            let mut slot = failure.lock().unwrap_or_else(|p| p.into_inner());
            if slot.as_ref().is_none_or(|prev| fail.index() < prev.index()) {
                *slot = Some(fail);
            }
            break;
        }
    };

    let mut results: Vec<(u64, T)> = Vec::with_capacity(items as usize);
    if threads == 1 {
        worker(&mut results);
    } else {
        let collected: Vec<Vec<(u64, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        worker(&mut local);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker closures catch their own panics"))
                .collect()
        });
        for local in collected {
            results.extend(local);
        }
        results.sort_unstable_by_key(|&(i, _)| i);
    }

    match failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
        Some(fail) => Err(fail),
        None => Ok(results),
    }
}

/// [`par_map_indexed_scratch`] without per-worker scratch state.
pub fn par_map_indexed<T, E, F>(
    threads: usize,
    range: Range<u64>,
    stop: &AtomicBool,
    f: F,
) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    par_map_indexed_scratch(threads, range, stop, || (), |(), i| f(i))
}

/// [`par_map_indexed_scratch_scoped`] without per-worker scratch state.
pub fn par_map_indexed_scoped<T, E, F>(
    threads: usize,
    range: Range<u64>,
    stop: &AtomicBool,
    f: F,
) -> Result<Vec<(u64, T)>, WorkerFailure<E>>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    par_map_indexed_scratch_scoped(threads, range, stop, || (), |(), i| f(i))
}

/// Fixed-shape pairwise tree reduction.
///
/// Combines adjacent pairs `(0,1), (2,3), …` repeatedly until one value
/// remains; an odd trailing item is carried to the next round unchanged.
/// The association shape depends **only on the item count**, never on the
/// thread count that produced the items or on timing, which is what makes
/// a chunk-parallel floating-point accumulation bit-identical at every
/// thread count: compute per-chunk partials (deterministic per chunk),
/// sort them by index ([`par_map_indexed`] already does), then fold them
/// through this one canonical tree.
///
/// Returns `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, mut combine: impl FnMut(T, T) -> T) -> Option<T> {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

/// Stringify a panic payload (the common `&str` / `String` cases).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Fingerprint of a **sorted** index set (FxHash over length + elements).
///
/// Two coalitions get the same fingerprint iff they hold the same indices
/// (up to the negligible 64-bit collision probability), independent of the
/// order they were assembled in — which is what lets a TMC permutation
/// prefix hit a cache entry written by a Banzhaf subset sample.
pub fn subset_fingerprint_sorted(sorted: &[usize]) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
    let mut h = FxHasher::default();
    h.write_usize(sorted.len());
    for &i in sorted {
        h.write_usize(i);
    }
    h.finish()
}

/// Fingerprint of an index set in any order (sorts a scratch copy).
pub fn subset_fingerprint(indices: &[usize], scratch: &mut Vec<usize>) -> u64 {
    if indices.windows(2).all(|w| w[0] < w[1]) {
        return subset_fingerprint_sorted(indices);
    }
    scratch.clear();
    scratch.extend_from_slice(indices);
    scratch.sort_unstable();
    subset_fingerprint_sorted(scratch)
}

/// Shard count for [`MemoCache`] (power of two; keyed by low fingerprint bits).
const CACHE_SHARDS: usize = 16;

/// 64-bit membership bloom signature of an index set: bit `i % 64` is set
/// for every member `i`. Two sets with disjoint signatures are provably
/// disjoint; overlapping signatures may or may not share members — exactly
/// the one-sided test [`MemoCache::invalidate_members`] needs (it may
/// evict a still-valid entry, never keep a stale one).
pub fn member_signature(members: &[usize]) -> u64 {
    members.iter().fold(0u64, |sig, &i| sig | 1u64 << (i % 64))
}

/// A sharded, thread-safe memoization cache for utility evaluations.
///
/// Keys are [`subset_fingerprint`]s; values are the utility of that
/// coalition. The cache is **only** valid for a fixed utility function —
/// one `(model template, training set, validation set)` triple. Callers
/// must use a fresh cache (or [`MemoCache::clear`]) when any of the three
/// changes; the cache cannot detect mismatched reuse.
///
/// Lookups and inserts are lock-striped across 16 shards, so
/// concurrent workers rarely contend. A racing double-compute of the same
/// key is possible and harmless: utilities are deterministic, so both
/// writers insert the same value.
#[derive(Debug, Default)]
pub struct MemoCache {
    // Value plus the coalition's membership bloom signature (`!0` when the
    // membership is unknown, so unknown entries survive no invalidation).
    shards: [Mutex<FxHashMap<u64, (f64, u64)>>; CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> MemoCache {
        MemoCache::default()
    }

    fn shard(&self, key: u64) -> &Mutex<FxHashMap<u64, (f64, u64)>> {
        &self.shards[(key as usize) & (CACHE_SHARDS - 1)]
    }

    /// Look up a fingerprint, recording a hit or miss.
    pub fn get(&self, key: u64) -> Option<f64> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .map(|&(v, _)| v);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a computed utility under its fingerprint, with an unknown
    /// membership signature: the entry is treated as possibly containing
    /// *every* training row, so any [`MemoCache::invalidate_members`] call
    /// evicts it. Callers that know the coalition should prefer
    /// [`MemoCache::insert_with_members`].
    pub fn insert(&self, key: u64, value: f64) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, (value, !0u64));
    }

    /// Store a computed utility tagged with the coalition's
    /// [`member_signature`], enabling selective invalidation when training
    /// rows change.
    pub fn insert_with_members(&self, key: u64, value: f64, members: &[usize]) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, (value, member_signature(members)));
    }

    /// Evict every entry whose coalition may contain one of the `changed`
    /// training rows (signature overlap — conservative: an entry is only
    /// kept when its coalition provably avoids all changed rows). Returns
    /// the number of evicted entries. The hit/miss counters are untouched.
    ///
    /// This is what keeps a shared cache sound across accepted cleaning
    /// fixes: a fix to row `i` changes `U(S)` only for coalitions with
    /// `i ∈ S`, so entries provably excluding `i` stay valid.
    pub fn invalidate_members(&self, changed: &[usize]) -> usize {
        if changed.is_empty() {
            return 0;
        }
        let dirty = member_signature(changed);
        let mut evicted = 0;
        for s in &self.shards {
            let mut map = s.lock().unwrap_or_else(|p| p.into_inner());
            let before = map.len();
            map.retain(|_, &mut (_, sig)| sig & dirty == 0);
            evicted += before - map.len();
        }
        evicted
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when the cache was never queried.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct cached coalitions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries and reset the hit/miss counters. Required before
    /// reusing the cache for a different utility function.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|p| p.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Snapshot every `(fingerprint, utility)` pair, sorted by fingerprint
    /// so the result is deterministic regardless of insertion order — the
    /// serialization surface for cross-process cache persistence.
    pub fn entries(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .iter()
                    .map(|(&k, &(v, _))| (k, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Bulk-insert previously snapshotted entries (does not touch the
    /// hit/miss counters). Returns how many entries were loaded.
    pub fn load_entries(&self, entries: &[(u64, f64)]) -> usize {
        for &(k, v) in entries {
            self.insert(k, v);
        }
        entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_is_cost_aware() {
        // Unknown cost: old item-count-only clamping.
        assert_eq!(effective_threads(4, 100, CostHint::Unknown), 4);
        assert_eq!(effective_threads(4, 2, CostHint::Unknown), 2);
        assert_eq!(effective_threads(0, 0, CostHint::Unknown), 1);
        // Cheap small batch: total work under the cutoff goes sequential.
        assert_eq!(effective_threads(4, 1000, CostHint::PerItemNanos(50)), 1);
        // Same item count, expensive items: parallelism engages.
        assert_eq!(
            effective_threads(4, 1000, CostHint::PerItemNanos(1_000_000)),
            4
        );
        // Exactly at the cutoff counts as worth it.
        assert_eq!(effective_threads(4, 100, CostHint::PerItemNanos(1_000)), 4);
        // A sequential request stays sequential no matter the cost.
        assert_eq!(
            effective_threads(1, 1_000_000, CostHint::PerItemNanos(1_000_000)),
            1
        );
    }

    #[test]
    fn pooled_free_functions_match_scoped_reference() {
        let stop = AtomicBool::new(false);
        let work = |i: u64| Ok::<u64, ()>(i.rotate_left(7) ^ 0xabcd);
        let reference = par_map_indexed_scoped(1, 0..300, &stop, work).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                par_map_indexed(threads, 0..300, &stop, work).unwrap(),
                reference,
                "pooled threads={threads}"
            );
            assert_eq!(
                par_map_indexed_scoped(threads, 0..300, &stop, work).unwrap(),
                reference,
                "scoped threads={threads}"
            );
        }
    }

    #[test]
    fn results_are_sorted_and_thread_invariant() {
        let stop = AtomicBool::new(false);
        let run =
            |threads| par_map_indexed::<u64, (), _>(threads, 0..100, &stop, |i| Ok(i * i)).unwrap();
        let seq = run(1);
        assert_eq!(seq.len(), 100);
        assert!(seq.windows(2).all(|w| w[0].0 < w[1].0));
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), seq);
        }
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        let stop = AtomicBool::new(false);
        // Scratch buffer grows once per worker; items observe a warm buffer.
        let out = par_map_indexed_scratch::<Vec<u64>, usize, (), _, _>(
            4,
            0..40,
            &stop,
            Vec::new,
            |buf, i| {
                buf.push(i);
                Ok(buf.len())
            },
        )
        .unwrap();
        // Every worker's scratch length is monotone in the items it ran.
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|&(_, len)| len >= 1));
    }

    #[test]
    fn smallest_failing_index_wins() {
        let stop = AtomicBool::new(false);
        for threads in [1, 4] {
            let err = par_map_indexed::<(), String, _>(threads, 0..64, &stop, |i| {
                if i % 10 == 7 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, WorkerFailure::Err(7, "bad 7".into()));
        }
    }

    #[test]
    fn panics_are_caught_and_indexed() {
        let stop = AtomicBool::new(false);
        for threads in [1, 3] {
            let err = par_map_indexed::<(), (), _>(threads, 0..32, &stop, |i| {
                if i == 5 {
                    panic!("boom {i}");
                }
                Ok(())
            })
            .unwrap_err();
            match err {
                WorkerFailure::Panic(5, msg) => assert!(msg.contains("boom 5")),
                other => panic!("expected panic at 5, got {other:?}"),
            }
        }
    }

    #[test]
    fn stop_flag_halts_claiming() {
        let stop = AtomicBool::new(true);
        let out = par_map_indexed::<u64, (), _>(4, 0..1000, &stop, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn tree_reduce_shape_is_fixed_by_item_count() {
        assert_eq!(tree_reduce(Vec::<u64>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u64], |a, b| a + b), Some(7));
        // Record the association shape symbolically: 5 items reduce as
        // (((0+1)+(2+3))+4) regardless of how they were produced.
        let shape = tree_reduce((0..5).map(|i| i.to_string()).collect(), |a, b| {
            format!("({a}+{b})")
        })
        .unwrap();
        assert_eq!(shape, "(((0+1)+(2+3))+4)");
        // And sums still come out right at assorted counts.
        for n in [1u64, 2, 3, 4, 6, 17, 64, 100] {
            let total = tree_reduce((0..n).collect(), |a, b| a + b).unwrap();
            assert_eq!(total, n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn fingerprints_are_order_independent_and_distinct() {
        let mut scratch = Vec::new();
        let a = subset_fingerprint(&[3, 1, 2], &mut scratch);
        let b = subset_fingerprint(&[1, 2, 3], &mut scratch);
        assert_eq!(a, b);
        assert_eq!(b, subset_fingerprint_sorted(&[1, 2, 3]));
        assert_ne!(a, subset_fingerprint_sorted(&[1, 2]));
        assert_ne!(a, subset_fingerprint_sorted(&[1, 2, 4]));
        // Length is part of the key: {0} vs {} vs {0, 1}.
        assert_ne!(
            subset_fingerprint_sorted(&[0]),
            subset_fingerprint_sorted(&[])
        );
    }

    #[test]
    fn memo_cache_counts_hits_and_misses() {
        let cache = MemoCache::new();
        let key = subset_fingerprint_sorted(&[1, 2, 3]);
        assert_eq!(cache.get(key), None);
        cache.insert(key, 0.75);
        assert_eq!(cache.get(key), Some(0.75));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn memo_cache_membership_invalidation_is_selective_and_sound() {
        let cache = MemoCache::new();
        let a = subset_fingerprint_sorted(&[1, 2]);
        let b = subset_fingerprint_sorted(&[3, 4]);
        let c = subset_fingerprint_sorted(&[2, 3]);
        cache.insert_with_members(a, 0.1, &[1, 2]);
        cache.insert_with_members(b, 0.2, &[3, 4]);
        cache.insert_with_members(c, 0.3, &[2, 3]);
        // Plain insert = unknown membership: evicted by any invalidation.
        let d = subset_fingerprint_sorted(&[9]);
        cache.insert(d, 0.4);
        // Nothing changed → nothing evicted.
        assert_eq!(cache.invalidate_members(&[]), 0);
        assert_eq!(cache.len(), 4);
        // Row 2 changed: coalitions containing (or possibly containing) it
        // go; {3, 4} provably avoids it and survives.
        let evicted = cache.invalidate_members(&[2]);
        assert_eq!(evicted, 3);
        assert_eq!(cache.get(b), Some(0.2));
        assert_eq!(cache.get(a), None);
        assert_eq!(cache.get(c), None);
        assert_eq!(cache.get(d), None);
        // Signature aliasing (i % 64) is conservative, never unsound: row
        // 66 aliases row 2's bit, so a {66} coalition is evicted by a
        // change to row 2 — a spurious eviction, not a stale survival.
        let e = subset_fingerprint_sorted(&[66]);
        cache.insert_with_members(e, 0.5, &[66]);
        assert_eq!(cache.invalidate_members(&[2]), 1);
        assert_eq!(cache.get(e), None);
    }

    #[test]
    fn memo_cache_is_shareable_across_threads() {
        let cache = MemoCache::new();
        let stop = AtomicBool::new(false);
        let out = par_map_indexed::<f64, (), _>(4, 0..200, &stop, |i| {
            let key = i % 10; // heavy key reuse
            Ok(match cache.get(key) {
                Some(v) => v,
                None => {
                    let v = (key as f64).sqrt();
                    cache.insert(key, v);
                    v
                }
            })
        })
        .unwrap();
        assert_eq!(out.len(), 200);
        assert_eq!(cache.len(), 10);
        assert!(cache.hits() > 0);
        for (i, v) in out {
            assert_eq!(v, ((i % 10) as f64).sqrt());
        }
    }
}
