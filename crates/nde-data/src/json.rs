//! A small, dependency-free JSON value type with a parser and a pretty
//! printer, plus the [`ToJson`] trait used by experiment reports, the
//! cleaning leaderboard, and checkpoint files.
//!
//! Floats are printed with Rust's shortest round-trip formatting, so a value
//! survives a serialize → parse cycle bit-identically — a requirement for
//! checkpoint/resume determinism. Unsigned integers are kept exact (seeds
//! and RNG state words do not fit in an `f64`).

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal, kept exact (u64 range).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; may round > 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exact `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|u| u as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` is shortest-round-trip and always marks floats
                    // with a '.' or exponent, so parsing restores the type.
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no NaN/inf; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !fractional && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

/// Conversion into a [`Json`] value; the workspace's replacement for
/// `serde::Serialize` (derive with [`crate::json_struct!`]).
pub trait ToJson {
    /// Convert to a JSON document.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! uint_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

uint_to_json!(u8, u16, u32, u64, usize);

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                if *self >= 0 {
                    Json::UInt(*self as u64)
                } else {
                    Json::Float(*self as f64)
                }
            }
        }
    )*};
}

int_to_json!(i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Implement [`ToJson`] for a named-field struct by listing its fields:
///
/// ```
/// struct Point { x: f64, y: f64 }
/// nde_data::json_struct!(Point { x, y });
/// let j = nde_data::json::ToJson::to_json(&Point { x: 1.0, y: 2.0 });
/// assert!(j.get("x").is_some());
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_structures() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\"\nline".into())),
            ("count".into(), Json::UInt(u64::MAX)),
            ("score".into(), Json::Float(0.1 + 0.2)),
            ("neg".into(), Json::Float(-1.5e-8)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::UInt(1), Json::Float(2.5), Json::Str("x".into())]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // over-precise literal exercises rounding
    fn floats_roundtrip_bit_identically() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            123456789.123456789,
            2f64.powi(-1074),
        ] {
            let text = Json::Float(x).to_string_pretty();
            let back = Json::parse(&text).unwrap();
            let y = back.as_f64().unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} reparsed as {y}");
        }
    }

    #[test]
    fn u64_values_stay_exact() {
        for u in [0u64, 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let text = Json::UInt(u).to_string_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(u));
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}  extra").is_err());
        assert!(Json::parse("not json").is_err());
    }

    #[test]
    fn accessors_and_lookup() {
        let doc = Json::parse(r#"{"a": 3, "b": [1.5, true], "c": "s"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("c").unwrap().as_str(), Some("s"));
        assert!(doc.get("missing").is_none());
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap()[1].as_bool(),
            Some(true)
        );
    }

    #[test]
    fn json_struct_macro_serializes_fields_in_order() {
        struct Report {
            name: String,
            runs: usize,
            scores: Vec<f64>,
        }
        crate::json_struct!(Report { name, runs, scores });
        let j = Report {
            name: "x".into(),
            runs: 2,
            scores: vec![0.5, 1.0],
        }
        .to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("runs").unwrap().as_usize(), Some(2));
        assert_eq!(j.get("scores").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let text = Json::Float(f64::NAN).to_string_pretty();
        assert_eq!(text, "null");
    }
}
