//! Typed column planes: one contiguous value vector plus a null bitmap.
//!
//! The columnar backend stores each column as a *plane* — `Vec<i64>`,
//! `Vec<f64>`, `Vec<bool>`, or dictionary codes `Vec<u32>` — with nullness
//! tracked out-of-band in a packed [`NullBitmap`]. Hot loops (joins,
//! filters, featurization) read the value vector directly with no per-cell
//! enum dispatch, no `Option` boxing, and no string clones.

use crate::dict::Dict;
use std::sync::Arc;

/// A packed bitmap marking which rows are null (bit set ⇒ null).
///
/// Trailing bits past `len` are always zero, so two bitmaps with equal
/// contents compare equal structurally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    bits: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> NullBitmap {
        NullBitmap::default()
    }

    /// An empty bitmap with room for `cap` rows.
    pub fn with_capacity(cap: usize) -> NullBitmap {
        NullBitmap {
            bits: Vec::with_capacity(cap.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of rows tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one row's nullness.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if is_null {
            self.bits[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// `true` iff row `row` is null. Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        assert!(
            row < self.len,
            "bitmap row {row} out of bounds ({})",
            self.len
        );
        self.bits[row / 64] >> (row % 64) & 1 == 1
    }

    /// Overwrite row `row`'s nullness. Panics if out of bounds.
    pub fn set(&mut self, row: usize, is_null: bool) {
        assert!(
            row < self.len,
            "bitmap row {row} out of bounds ({})",
            self.len
        );
        let mask = 1u64 << (row % 64);
        if is_null {
            self.bits[row / 64] |= mask;
        } else {
            self.bits[row / 64] &= !mask;
        }
    }

    /// Number of null rows.
    pub fn count_nulls(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitmap with the rows at `indices` (callers bounds-check).
    pub fn take(&self, indices: &[usize]) -> NullBitmap {
        let mut out = NullBitmap::with_capacity(indices.len());
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Append all rows of `other`.
    pub fn extend_from(&mut self, other: &NullBitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// A plane of `Copy` primitives (`i64`, `f64`, `bool`) with a null bitmap.
///
/// Null rows hold `T::default()` padding in `values` so the vector stays
/// densely initialized; readers must consult `nulls` before trusting a slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrimPlane<T: Copy + Default> {
    /// Row values; null rows hold `T::default()` padding.
    pub values: Vec<T>,
    /// Which rows are null.
    pub nulls: NullBitmap,
}

impl<T: Copy + Default> PrimPlane<T> {
    /// An empty plane.
    pub fn new() -> PrimPlane<T> {
        PrimPlane {
            values: Vec::new(),
            nulls: NullBitmap::new(),
        }
    }

    /// An empty plane with capacity for `cap` rows.
    pub fn with_capacity(cap: usize) -> PrimPlane<T> {
        PrimPlane {
            values: Vec::with_capacity(cap),
            nulls: NullBitmap::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the plane has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a present value.
    pub fn push(&mut self, v: T) {
        self.values.push(v);
        self.nulls.push(false);
    }

    /// Append a null row.
    pub fn push_null(&mut self) {
        self.values.push(T::default());
        self.nulls.push(true);
    }

    /// The value at `row`, or `None` if null.
    #[inline]
    pub fn get(&self, row: usize) -> Option<T> {
        if self.nulls.get(row) {
            None
        } else {
            Some(self.values[row])
        }
    }

    /// Overwrite `row` (null padding is normalized to `T::default()`).
    pub fn set(&mut self, row: usize, v: Option<T>) {
        match v {
            Some(x) => {
                self.values[row] = x;
                self.nulls.set(row, false);
            }
            None => {
                self.values[row] = T::default();
                self.nulls.set(row, true);
            }
        }
    }

    /// Plane with the rows at `indices` (callers bounds-check).
    pub fn take(&self, indices: &[usize]) -> PrimPlane<T> {
        PrimPlane {
            values: indices.iter().map(|&i| self.values[i]).collect(),
            nulls: self.nulls.take(indices),
        }
    }

    /// Plane gathering `indices`, writing null rows for `None` slots —
    /// the outer-join gather.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> PrimPlane<T> {
        let mut out = PrimPlane::with_capacity(indices.len());
        for &i in indices {
            match i {
                Some(i) if !self.nulls.get(i) => out.push(self.values[i]),
                _ => out.push_null(),
            }
        }
        out
    }

    /// Append all rows of `other`.
    pub fn extend_from(&mut self, other: &PrimPlane<T>) {
        self.values.extend_from_slice(&other.values);
        self.nulls.extend_from(&other.nulls);
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.nulls.count_nulls()
    }
}

/// Integer plane.
pub type I64Plane = PrimPlane<i64>;
/// Float plane.
pub type F64Plane = PrimPlane<f64>;
/// Boolean plane.
pub type BoolPlane = PrimPlane<bool>;

/// A dictionary-encoded string plane: per-row `u32` codes into a shared
/// [`Dict`], plus a null bitmap. Null rows hold code `0` padding.
///
/// The dictionary is shared (`Arc`) across tables produced by `take`,
/// `filter`, and joins, so those operations gather 4-byte codes and never
/// touch string heap data.
#[derive(Debug, Clone, Default)]
pub struct StrPlane {
    dict: Arc<Dict>,
    /// Per-row dictionary codes; null rows hold `0` padding.
    pub codes: Vec<u32>,
    /// Which rows are null.
    pub nulls: NullBitmap,
}

impl StrPlane {
    /// An empty plane with its own empty dictionary.
    pub fn new() -> StrPlane {
        StrPlane::default()
    }

    /// An empty plane with capacity for `cap` rows.
    pub fn with_capacity(cap: usize) -> StrPlane {
        StrPlane {
            dict: Arc::new(Dict::new()),
            codes: Vec::with_capacity(cap),
            nulls: NullBitmap::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the plane has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Append a present string, interning it.
    pub fn push(&mut self, s: &str) {
        let code = Arc::make_mut(&mut self.dict).intern(s);
        self.codes.push(code);
        self.nulls.push(false);
    }

    /// Append a null row.
    pub fn push_null(&mut self) {
        self.codes.push(0);
        self.nulls.push(true);
    }

    /// The string at `row`, or `None` if null.
    #[inline]
    pub fn get(&self, row: usize) -> Option<&str> {
        if self.nulls.get(row) {
            None
        } else {
            Some(self.dict.value(self.codes[row]))
        }
    }

    /// Overwrite `row` (null padding is normalized to code `0`).
    pub fn set(&mut self, row: usize, v: Option<&str>) {
        match v {
            Some(s) => {
                let code = Arc::make_mut(&mut self.dict).intern(s);
                self.codes[row] = code;
                self.nulls.set(row, false);
            }
            None => {
                self.codes[row] = 0;
                self.nulls.set(row, true);
            }
        }
    }

    /// Plane with the rows at `indices`: gathers codes, shares the dict.
    pub fn take(&self, indices: &[usize]) -> StrPlane {
        let mut codes = Vec::with_capacity(indices.len());
        let mut nulls = NullBitmap::with_capacity(indices.len());
        for &i in indices {
            let null = self.nulls.get(i);
            codes.push(if null { 0 } else { self.codes[i] });
            nulls.push(null);
        }
        StrPlane {
            dict: Arc::clone(&self.dict),
            codes,
            nulls,
        }
    }

    /// Plane gathering `indices`, null rows for `None` slots; shares the dict.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> StrPlane {
        let mut codes = Vec::with_capacity(indices.len());
        let mut nulls = NullBitmap::with_capacity(indices.len());
        for &i in indices {
            match i {
                Some(i) if !self.nulls.get(i) => {
                    codes.push(self.codes[i]);
                    nulls.push(false);
                }
                _ => {
                    codes.push(0);
                    nulls.push(true);
                }
            }
        }
        StrPlane {
            dict: Arc::clone(&self.dict),
            codes,
            nulls,
        }
    }

    /// Append all rows of `other`. When the dictionaries are the same `Arc`
    /// the codes transfer directly; otherwise `other`'s codes are remapped
    /// through one intern per *distinct* value.
    pub fn extend_from(&mut self, other: &StrPlane) {
        if Arc::ptr_eq(&self.dict, &other.dict) {
            self.codes.extend_from_slice(&other.codes);
            self.nulls.extend_from(&other.nulls);
            return;
        }
        let dict = Arc::make_mut(&mut self.dict);
        let remap: Vec<u32> = other.dict.values().iter().map(|s| dict.intern(s)).collect();
        for row in 0..other.len() {
            if other.nulls.get(row) {
                self.codes.push(0);
                self.nulls.push(true);
            } else {
                self.codes.push(remap[other.codes[row] as usize]);
                self.nulls.push(false);
            }
        }
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.nulls.count_nulls()
    }

    /// Per-distinct-value row counts, indexed by code, plus the null count —
    /// the dictionary fast path behind `Table::value_counts`.
    pub fn code_counts(&self) -> (Vec<usize>, usize) {
        let mut counts = vec![0usize; self.dict.len()];
        let mut nulls = 0usize;
        for row in 0..self.len() {
            if self.nulls.get(row) {
                nulls += 1;
            } else {
                counts[self.codes[row] as usize] += 1;
            }
        }
        (counts, nulls)
    }
}

/// String planes are equal iff they hold the same logical string per row —
/// dictionaries with different code assignments can still compare equal.
impl PartialEq for StrPlane {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if Arc::ptr_eq(&self.dict, &other.dict) || self.dict == other.dict {
            return self.codes == other.codes && self.nulls == other.nulls;
        }
        (0..self.len()).all(|row| self.get(row) == other.get(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_set() {
        let mut b = NullBitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(129));
        assert_eq!(b.count_nulls(), 44);
        b.set(0, false);
        b.set(1, true);
        assert!(!b.get(0));
        assert!(b.get(1));
        assert_eq!(b.count_nulls(), 44);
    }

    #[test]
    fn bitmap_take_and_extend() {
        let mut b = NullBitmap::new();
        b.push(true);
        b.push(false);
        b.push(true);
        let t = b.take(&[2, 1, 1]);
        assert!(t.get(0));
        assert!(!t.get(1));
        assert!(!t.get(2));
        let mut c = NullBitmap::new();
        c.push(false);
        c.extend_from(&b);
        assert_eq!(c.len(), 4);
        assert!(c.get(1));
    }

    #[test]
    fn prim_plane_roundtrip() {
        let mut p: I64Plane = PrimPlane::new();
        p.push(7);
        p.push_null();
        p.push(-3);
        assert_eq!(p.get(0), Some(7));
        assert_eq!(p.get(1), None);
        assert_eq!(p.null_count(), 1);
        p.set(1, Some(5));
        p.set(0, None);
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(1), Some(5));
        // Null padding is normalized, so structurally equal planes compare equal.
        assert_eq!(p.values[0], 0);
        let t = p.take(&[2, 2, 0]);
        assert_eq!(t.get(0), Some(-3));
        assert_eq!(t.get(2), None);
        let o = p.take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(o.get(0), Some(5));
        assert_eq!(o.get(1), None);
        assert_eq!(o.get(2), None);
    }

    #[test]
    fn str_plane_interns_and_shares_dict() {
        let mut p = StrPlane::new();
        p.push("a");
        p.push("b");
        p.push("a");
        p.push_null();
        assert_eq!(p.dict().len(), 2);
        assert_eq!(p.codes, vec![0, 1, 0, 0]);
        assert_eq!(p.get(2), Some("a"));
        assert_eq!(p.get(3), None);
        let t = p.take(&[1, 3]);
        assert!(Arc::ptr_eq(&p.dict, &t.dict));
        assert_eq!(t.get(0), Some("b"));
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn str_plane_extend_remaps_codes() {
        let mut a = StrPlane::new();
        a.push("x");
        let mut b = StrPlane::new();
        b.push("y");
        b.push("x");
        b.push_null();
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(1), Some("y"));
        assert_eq!(a.get(2), Some("x"));
        assert_eq!(a.get(3), None);
        // Logical equality across different dictionaries.
        let mut c = StrPlane::new();
        c.push("x");
        c.push("y");
        c.push("x");
        c.push_null();
        assert_eq!(a, c);
    }

    #[test]
    fn str_plane_code_counts() {
        let mut p = StrPlane::new();
        for s in ["a", "b", "a", "a"] {
            p.push(s);
        }
        p.push_null();
        let (counts, nulls) = p.code_counts();
        assert_eq!(counts, vec![3, 1]);
        assert_eq!(nulls, 1);
    }
}
