//! Deterministic random number utilities.
//!
//! All stochastic code in the workspace goes through [`seeded`] (or an
//! explicitly passed `&mut impl Rng`) so that every experiment is exactly
//! reproducible from its seed.
//!
//! The generator and the `Rng`/`SliceRandom` traits are implemented in-tree
//! (no external `rand` dependency): the workspace must build and test with
//! no registry access, and owning the generator lets fault-tolerant runners
//! snapshot and restore the exact RNG state (see [`StdRng::state`] /
//! [`StdRng::from_state`]) for bit-identical checkpoint/resume.

use std::ops::{Range, RangeInclusive};

/// A deterministic RNG seeded from a `u64`.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so that
/// independent components (e.g. parallel Monte-Carlo workers) get
/// uncorrelated but reproducible streams.
pub fn child_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 step over the combined value: cheap, well-distributed.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** — fast, high-quality, and with a small, snapshotable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed deterministically from a `u64` by running SplitMix64 four times
    /// (the initialisation recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            // All-zero is the one invalid xoshiro state.
            s[0] = 1;
        }
        StdRng { s }
    }

    /// Snapshot the full generator state (for checkpoint files).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restore a generator from a snapshot taken with [`StdRng::state`].
    /// The restored generator continues the exact same stream.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        let s = if s == [0, 0, 0, 0] { [1, 0, 0, 0] } else { s };
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A source of randomness. Mirrors the subset of `rand::Rng` the workspace
/// actually uses, so call sites read identically.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of a primitive type (`f64` in `[0, 1)`, full-range
    /// integers, a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform draw from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical "standard" uniform distribution.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard(rng: &mut impl Rng) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut impl Rng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut impl Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard(rng: &mut impl Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Multiply-shift bounded draw in `0..span` (`span > 0`).
fn bounded(rng: &mut impl Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges a uniform value of type `T` can be drawn from. Generic over the
/// element type (rather than an associated type) so integer literals in
/// `rng.gen_range(1..=6)` unify with the expected result type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample(self, rng: &mut impl Rng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty f64 range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize, isize);

/// Random operations on slices (shuffling, uniform choice).
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut impl Rng);
    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<'a>(&'a self, rng: &mut impl Rng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut impl Rng) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut impl Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded(rng, self.len() as u64) as usize])
        }
    }
}

/// A uniformly random permutation of `0..n`.
pub fn permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm would be
/// fancier; a shuffle prefix is simple and `n` is small in our workloads).
pub fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let k = k.min(n);
    let mut idx = permutation(n, rng);
    idx.truncate(k);
    idx
}

/// A standard-normal draw via Box–Muller (avoids needing `rand_distr`).
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A normal draw with the given mean and standard deviation.
pub fn normal_with(mean: f64, sd: f64, rng: &mut impl Rng) -> f64 {
    mean + sd * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u32> = (0..5).map(|_| seeded(7).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| seeded(7).gen()).collect();
        assert_eq!(a, b);
        let mut r1 = seeded(7);
        let mut r2 = seeded(8);
        let x: u64 = r1.gen();
        let y: u64 = r2.gen();
        assert_ne!(x, y);
    }

    #[test]
    fn child_seeds_differ_per_stream() {
        let s0 = child_seed(42, 0);
        let s1 = child_seed(42, 1);
        assert_ne!(s0, s1);
        assert_eq!(child_seed(42, 0), s0);
    }

    #[test]
    fn state_snapshot_resumes_identical_stream() {
        let mut rng = seeded(99);
        for _ in 0..10 {
            rng.next_u64();
        }
        let snap = rng.state();
        let tail: Vec<u64> = (0..20).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let resumed_tail: Vec<u64> = (0..20).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(1);
        let mut p = permutation(100, &mut rng);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = seeded(2);
        let s = sample_indices(50, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
        // k > n clamps.
        assert_eq!(sample_indices(3, 10, &mut rng).len(), 3);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = seeded(5);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x = rng.gen_range(1..=6);
            assert!((1..=6).contains(&x));
            let y = rng.gen_range(0..10i64);
            assert!((0..10).contains(&y));
        }
        // Inclusive ranges reach both endpoints.
        let draws: Vec<i32> = (0..200).map(|_| rng.gen_range(0..=1)).collect();
        assert!(draws.contains(&0) && draws.contains(&1));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = seeded(6);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded(3);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
