//! Deterministic random number utilities.
//!
//! All stochastic code in the workspace goes through [`seeded`] (or an
//! explicitly passed `&mut impl Rng`) so that every experiment is exactly
//! reproducible from its seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A deterministic RNG seeded from a `u64`.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so that
/// independent components (e.g. parallel Monte-Carlo workers) get
/// uncorrelated but reproducible streams.
pub fn child_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 step over the combined value: cheap, well-distributed.
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniformly random permutation of `0..n`.
pub fn permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm would be
/// fancier; a shuffle prefix is simple and `n` is small in our workloads).
pub fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let k = k.min(n);
    let mut idx = permutation(n, rng);
    idx.truncate(k);
    idx
}

/// A standard-normal draw via Box–Muller (avoids needing `rand_distr`).
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A normal draw with the given mean and standard deviation.
pub fn normal_with(mean: f64, sd: f64, rng: &mut impl Rng) -> f64 {
    mean + sd * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u32> = (0..5).map(|_| seeded(7).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| seeded(7).gen()).collect();
        assert_eq!(a, b);
        let mut r1 = seeded(7);
        let mut r2 = seeded(8);
        let x: u64 = r1.gen();
        let y: u64 = r2.gen();
        assert_ne!(x, y);
    }

    #[test]
    fn child_seeds_differ_per_stream() {
        let s0 = child_seed(42, 0);
        let s1 = child_seed(42, 1);
        assert_ne!(s0, s1);
        assert_eq!(child_seed(42, 0), s0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(1);
        let mut p = permutation(100, &mut rng);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = seeded(2);
        let s = sample_indices(50, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
        // k > n clamps.
        assert_eq!(sample_indices(3, 10, &mut rng).len(), 3);
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded(3);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
