//! In-memory columnar tables with relational operations.
//!
//! Storage lives behind [`crate::backend::TableBackend`]: the default
//! [`BackendKind::Columnar`] backend keeps typed planes with dictionary-
//! encoded strings, while [`BackendKind::Reference`] retains the seed
//! `Value`-per-cell representation as a differential-testing reference.
//! Every relational operation is backend-agnostic and bit-identical across
//! backends and thread counts; the columnar backend additionally unlocks
//! radix-partitioned joins and vectorized scans.

use crate::backend::{BackendKind, ColumnarStore, Plane, Store};
use crate::column::Column;
use crate::fxhash::{hash_u64, FxHashMap};
use crate::par::{CostHint, WorkerFailure};
use crate::planes::{BoolPlane, F64Plane, I64Plane, StrPlane};
use crate::pool::WorkerPool;
use crate::schema::{DataType, Field, Schema};
use crate::value::{Value, ValueRef};
use crate::{DataError, Result};
use std::fmt;
use std::sync::atomic::AtomicBool;

/// Rows are probed/keyed in fixed-size chunks merged in chunk order, so
/// parallel joins and distinct produce bit-identical output (rows *and* row
/// lineage) for every thread count. The chunking is independent of
/// `threads`.
const ROW_CHUNK: usize = 256;

/// Build-side partitions of the radix join. Fixed (never derived from the
/// thread count) so the partition a key lands in — and therefore the whole
/// join output — is identical for every `threads` value.
const RADIX_PARTITIONS: usize = 16;

/// The radix partition of a canonical join key: top bits of its Fx hash.
#[inline]
fn radix_partition(key: u64) -> usize {
    (hash_u64(key) >> 60) as usize
}

/// Join output plus per-output-row `(left_row, right_row)` lineage.
pub type JoinResult = (Table, Vec<(usize, usize)>);
/// Left-join output; unmatched left rows carry `None` on the right.
pub type LeftJoinResult = (Table, Vec<(usize, Option<usize>)>);

/// A named, schema-ful columnar table.
///
/// Rows are addressed by position (`usize`). Relational operations that keep
/// or combine rows also report the *row lineage* (which input positions each
/// output row came from) so that the pipeline crate can assemble fine-grained
/// provenance without re-deriving it.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    store: Store,
    n_rows: usize,
}

/// Tables are equal iff name, schema, and logical cell contents match —
/// regardless of storage backend, so a columnar result can be `assert_eq!`d
/// against the `Value`-per-cell reference path.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.n_rows == other.n_rows
            && self.store == other.store
    }
}

impl Table {
    /// Create an empty table with the given schema (columnar backend).
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Table::empty_with_backend(name, schema, BackendKind::Columnar)
    }

    /// Create an empty table on an explicit storage backend.
    pub fn empty_with_backend(name: impl Into<String>, schema: Schema, kind: BackendKind) -> Self {
        let store = Store::empty(&schema, kind);
        Table {
            name: name.into(),
            schema,
            store,
            n_rows: 0,
        }
    }

    /// Create a table directly from columns (all must have equal length).
    pub fn from_columns(
        name: impl Into<String>,
        fields: Vec<Field>,
        columns: Vec<Column>,
    ) -> Result<Self> {
        if fields.len() != columns.len() {
            return Err(DataError::ArityMismatch {
                expected: fields.len(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (f, c) in fields.iter().zip(&columns) {
            if c.len() != n_rows {
                return Err(DataError::SchemaMismatch(format!(
                    "column `{}` has {} rows, expected {}",
                    f.name,
                    c.len(),
                    n_rows
                )));
            }
            if c.data_type() != f.dtype {
                return Err(DataError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype.name(),
                    got: c.data_type().name().to_owned(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema: Schema::new(fields)?,
            store: Store::from_columns(columns),
            n_rows,
        })
    }

    fn from_store(name: String, schema: Schema, store: Store, n_rows: usize) -> Table {
        Table {
            name,
            schema,
            store,
            n_rows,
        }
    }

    /// Table name (used in plan rendering and provenance source labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// Which storage backend this table uses.
    pub fn backend_kind(&self) -> BackendKind {
        self.store.kind()
    }

    /// The table converted to the requested backend (clone when already there).
    pub fn with_backend(&self, kind: BackendKind) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            store: self.store.convert_to(kind),
            n_rows: self.n_rows,
        }
    }

    /// The table on the `Value`-per-cell reference backend.
    pub fn to_reference(&self) -> Table {
        self.with_backend(BackendKind::Reference)
    }

    /// The table on the typed-plane columnar backend.
    pub fn to_columnar(&self) -> Table {
        self.with_backend(BackendKind::Columnar)
    }

    /// Materialize a column by name as an owned [`Column`].
    ///
    /// This is the compatibility path for cold code (fit-time encoders,
    /// injection sweeps): it copies the column once. Hot loops should use
    /// [`Table::get_ref`] or the typed plane views ([`Table::col_i64`],
    /// [`Table::col_f64`], [`Table::col_str`], [`Table::col_bool`]) instead.
    pub fn column(&self, name: &str) -> Result<Column> {
        let idx = self.schema.index_of(name)?;
        Ok(self.store.materialize(idx))
    }

    /// Materialize a column by position as an owned [`Column`].
    pub fn column_at(&self, idx: usize) -> Column {
        self.store.materialize(idx)
    }

    /// Borrow the `i64` plane of a column: `None` if the column is missing,
    /// not an `Int` column, or the table is on the reference backend.
    pub fn col_i64(&self, name: &str) -> Option<&I64Plane> {
        match self.plane_of(name)? {
            Plane::I64(p) => Some(p),
            _ => None,
        }
    }

    /// Borrow the `f64` plane of a column (see [`Table::col_i64`]).
    pub fn col_f64(&self, name: &str) -> Option<&F64Plane> {
        match self.plane_of(name)? {
            Plane::F64(p) => Some(p),
            _ => None,
        }
    }

    /// Borrow the dictionary-encoded string plane of a column
    /// (see [`Table::col_i64`]).
    pub fn col_str(&self, name: &str) -> Option<&StrPlane> {
        match self.plane_of(name)? {
            Plane::Str(p) => Some(p),
            _ => None,
        }
    }

    /// Borrow the `bool` plane of a column (see [`Table::col_i64`]).
    pub fn col_bool(&self, name: &str) -> Option<&BoolPlane> {
        match self.plane_of(name)? {
            Plane::Bool(p) => Some(p),
            _ => None,
        }
    }

    fn plane_of(&self, name: &str) -> Option<&Plane> {
        let idx = self.schema.index_of(name).ok()?;
        Some(self.store.as_columnar()?.plane(idx))
    }

    /// Sum of the non-null cells of a numeric column, when the backend can
    /// produce it without a per-row `Value` scan (columnar fast path).
    pub fn stats_sum(&self, name: &str) -> Result<Option<f64>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.store.backend().stats_sum(idx))
    }

    /// Number of distinct non-null values of a column, when cheap
    /// (dictionary-encoded string columns).
    pub fn distinct_count(&self, name: &str) -> Result<Option<usize>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.store.backend().distinct_count(idx))
    }

    /// The dictionary of a dictionary-encoded string column, in code order.
    pub fn dictionary_values(&self, name: &str) -> Result<Option<&[String]>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.store.backend().dictionary_values(idx))
    }

    /// Rows whose cell equals `value` under SQL equality, in ascending
    /// order, when the backend has a vectorized scan for it. `None` means
    /// "no fast path — evaluate per row", never "no matches".
    pub fn filter_eq_rows(&self, name: &str, value: &Value) -> Result<Option<Vec<usize>>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.store.backend().filter_eq(idx, value))
    }

    /// Append a row of values (arity- and type-checked).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate all cells first so a failed push cannot leave ragged columns.
        for (field, value) in self.schema.fields().iter().zip(&row) {
            let ok = value.is_null()
                || matches!(
                    (field.dtype, value),
                    (DataType::Int, Value::Int(_))
                        | (DataType::Float, Value::Float(_))
                        | (DataType::Float, Value::Int(_))
                        | (DataType::Str, Value::Str(_))
                        | (DataType::Bool, Value::Bool(_))
                );
            if !ok {
                return Err(DataError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    got: format!("{value:?}"),
                });
            }
        }
        self.store.push_row(row);
        self.n_rows += 1;
        Ok(())
    }

    /// Get the cell at (`row`, `col_name`) as an owned [`Value`].
    pub fn get(&self, row: usize, col_name: &str) -> Result<Value> {
        let idx = self.schema.index_of(col_name)?;
        if row >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(self.store.backend().value(row, idx))
    }

    /// Get the cell at (`row`, `col_name`) as a borrowed [`ValueRef`] —
    /// string cells borrow the backing storage instead of cloning.
    pub fn get_ref(&self, row: usize, col_name: &str) -> Result<ValueRef<'_>> {
        let idx = self.schema.index_of(col_name)?;
        if row >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(self.store.backend().value_ref(row, idx))
    }

    /// Borrowed cell at (`row`, column position `idx`); `None` out of bounds.
    pub fn value_ref_at(&self, row: usize, idx: usize) -> Option<ValueRef<'_>> {
        if row >= self.n_rows || idx >= self.schema.len() {
            return None;
        }
        Some(self.store.backend().value_ref(row, idx))
    }

    /// Overwrite the cell at (`row`, `col_name`).
    pub fn set(&mut self, row: usize, col_name: &str, value: Value) -> Result<()> {
        let idx = self.schema.index_of(col_name)?;
        self.store.set(row, idx, value).map_err(|e| match e {
            DataError::TypeMismatch { expected, got, .. } => DataError::TypeMismatch {
                column: col_name.to_owned(),
                expected,
                got,
            },
            other => other,
        })
    }

    /// Materialize a full row as values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok((0..self.schema.len())
            .map(|ci| self.store.backend().value(row, ci))
            .collect())
    }

    /// New table with the rows at `indices` (repeats and reorders allowed).
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        for &i in indices {
            if i >= self.n_rows {
                return Err(DataError::RowOutOfBounds {
                    index: i,
                    len: self.n_rows,
                });
            }
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            store: self.store.take(indices),
            n_rows: indices.len(),
        })
    }

    /// Keep rows satisfying `pred`; returns the filtered table and the kept
    /// original row indices (the row lineage of the output).
    pub fn filter<F: FnMut(usize) -> bool>(&self, mut pred: F) -> (Table, Vec<usize>) {
        let kept: Vec<usize> = (0..self.n_rows).filter(|&i| pred(i)).collect();
        let table = self.take(&kept).expect("indices in bounds by construction");
        (table, kept)
    }

    /// New table with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut fields = Vec::with_capacity(names.len());
        let mut idxs = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self.schema.index_of(n)?;
            fields.push(self.schema.fields()[idx].clone());
            idxs.push(idx);
        }
        let n_rows = if idxs.is_empty() { 0 } else { self.n_rows };
        Ok(Table {
            name: self.name.clone(),
            schema: Schema::new(fields)?,
            store: self.store.select_columns(&idxs),
            n_rows,
        })
    }

    /// Drop the named columns.
    pub fn drop_columns(&self, names: &[&str]) -> Result<Table> {
        for &n in names {
            self.schema.index_of(n)?;
        }
        let keep: Vec<&str> = self
            .schema
            .names()
            .into_iter()
            .filter(|n| !names.contains(n))
            .collect();
        self.select(&keep)
    }

    /// Add a column (length must match the table).
    pub fn add_column(&mut self, field: Field, column: Column) -> Result<()> {
        if column.len() != self.n_rows {
            return Err(DataError::SchemaMismatch(format!(
                "new column `{}` has {} rows, table has {}",
                field.name,
                column.len(),
                self.n_rows
            )));
        }
        if column.data_type() != field.dtype {
            return Err(DataError::TypeMismatch {
                column: field.name.clone(),
                expected: field.dtype.name(),
                got: column.data_type().name().to_owned(),
            });
        }
        self.schema.push(field)?;
        self.store.add_column(column);
        Ok(())
    }

    /// Append all rows of `other` (schemas must match exactly).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch(format!(
                "cannot append `{}` to `{}`: schemas differ",
                other.name, self.name
            )));
        }
        self.store.extend_from(&other.store)?;
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// Inner hash join on `left_key` = `right_key`.
    ///
    /// Null keys never match (SQL semantics). Columns from `right` are added
    /// with their names, except the join key which is dropped; a name clash
    /// on a non-key column gets a `_right` suffix. Returns the joined table
    /// plus per-output-row lineage `(left_row, right_row)`.
    pub fn hash_join(&self, right: &Table, left_key: &str, right_key: &str) -> Result<JoinResult> {
        self.hash_join_par(right, left_key, right_key, 1)
    }

    /// [`Table::hash_join`] with a parallel probe phase. On the columnar
    /// backend the build side is radix-partitioned on the key's hash prefix
    /// (partitions claimed through the resident worker pool); probe rows are
    /// processed in fixed chunks merged in index order — the joined table
    /// and lineage are bit-identical for every `threads` value.
    pub fn hash_join_par(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        threads: usize,
    ) -> Result<JoinResult> {
        self.join_impl(right, left_key, right_key, false, threads)
            .map(|(t, lineage)| {
                let pairs = lineage
                    .into_iter()
                    .map(|(l, r)| (l, r.expect("inner join always has a right match")))
                    .collect();
                (t, pairs)
            })
    }

    /// Left outer hash join on `left_key` = `right_key`.
    ///
    /// Unmatched left rows appear once with nulls on the right side; lineage
    /// records `None` for their right row.
    pub fn left_join(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
    ) -> Result<LeftJoinResult> {
        self.left_join_par(right, left_key, right_key, 1)
    }

    /// [`Table::left_join`] with the parallel probe phase of
    /// [`Table::hash_join_par`]; output is thread-count invariant.
    pub fn left_join_par(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        threads: usize,
    ) -> Result<LeftJoinResult> {
        self.join_impl(right, left_key, right_key, true, threads)
    }

    fn join_impl(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        outer: bool,
        threads: usize,
    ) -> Result<LeftJoinResult> {
        let lk = self.schema.index_of(left_key)?;
        let rk = right.schema.index_of(right_key)?;
        if self.schema.fields()[lk].dtype != right.schema.fields()[rk].dtype {
            return Err(DataError::SchemaMismatch(format!(
                "join key types differ: {} vs {}",
                self.schema.fields()[lk].dtype,
                right.schema.fields()[rk].dtype
            )));
        }

        let lineage = match (self.store.as_columnar(), right.store.as_columnar()) {
            (Some(ls), Some(rs)) => {
                self.probe_radix(ls, rs, lk, rk, right.n_rows, outer, threads)?
            }
            _ => self.probe_reference(right, lk, rk, outer, threads)?,
        };
        let out = self.materialize_join(right, &lineage, rk)?;
        Ok((out, lineage))
    }

    /// Seed join kernel: build one `JoinKey` hash map over the right side,
    /// probe in chunks. Used whenever either side is on the reference
    /// backend; its output defines the contract the radix kernel must match
    /// bit for bit.
    fn probe_reference(
        &self,
        right: &Table,
        lk: usize,
        rk: usize,
        outer: bool,
        threads: usize,
    ) -> Result<Vec<(usize, Option<usize>)>> {
        // Build phase: hash right side on the key.
        let mut index: FxHashMap<JoinKey, Vec<usize>> = FxHashMap::default();
        for row in 0..right.n_rows {
            if let Some(key) = JoinKey::from_value(&right.store.backend().value(row, rk)) {
                index.entry(key).or_default().push(row);
            }
        }

        // Probe phase: each chunk probes its own row range; chunk outputs
        // are merged in index order (par_map_indexed sorts by index and
        // runs inline for one thread), so lineage is schedule-independent.
        let chunks = self.n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~10µs per probe chunk: small joins stay sequential.
        let cost = CostHint::PerItemNanos(10_000);
        let parts = WorkerPool::shared()
            .map_indexed(threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(self.n_rows);
                let mut part: Vec<(usize, Option<usize>)> = Vec::with_capacity(end - start);
                for row in start..end {
                    let key = JoinKey::from_value(&self.store.backend().value(row, lk));
                    match key.and_then(|k| index.get(&k)) {
                        Some(rows) => part.extend(rows.iter().map(|&r| (row, Some(r)))),
                        None if outer => part.push((row, None)),
                        None => {}
                    }
                }
                Ok::<_, DataError>(part)
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                // Unreachable in practice: probing only reads bounds-checked
                // columns and the prebuilt index.
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("join probe worker panicked: {msg}"))
                }
            })?;
        let mut lineage: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.n_rows);
        for (_, part) in parts {
            lineage.extend(part);
        }
        Ok(lineage)
    }

    /// Columnar join kernel: canonical `u64` keys are read plane-to-plane
    /// (string keys join by dictionary-code remapping, never by string
    /// comparison), the build side is radix-partitioned on the key's hash
    /// prefix with partitions claimed through the resident worker pool, and
    /// the probe phase is chunked exactly like the reference kernel. Both
    /// the partition count and chunk size are independent of `threads`, and
    /// every per-partition row list is collected in ascending row order, so
    /// the lineage is bit-identical to [`Table::probe_reference`].
    #[allow(clippy::too_many_arguments)]
    fn probe_radix(
        &self,
        left_store: &ColumnarStore,
        right_store: &ColumnarStore,
        lk: usize,
        rk: usize,
        right_rows: usize,
        outer: bool,
        threads: usize,
    ) -> Result<Vec<(usize, Option<usize>)>> {
        // For string keys, remap left dictionary codes into the right
        // dictionary's code space: one hash lookup per *distinct* left
        // value, not per row. A left value absent on the right can never
        // match, which is exactly how a null key behaves in both join types.
        let remap: Option<Vec<Option<u32>>> = match (left_store.plane(lk), right_store.plane(rk)) {
            (Plane::Str(lp), Plane::Str(rp)) => Some(
                lp.dict()
                    .values()
                    .iter()
                    .map(|s| rp.dict().code_of(s))
                    .collect(),
            ),
            _ => None,
        };
        let (lkeys, lvalid) = plane_join_keys(left_store.plane(lk), remap.as_deref());
        let (rkeys, rvalid) = plane_join_keys(right_store.plane(rk), None);

        // Build phase: workers claim whole partitions; each scans the right
        // key plane and keeps the rows hashing into its partition, in
        // ascending row order.
        let stop = AtomicBool::new(false);
        // Each partition task scans every right key (~2ns per u64 read).
        let build_cost = CostHint::PerItemNanos((right_rows as u64).max(1) * 2);
        let parts = WorkerPool::shared()
            .map_indexed(
                threads,
                0..RADIX_PARTITIONS as u64,
                &stop,
                build_cost,
                |p| {
                    let p = p as usize;
                    let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                    for row in 0..right_rows {
                        if rvalid[row] && radix_partition(rkeys[row]) == p {
                            map.entry(rkeys[row]).or_default().push(row as u32);
                        }
                    }
                    Ok::<_, DataError>(map)
                },
            )
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("radix build worker panicked: {msg}"))
                }
            })?;
        let partitions: Vec<FxHashMap<u64, Vec<u32>>> = parts.into_iter().map(|(_, m)| m).collect();

        // Probe phase: chunked over left rows, merged in chunk order.
        let chunks = self.n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~2µs per probe chunk of u64 lookups.
        let cost = CostHint::PerItemNanos(2_000);
        let parts = WorkerPool::shared()
            .map_indexed(threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(self.n_rows);
                let mut part: Vec<(usize, Option<usize>)> = Vec::with_capacity(end - start);
                for row in start..end {
                    if lvalid[row] {
                        let key = lkeys[row];
                        match partitions[radix_partition(key)].get(&key) {
                            Some(rows) => {
                                part.extend(rows.iter().map(|&r| (row, Some(r as usize))))
                            }
                            None if outer => part.push((row, None)),
                            None => {}
                        }
                    } else if outer {
                        part.push((row, None));
                    }
                }
                Ok::<_, DataError>(part)
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("radix probe worker panicked: {msg}"))
                }
            })?;
        let mut lineage: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.n_rows);
        for (_, part) in parts {
            lineage.extend(part);
        }
        Ok(lineage)
    }

    /// Materialize a join output from its `(left_row, right_row)` lineage:
    /// all left columns gathered at the left rows, then the right columns
    /// (minus the join key at position `right_key`, name clashes suffixed
    /// `_right`) gathered at the right rows with nulls for `None`.
    ///
    /// On the columnar backend this gathers planes — string columns copy
    /// 4-byte dictionary codes and share the dictionary. Used by the hash
    /// joins and by `nde-pipeline`'s fuzzy join.
    pub fn materialize_join(
        &self,
        right: &Table,
        lineage: &[(usize, Option<usize>)],
        right_key: usize,
    ) -> Result<Table> {
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        for (ci, f) in right.schema.fields().iter().enumerate() {
            if ci == right_key {
                continue; // drop duplicate join key
            }
            let name = if self.schema.contains(&f.name) {
                format!("{}_right", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.dtype));
        }
        let left_idx: Vec<usize> = lineage.iter().map(|&(l, _)| l).collect();

        if let (Some(ls), Some(rs)) = (self.store.as_columnar(), right.store.as_columnar()) {
            let right_idx: Vec<Option<usize>> = lineage.iter().map(|&(_, r)| r).collect();
            let mut planes: Vec<Plane> = ls.planes().iter().map(|p| p.take(&left_idx)).collect();
            for (ci, p) in rs.planes().iter().enumerate() {
                if ci == right_key {
                    continue;
                }
                planes.push(p.take_opt(&right_idx));
            }
            let store = Store::Columnar(ColumnarStore::from_planes(planes));
            return Ok(Table::from_store(
                self.name.clone(),
                Schema::new(fields)?,
                store,
                lineage.len(),
            ));
        }

        // Reference (or mixed-backend) path: the seed per-cell materializer.
        let mut columns: Vec<Column> = (0..self.schema.len())
            .map(|ci| self.column_at(ci).take(&left_idx))
            .collect();
        for (ci, f) in right.schema.fields().iter().enumerate() {
            if ci == right_key {
                continue;
            }
            let rcol = right.column_at(ci);
            let mut col = Column::with_capacity(f.dtype, lineage.len());
            for &(_, r) in lineage {
                let v = match r {
                    Some(r) => rcol.get(r).expect("in bounds"),
                    None => Value::Null,
                };
                col.push(v).expect("type preserved");
            }
            columns.push(col);
        }
        let store = Store::from_columns_with_kind(columns, self.store.kind());
        Ok(Table::from_store(
            self.name.clone(),
            Schema::new(fields)?,
            store,
            lineage.len(),
        ))
    }

    /// Group rows by a key column, keeping the first occurrence of each
    /// distinct key value.
    ///
    /// Returns `(kept, owner)`: `kept` lists the surviving input rows in
    /// first-occurrence order, and `owner[row]` is the `kept` slot every
    /// input row collapsed into. Keys use hash-join equality (floats by bit
    /// pattern; all nulls form one class — within a typed column this is
    /// exactly `total_cmp == Equal` on same-typed values). On the columnar
    /// backend keys are read plane-to-plane (string columns group by
    /// dictionary code, no string materialization); on the reference
    /// backend key extraction is chunk-parallel. The grouping scan folds
    /// rows in index order, so the result is bit-identical for every
    /// `threads` value and backend.
    pub fn distinct_by(&self, key: &str, threads: usize) -> Result<(Vec<usize>, Vec<usize>)> {
        let k = self.schema.index_of(key)?;
        if let Some(cs) = self.store.as_columnar() {
            // Plane-to-plane: canonical u64 keys, no Value materialization.
            // Extraction is a single linear scan of primitive values — too
            // cheap to outweigh chunk scheduling, so it runs sequentially.
            let (keys, valid) = plane_join_keys(cs.plane(k), None);
            let mut kept: Vec<usize> = Vec::new();
            let mut owner: Vec<usize> = Vec::with_capacity(self.n_rows);
            let mut slot_of: FxHashMap<Option<u64>, usize> = FxHashMap::default();
            for row in 0..self.n_rows {
                let key = valid[row].then_some(keys[row]);
                let next = kept.len();
                let slot = *slot_of.entry(key).or_insert(next);
                if slot == next {
                    kept.push(row);
                }
                owner.push(slot);
            }
            return Ok((kept, owner));
        }
        let chunks = self.n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~6µs per key-extraction chunk.
        let cost = CostHint::PerItemNanos(6_000);
        let parts = WorkerPool::shared()
            .map_indexed(threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(self.n_rows);
                let keys: Vec<Option<JoinKey>> = (start..end)
                    .map(|row| JoinKey::from_value(&self.store.backend().value(row, k)))
                    .collect();
                Ok::<_, DataError>(keys)
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("distinct key worker panicked: {msg}"))
                }
            })?;
        let mut kept: Vec<usize> = Vec::new();
        let mut owner: Vec<usize> = Vec::with_capacity(self.n_rows);
        let mut slot_of: FxHashMap<Option<JoinKey>, usize> = FxHashMap::default();
        for (_, keys) in parts {
            for key in keys {
                let row = owner.len();
                let next = kept.len();
                let slot = *slot_of.entry(key).or_insert(next);
                if slot == next {
                    kept.push(row);
                }
                owner.push(slot);
            }
        }
        Ok((kept, owner))
    }

    /// Stable sort by a column (nulls first); returns the sorted table and
    /// the original index of each output row.
    pub fn sort_by(&self, col_name: &str) -> Result<(Table, Vec<usize>)> {
        let col = self.column(col_name)?;
        let mut idx: Vec<usize> = (0..self.n_rows).collect();
        idx.sort_by(|&a, &b| {
            col.get(a)
                .expect("in bounds")
                .total_cmp(&col.get(b).expect("in bounds"))
        });
        let table = self.take(&idx)?;
        Ok((table, idx))
    }

    /// Count of rows per distinct value of a column (nulls grouped under
    /// `Value::Null`), sorted by count descending with ties broken by value
    /// ascending.
    ///
    /// Counting goes through a hash map (one probe per row, not one scan per
    /// distinct value); dictionary-encoded string columns count per code
    /// with no hashing at all. The output order is deterministic: groups are
    /// accumulated in first-occurrence order and the final sort is stable.
    pub fn value_counts(&self, col_name: &str) -> Result<Vec<(Value, usize)>> {
        let idx = self.schema.index_of(col_name)?;

        // Dictionary fast path: count per code into a dense vector.
        if let Some(cs) = self.store.as_columnar() {
            if let Plane::Str(p) = cs.plane(idx) {
                let (code_counts, nulls) = p.code_counts();
                let mut counts: Vec<(Value, usize)> = Vec::new();
                if nulls > 0 {
                    counts.push((Value::Null, nulls));
                }
                for (code, &n) in code_counts.iter().enumerate() {
                    if n > 0 {
                        counts.push((Value::Str(p.dict().value(code as u32).to_owned()), n));
                    }
                }
                counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
                return Ok(counts);
            }
        }

        // General path: group through a hash map keyed on a canonical form
        // of the cell (floats canonicalize -0.0 to 0.0, matching the
        // `total_cmp == Equal` grouping of the seed implementation), keeping
        // the first-seen value as the group representative.
        let mut counts: Vec<(Value, usize)> = Vec::new();
        let mut slot_of: FxHashMap<Option<CountKey>, usize> = FxHashMap::default();
        for row in 0..self.n_rows {
            let v = self.store.backend().value(row, idx);
            let key = CountKey::from_value(&v);
            let next = counts.len();
            let slot = *slot_of.entry(key).or_insert(next);
            if slot == next {
                counts.push((v, 1));
            } else {
                counts[slot].1 += 1;
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        Ok(counts)
    }

    /// Fraction of missing cells per column, by column name order.
    pub fn missing_profile(&self) -> Vec<(String, f64)> {
        self.schema
            .fields()
            .iter()
            .enumerate()
            .map(|(ci, f)| {
                let frac = if self.n_rows == 0 {
                    0.0
                } else {
                    self.store.backend().null_count(ci) as f64 / self.n_rows as f64
                };
                (f.name.clone(), frac)
            })
            .collect()
    }

    /// Render the first `limit` rows as an aligned ASCII table.
    pub fn pretty(&self, limit: usize) -> String {
        let n = self.n_rows.min(limit);
        let headers: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
        for row in 0..n {
            let mut r = Vec::with_capacity(self.n_cols());
            for (ci, width) in widths.iter_mut().enumerate() {
                let v = self.store.backend().value_ref(row, ci);
                let mut s = match v {
                    ValueRef::Null => "null".to_string(),
                    ValueRef::Int(x) => x.to_string(),
                    ValueRef::Float(x) => x.to_string(),
                    ValueRef::Str(x) => x.to_string(),
                    ValueRef::Bool(x) => x.to_string(),
                };
                if s.len() > 40 {
                    s.truncate(37);
                    s.push_str("...");
                }
                *width = (*width).max(s.len());
                r.push(s);
            }
            cells.push(r);
        }
        let mut out = String::new();
        let fmt_row = |vals: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = vals
                .iter()
                .zip(widths)
                .map(|(v, w)| format!("{v:<w$}", w = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for r in &cells {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        if self.n_rows > n {
            out.push_str(&format!("... {} more rows\n", self.n_rows - n));
        }
        out
    }
}

/// Canonical `u64` join keys for one plane, plus per-row validity (`false`
/// for null rows, and for string values that cannot exist on the build side
/// when a `remap` into the build dictionary is supplied).
///
/// The canonical forms match [`JoinKey`] equality exactly: `i64` by value
/// (bijective into `u64`), floats by bit pattern, bools as 0/1, strings by
/// dictionary code.
fn plane_join_keys(plane: &Plane, remap: Option<&[Option<u32>]>) -> (Vec<u64>, Vec<bool>) {
    let n = plane.len();
    let mut keys = vec![0u64; n];
    let mut valid = vec![false; n];
    match plane {
        Plane::I64(p) => {
            for row in 0..n {
                keys[row] = p.values[row] as u64;
                valid[row] = !p.nulls.get(row);
            }
        }
        Plane::F64(p) => {
            for row in 0..n {
                keys[row] = p.values[row].to_bits();
                valid[row] = !p.nulls.get(row);
            }
        }
        Plane::Bool(p) => {
            for row in 0..n {
                keys[row] = p.values[row] as u64;
                valid[row] = !p.nulls.get(row);
            }
        }
        Plane::Str(p) => match remap {
            None => {
                for row in 0..n {
                    keys[row] = p.codes[row] as u64;
                    valid[row] = !p.nulls.get(row);
                }
            }
            Some(remap) => {
                for row in 0..n {
                    if !p.nulls.get(row) {
                        if let Some(code) = remap[p.codes[row] as usize] {
                            keys[row] = code as u64;
                            valid[row] = true;
                        }
                    }
                }
            }
        },
    }
    (keys, valid)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} rows x {} cols]",
            self.name,
            self.n_rows,
            self.n_cols()
        )
    }
}

/// A hashable, equality-comparable join key derived from a non-null [`Value`].
///
/// Floats are keyed by bit pattern; joins on float keys therefore require
/// exact representation equality, which matches hash-join semantics in real
/// engines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    FloatBits(u64),
    Str(String),
    Bool(bool),
}

impl JoinKey {
    fn from_value(v: &Value) -> Option<JoinKey> {
        match v {
            Value::Null => None,
            Value::Int(x) => Some(JoinKey::Int(*x)),
            Value::Float(x) => Some(JoinKey::FloatBits(x.to_bits())),
            Value::Str(s) => Some(JoinKey::Str(s.clone())),
            Value::Bool(b) => Some(JoinKey::Bool(*b)),
        }
    }
}

/// Whether two cell values match under hash-join key equality: nulls never
/// match (SQL semantics), floats compare by bit pattern, everything else by
/// value — exactly the `JoinKey` relation the join kernels hash on. Used
/// by incremental join maintenance to re-derive match decisions for single
/// inserted/deleted tuples without rebuilding a hash table.
pub fn join_key_matches(a: &Value, b: &Value) -> bool {
    match (JoinKey::from_value(a), JoinKey::from_value(b)) {
        (Some(ka), Some(kb)) => ka == kb,
        _ => false,
    }
}

/// Grouping key for [`Table::value_counts`]: like [`JoinKey`] but floats
/// canonicalize `-0.0` to `0.0`, so grouping matches `total_cmp == Equal`
/// (which treats the two zero representations as the same value).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CountKey {
    Int(i64),
    FloatBits(u64),
    Str(String),
    Bool(bool),
}

impl CountKey {
    fn from_value(v: &Value) -> Option<CountKey> {
        match v {
            Value::Null => None,
            Value::Int(x) => Some(CountKey::Int(*x)),
            Value::Float(x) => {
                let x = if *x == 0.0 { 0.0 } else { *x };
                Some(CountKey::FloatBits(x.to_bits()))
            }
            Value::Str(s) => Some(CountKey::Str(s.clone())),
            Value::Bool(b) => Some(CountKey::Bool(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::empty(
            "people",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("age", DataType::Float),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "ada".into(), 36.0.into()])
            .unwrap();
        t.push_row(vec![2.into(), "bob".into(), Value::Null])
            .unwrap();
        t.push_row(vec![3.into(), "eve".into(), 29.0.into()])
            .unwrap();
        t
    }

    fn jobs() -> Table {
        let mut t = Table::empty(
            "jobs",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("sector", DataType::Str),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "health".into()]).unwrap();
        t.push_row(vec![3.into(), "tech".into()]).unwrap();
        t.push_row(vec![3.into(), "tech2".into()]).unwrap();
        t
    }

    #[test]
    fn push_and_get() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.get(0, "name").unwrap(), Value::Str("ada".into()));
        assert_eq!(t.get(1, "age").unwrap(), Value::Null);
        assert!(t.get(0, "nope").is_err());
        assert!(t.get(9, "name").is_err());
    }

    #[test]
    fn get_ref_borrows_without_cloning() {
        let t = people();
        assert_eq!(t.get_ref(0, "name").unwrap(), ValueRef::Str("ada"));
        assert_eq!(t.get_ref(1, "age").unwrap(), ValueRef::Null);
        assert_eq!(t.get_ref(2, "id").unwrap(), ValueRef::Int(3));
        assert!(t.get_ref(0, "nope").is_err());
        assert!(t.get_ref(9, "name").is_err());
        // By-position access for serializers.
        assert_eq!(t.value_ref_at(0, 1), Some(ValueRef::Str("ada")));
        assert_eq!(t.value_ref_at(9, 0), None);
        assert_eq!(t.value_ref_at(0, 9), None);
    }

    #[test]
    fn plane_views_expose_typed_columns() {
        let t = people();
        let ids = t.col_i64("id").unwrap();
        assert_eq!(ids.values, vec![1, 2, 3]);
        assert_eq!(ids.null_count(), 0);
        let ages = t.col_f64("age").unwrap();
        assert_eq!(ages.get(0), Some(36.0));
        assert_eq!(ages.get(1), None);
        let names = t.col_str("name").unwrap();
        assert_eq!(names.get(2), Some("eve"));
        assert_eq!(names.dict().len(), 3);
        // Wrong type, unknown column, and reference backend all yield None.
        assert!(t.col_f64("id").is_none());
        assert!(t.col_i64("nope").is_none());
        assert!(t.to_reference().col_i64("id").is_none());
    }

    #[test]
    fn backend_conversion_preserves_equality() {
        let t = people();
        assert_eq!(t.backend_kind(), BackendKind::Columnar);
        let r = t.to_reference();
        assert_eq!(r.backend_kind(), BackendKind::Reference);
        assert_eq!(t, r);
        assert_eq!(r.to_columnar(), t);
    }

    #[test]
    fn columnar_stat_hooks() {
        let t = people();
        assert_eq!(t.stats_sum("id").unwrap(), Some(6.0));
        assert_eq!(t.stats_sum("age").unwrap(), Some(65.0));
        assert_eq!(t.stats_sum("name").unwrap(), None);
        assert_eq!(t.distinct_count("name").unwrap(), Some(3));
        assert!(t.dictionary_values("name").unwrap().is_some());
        assert_eq!(
            t.filter_eq_rows("id", &Value::Int(3)).unwrap(),
            Some(vec![2])
        );
        assert!(t.stats_sum("nope").is_err());
        // Reference backend: no fast paths.
        let r = t.to_reference();
        assert_eq!(r.stats_sum("id").unwrap(), None);
        assert_eq!(r.filter_eq_rows("id", &Value::Int(3)).unwrap(), None);
    }

    #[test]
    fn push_row_validates_before_mutating() {
        let mut t = people();
        // Wrong type in the last column: nothing must be appended.
        let err = t.push_row(vec![4.into(), "zed".into(), "oops".into()]);
        assert!(err.is_err());
        assert_eq!(t.n_rows(), 3);
        for ci in 0..t.n_cols() {
            assert_eq!(t.column_at(ci).len(), 3);
        }
    }

    #[test]
    fn arity_checked() {
        let mut t = people();
        assert!(matches!(
            t.push_row(vec![1.into()]),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn take_filter_select() {
        let t = people();
        let (young, kept) = t.filter(|i| {
            t.get(i, "age")
                .unwrap()
                .as_float()
                .map(|a| a < 35.0)
                .unwrap_or(false)
        });
        assert_eq!(kept, vec![2]);
        assert_eq!(young.get(0, "name").unwrap(), Value::Str("eve".into()));

        let s = t.select(&["name", "id"]).unwrap();
        assert_eq!(s.schema().names(), vec!["name", "id"]);
        assert!(t.select(&["nope"]).is_err());

        let d = t.drop_columns(&["age"]).unwrap();
        assert_eq!(d.schema().names(), vec!["id", "name"]);
    }

    #[test]
    fn inner_join_with_duplicates_and_lineage() {
        let (joined, lineage) = people().hash_join(&jobs(), "id", "id").unwrap();
        // id=1 matches once, id=2 not at all, id=3 twice.
        assert_eq!(joined.n_rows(), 3);
        assert_eq!(lineage, vec![(0, 0), (2, 1), (2, 2)]);
        assert_eq!(
            joined.get(0, "sector").unwrap(),
            Value::Str("health".into())
        );
        assert_eq!(joined.get(2, "sector").unwrap(), Value::Str("tech2".into()));
        // Join key from the right side is dropped.
        assert!(!joined.schema().contains("id_right"));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let (joined, lineage) = people().left_join(&jobs(), "id", "id").unwrap();
        assert_eq!(joined.n_rows(), 4);
        assert_eq!(lineage[1], (1, None));
        assert_eq!(joined.get(1, "sector").unwrap(), Value::Null);
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = people();
        l.set(0, "id", Value::Null).unwrap();
        let (joined, _) = l.hash_join(&jobs(), "id", "id").unwrap();
        // Only id=3 matches now (twice).
        assert_eq!(joined.n_rows(), 2);
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let t = people();
        assert!(t.hash_join(&jobs(), "name", "id").is_err());
    }

    #[test]
    fn string_key_join_matches_across_dictionaries() {
        // Left and right dictionaries intern in different orders; the radix
        // kernel must join by remapped codes, not raw code values.
        let mut left = Table::empty(
            "l",
            Schema::new(vec![
                Field::new("k", DataType::Str),
                Field::new("i", DataType::Int),
            ])
            .unwrap(),
        );
        for (i, s) in ["b", "a", "c", "b"].iter().enumerate() {
            left.push_row(vec![(*s).into(), (i as i64).into()]).unwrap();
        }
        left.push_row(vec![Value::Null, 9.into()]).unwrap();
        let mut right = Table::empty(
            "r",
            Schema::new(vec![
                Field::new("k", DataType::Str),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
        );
        for (s, t) in [("a", "ta"), ("b", "tb"), ("z", "tz")] {
            right.push_row(vec![s.into(), t.into()]).unwrap();
        }
        let (joined, lineage) = left.hash_join(&right, "k", "k").unwrap();
        assert_eq!(lineage, vec![(0, 1), (1, 0), (3, 1)]);
        assert_eq!(joined.get(0, "tag").unwrap(), Value::Str("tb".into()));
        assert_eq!(joined.get(1, "tag").unwrap(), Value::Str("ta".into()));
        // Identical to the reference kernel, including the left-outer case.
        let (ref_joined, ref_lineage) = left
            .to_reference()
            .hash_join(&right.to_reference(), "k", "k")
            .unwrap();
        assert_eq!(joined, ref_joined);
        assert_eq!(lineage, ref_lineage);
        let (lj, ll) = left.left_join(&right, "k", "k").unwrap();
        let (rlj, rll) = left
            .to_reference()
            .left_join(&right.to_reference(), "k", "k")
            .unwrap();
        assert_eq!(lj, rlj);
        assert_eq!(ll, rll);
    }

    #[test]
    fn sort_nulls_first() {
        let (sorted, perm) = people().sort_by("age").unwrap();
        assert_eq!(perm, vec![1, 2, 0]);
        assert_eq!(sorted.get(0, "age").unwrap(), Value::Null);
    }

    #[test]
    fn value_counts_descending() {
        let t = jobs();
        let counts = t.value_counts("id").unwrap();
        assert_eq!(counts[0], (Value::Int(3), 2));
        assert_eq!(counts[1], (Value::Int(1), 1));
    }

    #[test]
    fn value_counts_groups_nulls_and_sorts_ties_by_value() {
        let mut t = Table::empty(
            "t",
            Schema::new(vec![Field::new("s", DataType::Str)]).unwrap(),
        );
        for v in ["b", "a", "b", "a", "c"] {
            t.push_row(vec![v.into()]).unwrap();
        }
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let counts = t.value_counts("s").unwrap();
        // a and b tie at 2: value-ascending order; null group counted.
        assert_eq!(
            counts,
            vec![
                (Value::Null, 2),
                (Value::Str("a".into()), 2),
                (Value::Str("b".into()), 2),
                (Value::Str("c".into()), 1),
            ]
        );
        // Identical on the reference backend (general hash-map path).
        assert_eq!(t.to_reference().value_counts("s").unwrap(), counts);
    }

    #[test]
    fn append_and_schema_mismatch() {
        let mut a = people();
        let b = people();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 6);
        let c = jobs();
        assert!(a.append(&c).is_err());
    }

    #[test]
    fn missing_profile_reports_fractions() {
        let t = people();
        let prof = t.missing_profile();
        let age = prof.iter().find(|(n, _)| n == "age").unwrap();
        assert!((age.1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_column_checks_length_and_type() {
        let mut t = people();
        let ok = Column::Bool(vec![Some(true), Some(false), None]);
        t.add_column(Field::new("flag", DataType::Bool), ok)
            .unwrap();
        assert_eq!(t.n_cols(), 4);
        let short = Column::Bool(vec![Some(true)]);
        assert!(t
            .add_column(Field::new("flag2", DataType::Bool), short)
            .is_err());
        let wrong = Column::Int(vec![Some(1), Some(2), Some(3)]);
        assert!(t
            .add_column(Field::new("flag3", DataType::Bool), wrong)
            .is_err());
    }

    #[test]
    fn pretty_prints_header_and_rows() {
        let s = people().pretty(2);
        assert!(s.contains("name"));
        assert!(s.contains("ada"));
        assert!(s.contains("1 more rows"));
    }

    /// A left table big enough to span several probe chunks, with nulls,
    /// duplicate keys, and misses sprinkled in.
    fn wide_tables() -> (Table, Table) {
        let mut left = Table::empty(
            "left",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("pos", DataType::Int),
            ])
            .unwrap(),
        );
        for i in 0..1000i64 {
            let key = if i % 97 == 0 {
                Value::Null
            } else {
                Value::Int(i % 61)
            };
            left.push_row(vec![key, i.into()]).unwrap();
        }
        let mut right = Table::empty(
            "right",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
        );
        for i in 0..50i64 {
            right
                .push_row(vec![i.into(), format!("tag{i}").into()])
                .unwrap();
            if i % 7 == 0 {
                right
                    .push_row(vec![i.into(), format!("dup{i}").into()])
                    .unwrap();
            }
        }
        (left, right)
    }

    #[test]
    fn parallel_join_is_bit_identical_to_sequential() {
        let (left, right) = wide_tables();
        let (seq, seq_lineage) = left.hash_join(&right, "k", "k").unwrap();
        for threads in [2, 4, 7] {
            let (par, par_lineage) = left.hash_join_par(&right, "k", "k", threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_lineage, seq_lineage, "threads={threads}");
        }
        let (lseq, lseq_lineage) = left.left_join(&right, "k", "k").unwrap();
        assert!(lseq.n_rows() > seq.n_rows(), "outer keeps unmatched rows");
        for threads in [2, 4, 7] {
            let (lpar, lpar_lineage) = left.left_join_par(&right, "k", "k", threads).unwrap();
            assert_eq!(lpar, lseq, "threads={threads}");
            assert_eq!(lpar_lineage, lseq_lineage, "threads={threads}");
        }
    }

    #[test]
    fn radix_join_is_bit_identical_to_reference_kernel() {
        let (left, right) = wide_tables();
        let (lref, rref) = (left.to_reference(), right.to_reference());
        for threads in [1, 2, 4, 7] {
            let (col, col_lineage) = left.hash_join_par(&right, "k", "k", threads).unwrap();
            let (refr, ref_lineage) = lref.hash_join_par(&rref, "k", "k", threads).unwrap();
            assert_eq!(col, refr, "threads={threads}");
            assert_eq!(col_lineage, ref_lineage, "threads={threads}");
            let (lcol, lcol_lineage) = left.left_join_par(&right, "k", "k", threads).unwrap();
            let (lrefr, lref_lineage) = lref.left_join_par(&rref, "k", "k", threads).unwrap();
            assert_eq!(lcol, lrefr, "threads={threads}");
            assert_eq!(lcol_lineage, lref_lineage, "threads={threads}");
        }
    }

    #[test]
    fn distinct_by_keeps_first_occurrence_and_is_thread_invariant() {
        let (left, _) = wide_tables();
        let (kept, owner) = left.distinct_by("k", 1).unwrap();
        // 61 int keys + the null class.
        assert_eq!(kept.len(), 62);
        assert_eq!(owner.len(), left.n_rows());
        // Every row's owner slot holds an equal key (nulls group together).
        for (row, &slot) in owner.iter().enumerate() {
            let a = left.get(row, "k").unwrap();
            let b = left.get(kept[slot], "k").unwrap();
            assert_eq!(a.is_null(), b.is_null());
            if !a.is_null() {
                assert_eq!(a, b);
            }
        }
        // First occurrence wins: kept rows appear in ascending order and
        // own themselves.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
        for (slot, &row) in kept.iter().enumerate() {
            assert_eq!(owner[row], slot);
        }
        for threads in [2, 4, 7] {
            let par = left.distinct_by("k", threads).unwrap();
            assert_eq!(par, (kept.clone(), owner.clone()), "threads={threads}");
        }
        // And identical on the reference backend.
        let r = left.to_reference();
        assert_eq!(r.distinct_by("k", 1).unwrap(), (kept, owner));
    }

    #[test]
    fn distinct_by_unknown_column_rejected() {
        let (left, _) = wide_tables();
        assert!(left.distinct_by("nope", 1).is_err());
    }
}
