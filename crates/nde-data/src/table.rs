//! In-memory columnar tables with relational operations.

use crate::column::Column;
use crate::fxhash::FxHashMap;
use crate::par::{CostHint, WorkerFailure};
use crate::pool::WorkerPool;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::{DataError, Result};
use std::fmt;
use std::sync::atomic::AtomicBool;

/// Rows are probed/keyed in fixed-size chunks merged in chunk order, so
/// parallel joins and distinct produce bit-identical output (rows *and* row
/// lineage) for every thread count. The chunking is independent of
/// `threads`.
const ROW_CHUNK: usize = 256;

/// Join output plus per-output-row `(left_row, right_row)` lineage.
pub type JoinResult = (Table, Vec<(usize, usize)>);
/// Left-join output; unmatched left rows carry `None` on the right.
pub type LeftJoinResult = (Table, Vec<(usize, Option<usize>)>);

/// A named, schema-ful columnar table.
///
/// Rows are addressed by position (`usize`). Relational operations that keep
/// or combine rows also report the *row lineage* (which input positions each
/// output row came from) so that the pipeline crate can assemble fine-grained
/// provenance without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Create a table directly from columns (all must have equal length).
    pub fn from_columns(
        name: impl Into<String>,
        fields: Vec<Field>,
        columns: Vec<Column>,
    ) -> Result<Self> {
        if fields.len() != columns.len() {
            return Err(DataError::ArityMismatch {
                expected: fields.len(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (f, c) in fields.iter().zip(&columns) {
            if c.len() != n_rows {
                return Err(DataError::SchemaMismatch(format!(
                    "column `{}` has {} rows, expected {}",
                    f.name,
                    c.len(),
                    n_rows
                )));
            }
            if c.data_type() != f.dtype {
                return Err(DataError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype.name(),
                    got: c.data_type().name().to_owned(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema: Schema::new(fields)?,
            columns,
            n_rows,
        })
    }

    /// Table name (used in plan rendering and provenance source labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Borrow a column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Append a row of values (arity- and type-checked).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DataError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        // Validate all cells first so a failed push cannot leave ragged columns.
        for (i, (col, value)) in self.columns.iter().zip(&row).enumerate() {
            let ok = value.is_null()
                || matches!(
                    (col.data_type(), value),
                    (DataType::Int, Value::Int(_))
                        | (DataType::Float, Value::Float(_))
                        | (DataType::Float, Value::Int(_))
                        | (DataType::Str, Value::Str(_))
                        | (DataType::Bool, Value::Bool(_))
                );
            if !ok {
                return Err(DataError::TypeMismatch {
                    column: self.schema.fields()[i].name.clone(),
                    expected: col.data_type().name(),
                    got: format!("{value:?}"),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value).expect("validated above");
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Get the cell at (`row`, `col_name`).
    pub fn get(&self, row: usize, col_name: &str) -> Result<Value> {
        let col = self.column(col_name)?;
        col.get(row).ok_or(DataError::RowOutOfBounds {
            index: row,
            len: self.n_rows,
        })
    }

    /// Overwrite the cell at (`row`, `col_name`).
    pub fn set(&mut self, row: usize, col_name: &str, value: Value) -> Result<()> {
        let idx = self.schema.index_of(col_name)?;
        self.columns[idx].set(row, value).map_err(|e| match e {
            DataError::TypeMismatch { expected, got, .. } => DataError::TypeMismatch {
                column: col_name.to_owned(),
                expected,
                got,
            },
            other => other,
        })
    }

    /// Materialize a full row as values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| c.get(row).expect("bounds checked"))
            .collect())
    }

    /// New table with the rows at `indices` (repeats and reorders allowed).
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        for &i in indices {
            if i >= self.n_rows {
                return Err(DataError::RowOutOfBounds {
                    index: i,
                    len: self.n_rows,
                });
            }
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            n_rows: indices.len(),
        })
    }

    /// Keep rows satisfying `pred`; returns the filtered table and the kept
    /// original row indices (the row lineage of the output).
    pub fn filter<F: FnMut(usize) -> bool>(&self, mut pred: F) -> (Table, Vec<usize>) {
        let kept: Vec<usize> = (0..self.n_rows).filter(|&i| pred(i)).collect();
        let table = self.take(&kept).expect("indices in bounds by construction");
        (table, kept)
    }

    /// New table with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut fields = Vec::with_capacity(names.len());
        let mut columns = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self.schema.index_of(n)?;
            fields.push(self.schema.fields()[idx].clone());
            columns.push(self.columns[idx].clone());
        }
        Table::from_columns(self.name.clone(), fields, columns)
    }

    /// Drop the named columns.
    pub fn drop_columns(&self, names: &[&str]) -> Result<Table> {
        for &n in names {
            self.schema.index_of(n)?;
        }
        let keep: Vec<&str> = self
            .schema
            .names()
            .into_iter()
            .filter(|n| !names.contains(n))
            .collect();
        self.select(&keep)
    }

    /// Add a column (length must match the table).
    pub fn add_column(&mut self, field: Field, column: Column) -> Result<()> {
        if column.len() != self.n_rows {
            return Err(DataError::SchemaMismatch(format!(
                "new column `{}` has {} rows, table has {}",
                field.name,
                column.len(),
                self.n_rows
            )));
        }
        if column.data_type() != field.dtype {
            return Err(DataError::TypeMismatch {
                column: field.name.clone(),
                expected: field.dtype.name(),
                got: column.data_type().name().to_owned(),
            });
        }
        self.schema.push(field)?;
        self.columns.push(column);
        Ok(())
    }

    /// Append all rows of `other` (schemas must match exactly).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch(format!(
                "cannot append `{}` to `{}`: schemas differ",
                other.name, self.name
            )));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b)?;
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// Inner hash join on `left_key` = `right_key`.
    ///
    /// Null keys never match (SQL semantics). Columns from `right` are added
    /// with their names, except the join key which is dropped; a name clash
    /// on a non-key column gets a `_right` suffix. Returns the joined table
    /// plus per-output-row lineage `(left_row, right_row)`.
    pub fn hash_join(&self, right: &Table, left_key: &str, right_key: &str) -> Result<JoinResult> {
        self.hash_join_par(right, left_key, right_key, 1)
    }

    /// [`Table::hash_join`] with a chunk-parallel probe phase: the build
    /// side is hashed once, probe rows are partitioned into fixed chunks,
    /// and chunk outputs are merged in index order — the joined table and
    /// lineage are bit-identical for every `threads` value.
    pub fn hash_join_par(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        threads: usize,
    ) -> Result<JoinResult> {
        self.join_impl(right, left_key, right_key, false, threads)
            .map(|(t, lineage)| {
                let pairs = lineage
                    .into_iter()
                    .map(|(l, r)| (l, r.expect("inner join always has a right match")))
                    .collect();
                (t, pairs)
            })
    }

    /// Left outer hash join on `left_key` = `right_key`.
    ///
    /// Unmatched left rows appear once with nulls on the right side; lineage
    /// records `None` for their right row.
    pub fn left_join(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
    ) -> Result<LeftJoinResult> {
        self.left_join_par(right, left_key, right_key, 1)
    }

    /// [`Table::left_join`] with the chunk-parallel probe phase of
    /// [`Table::hash_join_par`]; output is thread-count invariant.
    pub fn left_join_par(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        threads: usize,
    ) -> Result<LeftJoinResult> {
        self.join_impl(right, left_key, right_key, true, threads)
    }

    fn join_impl(
        &self,
        right: &Table,
        left_key: &str,
        right_key: &str,
        outer: bool,
        threads: usize,
    ) -> Result<LeftJoinResult> {
        let lk = self.schema.index_of(left_key)?;
        let rk = right.schema.index_of(right_key)?;
        if self.schema.fields()[lk].dtype != right.schema.fields()[rk].dtype {
            return Err(DataError::SchemaMismatch(format!(
                "join key types differ: {} vs {}",
                self.schema.fields()[lk].dtype,
                right.schema.fields()[rk].dtype
            )));
        }

        // Build phase: hash right side on the key.
        let mut index: FxHashMap<JoinKey, Vec<usize>> = FxHashMap::default();
        for row in 0..right.n_rows {
            if let Some(key) = JoinKey::from_value(&right.columns[rk].get(row).expect("in bounds"))
            {
                index.entry(key).or_default().push(row);
            }
        }

        // Probe phase: each chunk probes its own row range; chunk outputs
        // are merged in index order (par_map_indexed sorts by index and
        // runs inline for one thread), so lineage is schedule-independent.
        let chunks = self.n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~10µs per 64-row probe chunk: small joins stay sequential.
        let cost = CostHint::PerItemNanos(10_000);
        let parts = WorkerPool::shared()
            .map_indexed(threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(self.n_rows);
                let mut part: Vec<(usize, Option<usize>)> = Vec::with_capacity(end - start);
                for row in start..end {
                    let key = JoinKey::from_value(&self.columns[lk].get(row).expect("in bounds"));
                    match key.and_then(|k| index.get(&k)) {
                        Some(rows) => part.extend(rows.iter().map(|&r| (row, Some(r)))),
                        None if outer => part.push((row, None)),
                        None => {}
                    }
                }
                Ok::<_, DataError>(part)
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                // Unreachable in practice: probing only reads bounds-checked
                // columns and the prebuilt index.
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("join probe worker panicked: {msg}"))
                }
            })?;
        let mut lineage: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.n_rows);
        for (_, part) in parts {
            lineage.extend(part);
        }

        // Materialize output columns.
        let left_idx: Vec<usize> = lineage.iter().map(|&(l, _)| l).collect();
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        let mut columns: Vec<Column> = self.columns.iter().map(|c| c.take(&left_idx)).collect();

        for (ci, f) in right.schema.fields().iter().enumerate() {
            if ci == rk {
                continue; // drop duplicate join key
            }
            let name = if self.schema.contains(&f.name) {
                format!("{}_right", f.name)
            } else {
                f.name.clone()
            };
            let mut col = Column::with_capacity(f.dtype, lineage.len());
            for &(_, r) in &lineage {
                let v = match r {
                    Some(r) => right.columns[ci].get(r).expect("in bounds"),
                    None => Value::Null,
                };
                col.push(v).expect("type preserved");
            }
            fields.push(Field::new(name, f.dtype));
            columns.push(col);
        }

        let out = Table::from_columns(self.name.clone(), fields, columns)?;
        Ok((out, lineage))
    }

    /// Group rows by a key column, keeping the first occurrence of each
    /// distinct key value.
    ///
    /// Returns `(kept, owner)`: `kept` lists the surviving input rows in
    /// first-occurrence order, and `owner[row]` is the `kept` slot every
    /// input row collapsed into. Keys use hash-join equality (floats by bit
    /// pattern; all nulls form one class — within a typed column this is
    /// exactly `total_cmp == Equal` on same-typed values). Key extraction is
    /// chunk-parallel; the grouping scan folds chunks in index order, so the
    /// result is bit-identical for every `threads` value.
    pub fn distinct_by(&self, key: &str, threads: usize) -> Result<(Vec<usize>, Vec<usize>)> {
        let k = self.schema.index_of(key)?;
        let chunks = self.n_rows.div_ceil(ROW_CHUNK) as u64;
        let stop = AtomicBool::new(false);
        // ~6µs per 64-row key-extraction chunk.
        let cost = CostHint::PerItemNanos(6_000);
        let parts = WorkerPool::shared()
            .map_indexed(threads, 0..chunks, &stop, cost, |c| {
                let start = c as usize * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(self.n_rows);
                let keys: Vec<Option<JoinKey>> = (start..end)
                    .map(|row| JoinKey::from_value(&self.columns[k].get(row).expect("in bounds")))
                    .collect();
                Ok::<_, DataError>(keys)
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => {
                    DataError::InvalidArgument(format!("distinct key worker panicked: {msg}"))
                }
            })?;
        let mut kept: Vec<usize> = Vec::new();
        let mut owner: Vec<usize> = Vec::with_capacity(self.n_rows);
        let mut slot_of: FxHashMap<Option<JoinKey>, usize> = FxHashMap::default();
        for (_, keys) in parts {
            for key in keys {
                let row = owner.len();
                let next = kept.len();
                let slot = *slot_of.entry(key).or_insert(next);
                if slot == next {
                    kept.push(row);
                }
                owner.push(slot);
            }
        }
        Ok((kept, owner))
    }

    /// Stable sort by a column (nulls first); returns the sorted table and
    /// the original index of each output row.
    pub fn sort_by(&self, col_name: &str) -> Result<(Table, Vec<usize>)> {
        let col = self.column(col_name)?;
        let mut idx: Vec<usize> = (0..self.n_rows).collect();
        idx.sort_by(|&a, &b| {
            col.get(a)
                .expect("in bounds")
                .total_cmp(&col.get(b).expect("in bounds"))
        });
        let table = self.take(&idx)?;
        Ok((table, idx))
    }

    /// Count of rows per distinct value of a column (nulls grouped under `Value::Null`).
    pub fn value_counts(&self, col_name: &str) -> Result<Vec<(Value, usize)>> {
        let col = self.column(col_name)?;
        let mut counts: Vec<(Value, usize)> = Vec::new();
        'rows: for row in 0..self.n_rows {
            let v = col.get(row).expect("in bounds");
            for (seen, c) in counts.iter_mut() {
                if seen.total_cmp(&v) == std::cmp::Ordering::Equal
                    && seen.data_type() == v.data_type()
                {
                    *c += 1;
                    continue 'rows;
                }
            }
            counts.push((v, 1));
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        Ok(counts)
    }

    /// Fraction of missing cells per column, by column name order.
    pub fn missing_profile(&self) -> Vec<(String, f64)> {
        self.schema
            .fields()
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| {
                let frac = if self.n_rows == 0 {
                    0.0
                } else {
                    c.null_count() as f64 / self.n_rows as f64
                };
                (f.name.clone(), frac)
            })
            .collect()
    }

    /// Render the first `limit` rows as an aligned ASCII table.
    pub fn pretty(&self, limit: usize) -> String {
        let n = self.n_rows.min(limit);
        let headers: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
        for row in 0..n {
            let mut r = Vec::with_capacity(self.n_cols());
            for (ci, col) in self.columns.iter().enumerate() {
                let mut s = col.get(row).expect("in bounds").to_string();
                if s.len() > 40 {
                    s.truncate(37);
                    s.push_str("...");
                }
                widths[ci] = widths[ci].max(s.len());
                r.push(s);
            }
            cells.push(r);
        }
        let mut out = String::new();
        let fmt_row = |vals: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = vals
                .iter()
                .zip(widths)
                .map(|(v, w)| format!("{v:<w$}", w = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for r in &cells {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        if self.n_rows > n {
            out.push_str(&format!("... {} more rows\n", self.n_rows - n));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} rows x {} cols]",
            self.name,
            self.n_rows,
            self.n_cols()
        )
    }
}

/// A hashable, equality-comparable join key derived from a non-null [`Value`].
///
/// Floats are keyed by bit pattern; joins on float keys therefore require
/// exact representation equality, which matches hash-join semantics in real
/// engines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    FloatBits(u64),
    Str(String),
    Bool(bool),
}

impl JoinKey {
    fn from_value(v: &Value) -> Option<JoinKey> {
        match v {
            Value::Null => None,
            Value::Int(x) => Some(JoinKey::Int(*x)),
            Value::Float(x) => Some(JoinKey::FloatBits(x.to_bits())),
            Value::Str(s) => Some(JoinKey::Str(s.clone())),
            Value::Bool(b) => Some(JoinKey::Bool(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::empty(
            "people",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("age", DataType::Float),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "ada".into(), 36.0.into()])
            .unwrap();
        t.push_row(vec![2.into(), "bob".into(), Value::Null])
            .unwrap();
        t.push_row(vec![3.into(), "eve".into(), 29.0.into()])
            .unwrap();
        t
    }

    fn jobs() -> Table {
        let mut t = Table::empty(
            "jobs",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("sector", DataType::Str),
            ])
            .unwrap(),
        );
        t.push_row(vec![1.into(), "health".into()]).unwrap();
        t.push_row(vec![3.into(), "tech".into()]).unwrap();
        t.push_row(vec![3.into(), "tech2".into()]).unwrap();
        t
    }

    #[test]
    fn push_and_get() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.get(0, "name").unwrap(), Value::Str("ada".into()));
        assert_eq!(t.get(1, "age").unwrap(), Value::Null);
        assert!(t.get(0, "nope").is_err());
        assert!(t.get(9, "name").is_err());
    }

    #[test]
    fn push_row_validates_before_mutating() {
        let mut t = people();
        // Wrong type in the last column: nothing must be appended.
        let err = t.push_row(vec![4.into(), "zed".into(), "oops".into()]);
        assert!(err.is_err());
        assert_eq!(t.n_rows(), 3);
        for ci in 0..t.n_cols() {
            assert_eq!(t.column_at(ci).len(), 3);
        }
    }

    #[test]
    fn arity_checked() {
        let mut t = people();
        assert!(matches!(
            t.push_row(vec![1.into()]),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn take_filter_select() {
        let t = people();
        let (young, kept) = t.filter(|i| {
            t.get(i, "age")
                .unwrap()
                .as_float()
                .map(|a| a < 35.0)
                .unwrap_or(false)
        });
        assert_eq!(kept, vec![2]);
        assert_eq!(young.get(0, "name").unwrap(), Value::Str("eve".into()));

        let s = t.select(&["name", "id"]).unwrap();
        assert_eq!(s.schema().names(), vec!["name", "id"]);
        assert!(t.select(&["nope"]).is_err());

        let d = t.drop_columns(&["age"]).unwrap();
        assert_eq!(d.schema().names(), vec!["id", "name"]);
    }

    #[test]
    fn inner_join_with_duplicates_and_lineage() {
        let (joined, lineage) = people().hash_join(&jobs(), "id", "id").unwrap();
        // id=1 matches once, id=2 not at all, id=3 twice.
        assert_eq!(joined.n_rows(), 3);
        assert_eq!(lineage, vec![(0, 0), (2, 1), (2, 2)]);
        assert_eq!(
            joined.get(0, "sector").unwrap(),
            Value::Str("health".into())
        );
        assert_eq!(joined.get(2, "sector").unwrap(), Value::Str("tech2".into()));
        // Join key from the right side is dropped.
        assert!(!joined.schema().contains("id_right"));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let (joined, lineage) = people().left_join(&jobs(), "id", "id").unwrap();
        assert_eq!(joined.n_rows(), 4);
        assert_eq!(lineage[1], (1, None));
        assert_eq!(joined.get(1, "sector").unwrap(), Value::Null);
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = people();
        l.set(0, "id", Value::Null).unwrap();
        let (joined, _) = l.hash_join(&jobs(), "id", "id").unwrap();
        // Only id=3 matches now (twice).
        assert_eq!(joined.n_rows(), 2);
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let t = people();
        assert!(t.hash_join(&jobs(), "name", "id").is_err());
    }

    #[test]
    fn sort_nulls_first() {
        let (sorted, perm) = people().sort_by("age").unwrap();
        assert_eq!(perm, vec![1, 2, 0]);
        assert_eq!(sorted.get(0, "age").unwrap(), Value::Null);
    }

    #[test]
    fn value_counts_descending() {
        let t = jobs();
        let counts = t.value_counts("id").unwrap();
        assert_eq!(counts[0], (Value::Int(3), 2));
        assert_eq!(counts[1], (Value::Int(1), 1));
    }

    #[test]
    fn append_and_schema_mismatch() {
        let mut a = people();
        let b = people();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 6);
        let c = jobs();
        assert!(a.append(&c).is_err());
    }

    #[test]
    fn missing_profile_reports_fractions() {
        let t = people();
        let prof = t.missing_profile();
        let age = prof.iter().find(|(n, _)| n == "age").unwrap();
        assert!((age.1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_column_checks_length_and_type() {
        let mut t = people();
        let ok = Column::Bool(vec![Some(true), Some(false), None]);
        t.add_column(Field::new("flag", DataType::Bool), ok)
            .unwrap();
        assert_eq!(t.n_cols(), 4);
        let short = Column::Bool(vec![Some(true)]);
        assert!(t
            .add_column(Field::new("flag2", DataType::Bool), short)
            .is_err());
        let wrong = Column::Int(vec![Some(1), Some(2), Some(3)]);
        assert!(t
            .add_column(Field::new("flag3", DataType::Bool), wrong)
            .is_err());
    }

    #[test]
    fn pretty_prints_header_and_rows() {
        let s = people().pretty(2);
        assert!(s.contains("name"));
        assert!(s.contains("ada"));
        assert!(s.contains("1 more rows"));
    }

    /// A left table big enough to span several probe chunks, with nulls,
    /// duplicate keys, and misses sprinkled in.
    fn wide_tables() -> (Table, Table) {
        let mut left = Table::empty(
            "left",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("pos", DataType::Int),
            ])
            .unwrap(),
        );
        for i in 0..1000i64 {
            let key = if i % 97 == 0 {
                Value::Null
            } else {
                Value::Int(i % 61)
            };
            left.push_row(vec![key, i.into()]).unwrap();
        }
        let mut right = Table::empty(
            "right",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
        );
        for i in 0..50i64 {
            right
                .push_row(vec![i.into(), format!("tag{i}").into()])
                .unwrap();
            if i % 7 == 0 {
                right
                    .push_row(vec![i.into(), format!("dup{i}").into()])
                    .unwrap();
            }
        }
        (left, right)
    }

    #[test]
    fn parallel_join_is_bit_identical_to_sequential() {
        let (left, right) = wide_tables();
        let (seq, seq_lineage) = left.hash_join(&right, "k", "k").unwrap();
        for threads in [2, 4, 7] {
            let (par, par_lineage) = left.hash_join_par(&right, "k", "k", threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_lineage, seq_lineage, "threads={threads}");
        }
        let (lseq, lseq_lineage) = left.left_join(&right, "k", "k").unwrap();
        assert!(lseq.n_rows() > seq.n_rows(), "outer keeps unmatched rows");
        for threads in [2, 4, 7] {
            let (lpar, lpar_lineage) = left.left_join_par(&right, "k", "k", threads).unwrap();
            assert_eq!(lpar, lseq, "threads={threads}");
            assert_eq!(lpar_lineage, lseq_lineage, "threads={threads}");
        }
    }

    #[test]
    fn distinct_by_keeps_first_occurrence_and_is_thread_invariant() {
        let (left, _) = wide_tables();
        let (kept, owner) = left.distinct_by("k", 1).unwrap();
        // 61 int keys + the null class.
        assert_eq!(kept.len(), 62);
        assert_eq!(owner.len(), left.n_rows());
        // Every row's owner slot holds an equal key (nulls group together).
        for (row, &slot) in owner.iter().enumerate() {
            let a = left.get(row, "k").unwrap();
            let b = left.get(kept[slot], "k").unwrap();
            assert_eq!(a.is_null(), b.is_null());
            if !a.is_null() {
                assert_eq!(a, b);
            }
        }
        // First occurrence wins: kept rows appear in ascending order and
        // own themselves.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
        for (slot, &row) in kept.iter().enumerate() {
            assert_eq!(owner[row], slot);
        }
        for threads in [2, 4, 7] {
            let par = left.distinct_by("k", threads).unwrap();
            assert_eq!(par, (kept.clone(), owner.clone()), "threads={threads}");
        }
    }

    #[test]
    fn distinct_by_unknown_column_rejected() {
        let (left, _) = wide_tables();
        assert!(left.distinct_by("nope", 1).is_err());
    }
}
