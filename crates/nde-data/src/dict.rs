//! Interned string dictionaries for dictionary-encoded columns.
//!
//! A [`Dict`] maps distinct strings to dense `u32` codes in first-insertion
//! order. String planes store one code per row and share the dictionary via
//! `Arc`, so `take`/`filter`/`join` gather 4-byte codes instead of cloning
//! heap strings.

use crate::fxhash::FxHashMap;

/// An insertion-ordered set of distinct strings with dense `u32` codes.
///
/// Codes are assigned `0, 1, 2, ...` as new strings are interned; a string's
/// code never changes once assigned, so planes referencing the same `Dict`
/// can compare cells by code alone.
#[derive(Debug, Clone, Default)]
pub struct Dict {
    values: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// The code of `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`. Panics if the code was never assigned.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All distinct strings in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

/// Dictionaries are equal iff they assign the same codes to the same
/// strings (i.e. identical insertion order).
impl PartialEq for Dict {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_order() {
        let mut d = Dict::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), "b");
        assert_eq!(d.code_of("b"), Some(1));
        assert_eq!(d.code_of("zzz"), None);
        assert_eq!(d.values(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn equality_is_by_code_assignment() {
        let mut a = Dict::new();
        a.intern("x");
        a.intern("y");
        let mut b = Dict::new();
        b.intern("x");
        b.intern("y");
        assert_eq!(a, b);
        let mut c = Dict::new();
        c.intern("y");
        c.intern("x");
        assert_ne!(a, c);
    }
}
