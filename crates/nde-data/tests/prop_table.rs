//! Randomized-property tests for the table engine: joins against a
//! nested-loop reference, take/filter invariants, CSV roundtrips, and the
//! total order on values. Each test draws a few hundred cases from the
//! crate's own seeded PRNG, so failures reproduce exactly.

use nde_data::csvio::{read_csv, to_csv_string};
use nde_data::rng::{seeded, Rng, StdRng};
use nde_data::{Column, DataType, Field, Schema, Table, Value};

const CASES: usize = 200;

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u32) {
        0 => Value::Null,
        1 => Value::Int(rng.gen::<u64>() as i64),
        2 => Value::Float(rng.gen_range(-1e9..1e9)),
        3 => {
            let alphabet: Vec<char> = "abcdefghij ,\"\n".chars().collect();
            let len = rng.gen_range(0..13usize);
            Value::Str(
                (0..len)
                    .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                    .collect(),
            )
        }
        _ => Value::Bool(rng.gen_bool(0.5)),
    }
}

fn random_keys(rng: &mut StdRng, max_len: usize, lo: i64, hi: i64) -> Vec<Option<i64>> {
    let n = rng.gen_range(0..=max_len);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(rng.gen_range(lo..hi))
            }
        })
        .collect()
}

fn int_key_table(name: &str, keys: Vec<Option<i64>>) -> Table {
    let n = keys.len();
    let payload: Vec<Option<i64>> = (0..n as i64).map(Some).collect();
    Table::from_columns(
        name,
        vec![
            Field::new("k", DataType::Int),
            Field::new(format!("{name}_payload"), DataType::Int),
        ],
        vec![Column::Int(keys), Column::Int(payload)],
    )
    .expect("columns conform")
}

#[test]
fn join_matches_nested_loop_reference() {
    let mut rng = seeded(0xA11CE);
    for _ in 0..CASES {
        let left_keys = random_keys(&mut rng, 19, 0, 8);
        let right_keys = random_keys(&mut rng, 19, 0, 8);
        let left = int_key_table("l", left_keys.clone());
        let right = int_key_table("r", right_keys.clone());
        let (joined, lineage) = left.hash_join(&right, "k", "k").expect("join runs");

        // Reference: nested loop over non-null equal keys.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (li, lk) in left_keys.iter().enumerate() {
            for (ri, rk) in right_keys.iter().enumerate() {
                if let (Some(a), Some(b)) = (lk, rk) {
                    if a == b {
                        expected.push((li, ri));
                    }
                }
            }
        }
        let mut got = lineage.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(joined.n_rows(), lineage.len());

        // Every output row's cells match the source rows named by lineage.
        for (out, &(li, ri)) in lineage.iter().enumerate() {
            assert_eq!(
                joined.get(out, "l_payload").expect("cell"),
                left.get(li, "l_payload").expect("cell")
            );
            assert_eq!(
                joined.get(out, "r_payload").expect("cell"),
                right.get(ri, "r_payload").expect("cell")
            );
        }
    }
}

#[test]
fn left_join_preserves_every_left_row() {
    let mut rng = seeded(0xB0B);
    for _ in 0..CASES {
        let mut left_keys = random_keys(&mut rng, 14, 0, 6);
        if left_keys.is_empty() {
            left_keys.push(Some(0));
        }
        let right_keys = random_keys(&mut rng, 14, 0, 6);
        let left = int_key_table("l", left_keys.clone());
        let right = int_key_table("r", right_keys);
        let (_, lineage) = left.left_join(&right, "k", "k").expect("join runs");
        // Every left row appears at least once.
        let mut seen = vec![false; left_keys.len()];
        for &(li, _) in &lineage {
            seen[li] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn take_then_get_matches_origin() {
    let mut rng = seeded(0xC4FE);
    for _ in 0..CASES {
        let mut keys = random_keys(&mut rng, 24, -100, 100);
        if keys.is_empty() {
            keys.push(None);
        }
        let t = int_key_table("t", keys);
        let n_picks = rng.gen_range(0..40usize);
        let picks: Vec<usize> = (0..n_picks).map(|_| rng.gen_range(0..t.n_rows())).collect();
        let taken = t.take(&picks).expect("indices bounded");
        assert_eq!(taken.n_rows(), picks.len());
        for (out, &src) in picks.iter().enumerate() {
            assert_eq!(taken.row(out).expect("row"), t.row(src).expect("row"));
        }
    }
}

#[test]
fn filter_partition_invariant() {
    let mut rng = seeded(0xD00D);
    for _ in 0..CASES {
        let keys = random_keys(&mut rng, 29, -5, 5);
        let t = int_key_table("t", keys);
        let (pos, kept) = t.filter(|i| {
            t.get(i, "k")
                .expect("cell")
                .as_int()
                .map(|v| v >= 0)
                .unwrap_or(false)
        });
        let (neg, dropped) = t.filter(|i| {
            !t.get(i, "k")
                .expect("cell")
                .as_int()
                .map(|v| v >= 0)
                .unwrap_or(false)
        });
        assert_eq!(pos.n_rows() + neg.n_rows(), t.n_rows());
        // Kept and dropped index sets partition 0..n.
        let mut all: Vec<usize> = kept.into_iter().chain(dropped).collect();
        all.sort_unstable();
        assert_eq!(all, (0..t.n_rows()).collect::<Vec<_>>());
    }
}

#[test]
fn csv_roundtrip_arbitrary_cells() {
    let mut rng = seeded(0xE66);
    for _ in 0..CASES {
        let n_cells = rng.gen_range(1..20usize);
        let cells: Vec<Value> = (0..n_cells).map(|_| random_value(&mut rng)).collect();
        // One column per type keeps the schema fixed; route by variant.
        let mut t = Table::empty(
            "t",
            Schema::new(vec![
                Field::new("i", DataType::Int),
                Field::new("f", DataType::Float),
                Field::new("s", DataType::Str),
                Field::new("b", DataType::Bool),
            ])
            .expect("schema valid"),
        );
        for v in &cells {
            let row = match v {
                Value::Int(x) => vec![Value::Int(*x), Value::Null, Value::Null, Value::Null],
                Value::Float(x) => vec![Value::Null, Value::Float(*x), Value::Null, Value::Null],
                Value::Str(s) => vec![Value::Null, Value::Null, Value::Str(s.clone()), Value::Null],
                Value::Bool(b) => vec![Value::Null, Value::Null, Value::Null, Value::Bool(*b)],
                Value::Null => vec![Value::Null; 4],
            };
            t.push_row(row).expect("row conforms");
        }
        let csv = to_csv_string(&t);
        let back = read_csv("t", t.schema().clone(), csv.as_bytes()).expect("parses");
        assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            assert_eq!(back.row(r).expect("row"), t.row(r).expect("row"));
        }
    }
}

#[test]
fn value_total_cmp_is_a_total_order() {
    use std::cmp::Ordering;
    let mut rng = seeded(0xF00);
    for _ in 0..CASES {
        let a = random_value(&mut rng);
        let b = random_value(&mut rng);
        let c = random_value(&mut rng);
        // Antisymmetry.
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (check via sorting consistency).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort_by(|x, y| x.total_cmp(y));
        assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
        // Reflexivity.
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }
}

#[test]
fn sort_by_is_a_permutation_and_ordered() {
    let mut rng = seeded(0xAB1E);
    for _ in 0..CASES {
        let mut keys = random_keys(&mut rng, 29, -50, 50);
        if keys.is_empty() {
            keys.push(Some(0));
        }
        let t = int_key_table("t", keys);
        let (sorted, perm) = t.sort_by("k").expect("sorts");
        let mut check = perm.clone();
        check.sort_unstable();
        assert_eq!(check, (0..t.n_rows()).collect::<Vec<_>>());
        for i in 1..sorted.n_rows() {
            let prev = sorted.get(i - 1, "k").expect("cell");
            let cur = sorted.get(i, "k").expect("cell");
            assert!(prev.total_cmp(&cur) != std::cmp::Ordering::Greater);
        }
    }
}
