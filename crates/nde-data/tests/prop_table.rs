//! Property-based tests for the table engine: joins against a nested-loop
//! reference, take/filter invariants, CSV roundtrips, and the total order on
//! values.

use nde_data::csvio::{read_csv, to_csv_string};
use nde_data::{Column, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9f64).prop_map(Value::Float),
        "[a-z ,\"\n]{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn int_key_table(name: &str, keys: Vec<Option<i64>>) -> Table {
    let n = keys.len();
    let payload: Vec<Option<i64>> = (0..n as i64).map(Some).collect();
    Table::from_columns(
        name,
        vec![
            Field::new("k", DataType::Int),
            Field::new(format!("{name}_payload"), DataType::Int),
        ],
        vec![Column::Int(keys), Column::Int(payload)],
    )
    .expect("columns conform")
}

proptest! {
    #[test]
    fn join_matches_nested_loop_reference(
        left_keys in prop::collection::vec(prop::option::of(0i64..8), 0..20),
        right_keys in prop::collection::vec(prop::option::of(0i64..8), 0..20),
    ) {
        let left = int_key_table("l", left_keys.clone());
        let right = int_key_table("r", right_keys.clone());
        let (joined, lineage) = left.hash_join(&right, "k", "k").expect("join runs");

        // Reference: nested loop over non-null equal keys.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (li, lk) in left_keys.iter().enumerate() {
            for (ri, rk) in right_keys.iter().enumerate() {
                if let (Some(a), Some(b)) = (lk, rk) {
                    if a == b {
                        expected.push((li, ri));
                    }
                }
            }
        }
        let mut got = lineage.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(joined.n_rows(), lineage.len());

        // Every output row's cells match the source rows named by lineage.
        for (out, &(li, ri)) in lineage.iter().enumerate() {
            prop_assert_eq!(
                joined.get(out, "l_payload").expect("cell"),
                left.get(li, "l_payload").expect("cell")
            );
            prop_assert_eq!(
                joined.get(out, "r_payload").expect("cell"),
                right.get(ri, "r_payload").expect("cell")
            );
        }
    }

    #[test]
    fn left_join_preserves_every_left_row(
        left_keys in prop::collection::vec(prop::option::of(0i64..6), 1..15),
        right_keys in prop::collection::vec(prop::option::of(0i64..6), 0..15),
    ) {
        let left = int_key_table("l", left_keys.clone());
        let right = int_key_table("r", right_keys);
        let (_, lineage) = left.left_join(&right, "k", "k").expect("join runs");
        // Every left row appears at least once.
        let mut seen = vec![false; left_keys.len()];
        for &(li, _) in &lineage {
            seen[li] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn take_then_get_matches_origin(
        keys in prop::collection::vec(prop::option::of(-100i64..100), 1..25),
        picks in prop::collection::vec(0usize..25, 0..40),
    ) {
        let t = int_key_table("t", keys);
        let picks: Vec<usize> = picks.into_iter().map(|p| p % t.n_rows()).collect();
        let taken = t.take(&picks).expect("indices bounded");
        prop_assert_eq!(taken.n_rows(), picks.len());
        for (out, &src) in picks.iter().enumerate() {
            prop_assert_eq!(taken.row(out).expect("row"), t.row(src).expect("row"));
        }
    }

    #[test]
    fn filter_partition_invariant(
        keys in prop::collection::vec(prop::option::of(-5i64..5), 0..30),
    ) {
        let t = int_key_table("t", keys);
        let (pos, kept) = t.filter(|i| {
            t.get(i, "k").expect("cell").as_int().map(|v| v >= 0).unwrap_or(false)
        });
        let (neg, dropped) = t.filter(|i| {
            !t.get(i, "k").expect("cell").as_int().map(|v| v >= 0).unwrap_or(false)
        });
        prop_assert_eq!(pos.n_rows() + neg.n_rows(), t.n_rows());
        // Kept and dropped index sets partition 0..n.
        let mut all: Vec<usize> = kept.into_iter().chain(dropped).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..t.n_rows()).collect::<Vec<_>>());
    }

    #[test]
    fn csv_roundtrip_arbitrary_cells(
        cells in prop::collection::vec(value_strategy(), 1..20),
    ) {
        // One column per type keeps the schema fixed; route by variant.
        let mut t = Table::empty(
            "t",
            Schema::new(vec![
                Field::new("i", DataType::Int),
                Field::new("f", DataType::Float),
                Field::new("s", DataType::Str),
                Field::new("b", DataType::Bool),
            ])
            .expect("schema valid"),
        );
        for v in &cells {
            let row = match v {
                Value::Int(x) => vec![Value::Int(*x), Value::Null, Value::Null, Value::Null],
                Value::Float(x) => vec![Value::Null, Value::Float(*x), Value::Null, Value::Null],
                Value::Str(s) => vec![Value::Null, Value::Null, Value::Str(s.clone()), Value::Null],
                Value::Bool(b) => vec![Value::Null, Value::Null, Value::Null, Value::Bool(*b)],
                Value::Null => vec![Value::Null; 4],
            };
            t.push_row(row).expect("row conforms");
        }
        let csv = to_csv_string(&t);
        let back = read_csv("t", t.schema().clone(), csv.as_bytes()).expect("parses");
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            prop_assert_eq!(back.row(r).expect("row"), t.row(r).expect("row"));
        }
    }

    #[test]
    fn value_total_cmp_is_a_total_order(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (check via sorting consistency).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn sort_by_is_a_permutation_and_ordered(
        keys in prop::collection::vec(prop::option::of(-50i64..50), 1..30),
    ) {
        let t = int_key_table("t", keys);
        let (sorted, perm) = t.sort_by("k").expect("sorts");
        let mut check = perm.clone();
        check.sort_unstable();
        prop_assert_eq!(check, (0..t.n_rows()).collect::<Vec<_>>());
        for i in 1..sorted.n_rows() {
            let prev = sorted.get(i - 1, "k").expect("cell");
            let cur = sorted.get(i, "k").expect("cell");
            prop_assert!(prev.total_cmp(&cur) != std::cmp::Ordering::Greater);
        }
    }
}
