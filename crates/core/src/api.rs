//! The tutorial's Python-snippet API, in Rust.
//!
//! Each function mirrors a call from the hands-on notebooks (Figs. 2–4):
//! `inject_labelerrors`, `evaluate_model`, `knn_shapley_values`,
//! `pretty_print`, `show_query_plan`, `with_provenance`, `encode_symbolic`,
//! `estimate_with_zorro`.

use crate::Result;
use nde_data::generate::hiring::LABEL_COLUMN;
use nde_data::inject::{flip_labels, InjectionReport, Missingness};
use nde_data::Table;
use nde_importance::{knn_shapley, ImportanceRun};
use nde_ml::dataset::{Dataset, LabelEncoder};
use nde_ml::encode::TableEncoder;
use nde_ml::linalg::Matrix;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::feature::{FeatureOutput, FeaturePipeline};
use nde_pipeline::plan::Plan;
use nde_pipeline::render::render_plan;
use nde_uncertain::symbolic::SymbolicMatrix;
use nde_uncertain::zorro::{ZorroConfig, ZorroRegressor};
use nde_uncertain::Interval;

/// Default hash-embedding width for letter text.
pub const TEXT_DIMS: usize = 64;
/// Default KNN neighborhood used by `evaluate_model` / `knn_shapley_values`.
pub const KNN_K: usize = 5;

/// `nde.inject_labelerrors(train_df, fraction)` — flip a fraction of the
/// sentiment labels, returning the ground-truth report.
pub fn inject_label_errors(table: &mut Table, fraction: f64, seed: u64) -> Result<InjectionReport> {
    Ok(flip_labels(table, LABEL_COLUMN, fraction, seed)?)
}

/// Fitted letters featurization: the Fig. 2 single-table encoder (text hash,
/// one-hot degree, scaled numerics) plus the label encoder.
#[derive(Debug, Clone)]
pub struct LettersEncoding {
    encoder: TableEncoder,
    labels: LabelEncoder,
}

impl LettersEncoding {
    /// Fit on a training letters table.
    pub fn fit(train: &Table) -> Result<LettersEncoding> {
        let mut encoder = TableEncoder::for_letters(TEXT_DIMS);
        encoder.fit(train)?;
        let labels = LabelEncoder::fit(train, LABEL_COLUMN)?;
        Ok(LettersEncoding { encoder, labels })
    }

    /// Encode any conformant letters table into a dataset.
    pub fn dataset(&self, table: &Table) -> Result<Dataset> {
        let x = self.encoder.transform(table)?;
        let y = self.labels.encode_column(table, LABEL_COLUMN)?;
        Ok(Dataset::new(x, y, self.labels.n_classes())?)
    }

    /// The fitted label encoder.
    pub fn labels(&self) -> &LabelEncoder {
        &self.labels
    }
}

/// `nde.evaluate_model(train_df)` — encode, train the reference KNN
/// classifier, and return validation accuracy.
pub fn evaluate_model(train: &Table, valid: &Table) -> Result<f64> {
    let enc = LettersEncoding::fit(train)?;
    let train_ds = enc.dataset(train)?;
    let valid_ds = enc.dataset(valid)?;
    let mut model = KnnClassifier::new(KNN_K);
    model.fit(&train_ds)?;
    Ok(model.accuracy(&valid_ds))
}

/// `nde.knn_shapley_values(train_df, validation=valid_df)` — per-tuple
/// importance of the training letters.
pub fn knn_shapley_values(train: &Table, valid: &Table) -> Result<Vec<f64>> {
    let enc = LettersEncoding::fit(train)?;
    let train_ds = enc.dataset(train)?;
    let valid_ds = enc.dataset(valid)?;
    Ok(
        knn_shapley(&ImportanceRun::new(0), &train_ds, &valid_ds, KNN_K)?
            .scores
            .values,
    )
}

/// `nde.pretty_print(df)` — render the first rows of a table.
pub fn pretty_print(table: &Table, limit: usize) -> String {
    table.pretty(limit)
}

/// `nde.show_query_plan(pipeline)` — ASCII rendering of the Fig. 3 plan.
pub fn show_query_plan() -> String {
    let (plan, root) = Plan::hiring_pipeline();
    render_plan(&plan, root).expect("static plan renders")
}

/// `nde.with_provenance(pipeline(...))` — run the Fig. 3 hiring pipeline
/// with provenance tracking, fitting its encoders on this (training) run.
pub fn with_provenance(
    pipeline: &mut FeaturePipeline,
    inputs: &[(&str, &Table)],
) -> Result<FeatureOutput> {
    Ok(pipeline.fit_run(inputs, true)?)
}

/// The numeric feature columns used by the Fig. 4 symbolic scenario.
pub const SYMBOLIC_FEATURES: [&str; 2] = ["employer_rating", "years_experience"];

/// Output of [`encode_symbolic`]: symbolic features, ±1 targets, and the
/// standardization statistics needed to encode test data consistently.
#[derive(Debug, Clone)]
pub struct SymbolicEncoding {
    /// Symbolic (interval) training features, standardized.
    pub x: SymbolicMatrix,
    /// Regression targets: sentiment as ±1.
    pub y: Vec<f64>,
    /// Ground-truth rows whose `uncertain_feature` was made missing.
    pub missing_rows: Vec<usize>,
    /// Per-feature `(mean, sd)` used for standardization.
    pub feature_stats: Vec<(f64, f64)>,
}

impl SymbolicEncoding {
    /// Encode a test letters table with the *training* statistics: features
    /// standardized the same way (nulls mean-imputed), targets as ±1.
    pub fn encode_test(&self, table: &Table) -> Result<(Matrix, Vec<f64>)> {
        let n = table.n_rows();
        let mut m = Matrix::zeros(n, SYMBOLIC_FEATURES.len());
        for (c, col_name) in SYMBOLIC_FEATURES.iter().enumerate() {
            let (mean, sd) = self.feature_stats[c];
            let values = table.column(col_name)?.to_f64_vec();
            for (r, v) in values.iter().enumerate() {
                let raw = v.unwrap_or(mean);
                m.set(r, c, if sd > 1e-12 { (raw - mean) / sd } else { 0.0 });
            }
        }
        let y = sentiment_targets(table)?;
        Ok((m, y))
    }
}

/// `nde.encode_symbolic(train_df, uncertain_feature=..., missing_percentage=...,
/// missingness="MNAR")` — standardize the numeric features, inject synthetic
/// missingness into `uncertain_feature` under the given mechanism, and turn
/// the missing cells into domain intervals.
pub fn encode_symbolic(
    train: &Table,
    uncertain_feature: &str,
    missing_percentage: f64,
    mechanism: Missingness,
    seed: u64,
) -> Result<SymbolicEncoding> {
    let feature_col = SYMBOLIC_FEATURES
        .iter()
        .position(|f| *f == uncertain_feature)
        .ok_or_else(|| {
            crate::NdeError::InvalidArgument(format!(
                "uncertain feature must be one of {SYMBOLIC_FEATURES:?}, got `{uncertain_feature}`"
            ))
        })?;

    // Determine which rows lose the value, honoring the mechanism, by
    // running the standard injector on a scratch copy.
    let mut scratch = train.clone();
    let report = nde_data::inject::inject_missing(
        &mut scratch,
        uncertain_feature,
        missing_percentage / if missing_percentage > 1.0 { 100.0 } else { 1.0 },
        mechanism,
        seed,
    )?;

    // Standardize features over the *observed* training values.
    let mut stats = Vec::with_capacity(SYMBOLIC_FEATURES.len());
    let mut columns = Vec::with_capacity(SYMBOLIC_FEATURES.len());
    for col_name in SYMBOLIC_FEATURES {
        let values = train.column(col_name)?.to_f64_vec();
        let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
        let mean = present.iter().sum::<f64>() / present.len().max(1) as f64;
        let var = present.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / present.len().max(1) as f64;
        let sd = var.sqrt();
        stats.push((mean, sd));
        columns.push(values);
    }

    let n = train.n_rows();
    let missing_set: std::collections::HashSet<usize> = report.affected.iter().copied().collect();
    let mut rows = Vec::with_capacity(n);
    for r in 0..n {
        let mut row = Vec::with_capacity(SYMBOLIC_FEATURES.len());
        for (c, values) in columns.iter().enumerate() {
            let (mean, sd) = stats[c];
            let z = |raw: f64| if sd > 1e-12 { (raw - mean) / sd } else { 0.0 };
            let cell = if c == feature_col && missing_set.contains(&r) {
                // Domain interval: the observed min..max of the column.
                let lo = columns[c]
                    .iter()
                    .flatten()
                    .fold(f64::INFINITY, |a, &b| a.min(b));
                let hi = columns[c]
                    .iter()
                    .flatten()
                    .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                Interval::new(z(lo), z(hi))
            } else {
                Interval::point(z(values[r].unwrap_or(mean)))
            };
            row.push(cell);
        }
        rows.push(row);
    }

    Ok(SymbolicEncoding {
        x: SymbolicMatrix::from_rows(rows)?,
        y: sentiment_targets(train)?,
        missing_rows: report.affected,
        feature_stats: stats,
    })
}

/// The gradient-descent configuration used by the Fig. 4 scenario.
///
/// Interval GD compounds uncertainty multiplicatively per step, so on the
/// letters data (feature domains spanning several standard deviations) we
/// keep the step count and learning rate small; the bound stays sound —
/// just tighter-is-better, and fewer steps keep it finite.
pub fn zorro_config() -> ZorroConfig {
    ZorroConfig {
        epochs: 20,
        learning_rate: 0.05,
        l2: 1e-3,
        divergence_threshold: 1e9,
        threads: 1,
        pool: None,
    }
}

/// `nde.estimate_with_zorro(X_train_symb, test_df)` — train the symbolic
/// linear model and return the **maximum worst-case loss** on the test set.
pub fn estimate_with_zorro(encoding: &SymbolicEncoding, test: &Table) -> Result<f64> {
    let mut zorro = ZorroRegressor::new(zorro_config());
    zorro.fit(&encoding.x, &encoding.y)?;
    let (tx, ty) = encoding.encode_test(test)?;
    Ok(zorro.max_worst_case_loss(&tx, &ty)?)
}

/// Sentiment as a ±1 regression target.
fn sentiment_targets(table: &Table) -> Result<Vec<f64>> {
    let mut y = Vec::with_capacity(table.n_rows());
    for r in 0..table.n_rows() {
        let v = table.get(r, LABEL_COLUMN)?;
        let s = v
            .as_str()
            .ok_or_else(|| crate::NdeError::InvalidArgument(format!("null label at row {r}")))?;
        y.push(if s == "positive" { 1.0 } else { -1.0 });
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::load_recommendation_letters;

    #[test]
    fn evaluate_model_learns_sentiment() {
        let s = load_recommendation_letters(300, 11);
        let acc = evaluate_model(&s.train, &s.valid).unwrap();
        assert!(acc > 0.7, "clean accuracy only {acc}");
    }

    #[test]
    fn label_errors_hurt_and_shapley_finds_them() {
        let s = load_recommendation_letters(300, 12);
        let clean_acc = evaluate_model(&s.train, &s.valid).unwrap();
        let mut dirty = s.train.clone();
        let report = inject_label_errors(&mut dirty, 0.2, 13).unwrap();
        let dirty_acc = evaluate_model(&dirty, &s.valid).unwrap();
        assert!(dirty_acc < clean_acc, "{dirty_acc} !< {clean_acc}");

        let values = knn_shapley_values(&dirty, &s.valid).unwrap();
        assert_eq!(values.len(), dirty.n_rows());
        // Bottom-k should be enriched with injected errors.
        let scores = nde_importance::ImportanceScores::new("t", values);
        let hit = nde_importance::detection_precision_at_k(
            &scores,
            &report.affected,
            report.affected.len(),
        );
        assert!(hit > 0.4, "precision@k only {hit}");
    }

    #[test]
    fn pretty_print_and_query_plan() {
        let s = load_recommendation_letters(20, 14);
        let text = pretty_print(&s.train, 3);
        assert!(text.contains("letter_text"));
        let plan = show_query_plan();
        assert!(plan.contains("Join"));
        assert!(plan.contains("Source social_df"));
    }

    #[test]
    fn with_provenance_produces_lineage() {
        let s = load_recommendation_letters(200, 15);
        let mut fp = FeaturePipeline::hiring(16);
        let out = with_provenance(&mut fp, &s.pipeline_inputs(&s.train)).unwrap();
        assert!(out.lineage.is_some());
        assert!(!out.dataset.is_empty());
    }

    #[test]
    fn symbolic_encoding_and_zorro_bound() {
        let s = load_recommendation_letters(200, 16);
        let enc = encode_symbolic(
            &s.train,
            "employer_rating",
            0.10,
            Missingness::Mnar { skew: 4.0 },
            17,
        )
        .unwrap();
        assert_eq!(enc.x.len(), s.train.n_rows());
        assert_eq!(
            enc.missing_rows.len(),
            (s.train.n_rows() as f64 * 0.10).round() as usize
        );
        let bound = estimate_with_zorro(&enc, &s.test).unwrap();
        assert!(bound.is_finite() && bound >= 0.0);

        // More missingness ⇒ larger (or equal) worst-case bound.
        let enc25 = encode_symbolic(
            &s.train,
            "employer_rating",
            0.25,
            Missingness::Mnar { skew: 4.0 },
            17,
        )
        .unwrap();
        let bound25 = estimate_with_zorro(&enc25, &s.test).unwrap();
        assert!(bound25 >= bound - 1e-9, "{bound25} < {bound}");
    }

    #[test]
    fn percentage_convention_accepts_both_forms() {
        let s = load_recommendation_letters(100, 18);
        let frac = encode_symbolic(&s.train, "employer_rating", 0.2, Missingness::Mcar, 1).unwrap();
        let pct = encode_symbolic(&s.train, "employer_rating", 20.0, Missingness::Mcar, 1).unwrap();
        assert_eq!(frac.missing_rows, pct.missing_rows);
    }

    #[test]
    fn unknown_symbolic_feature_rejected() {
        let s = load_recommendation_letters(50, 19);
        assert!(encode_symbolic(&s.train, "letter_text", 0.1, Missingness::Mcar, 1).is_err());
    }
}
