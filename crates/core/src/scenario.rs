//! The tutorial's synthetic hiring scenario, pre-split into train/valid/test.

use nde_data::generate::hiring::{HiringConfig, HiringScenario};
use nde_data::generate::splits::{split_table, train_valid_test};
use nde_data::Table;

/// The hands-on session's data bundle: recommendation letters split into
/// train/valid/test, plus the two side tables shared by all splits.
#[derive(Debug, Clone)]
pub struct LettersScenario {
    /// Training letters (`train_df` in the tutorial).
    pub train: Table,
    /// Validation letters (`valid_df`).
    pub valid: Table,
    /// Test letters (`test_df`).
    pub test: Table,
    /// Job-details side table (`jobdetail_df`).
    pub job_details: Table,
    /// Social-media side table (`social_df`).
    pub social: Table,
}

impl LettersScenario {
    /// The three pipeline inputs for a given letters split, in the order the
    /// Fig. 3 pipeline expects them.
    pub fn pipeline_inputs<'a>(&'a self, letters: &'a Table) -> Vec<(&'a str, &'a Table)> {
        vec![
            ("train_df", letters),
            ("jobdetail_df", &self.job_details),
            ("social_df", &self.social),
        ]
    }
}

/// The tutorial's `nde.load_recommendation_letters()`: generate `n`
/// applicants deterministically from `seed` and split 60/20/20.
pub fn load_recommendation_letters(n: usize, seed: u64) -> LettersScenario {
    load_with_config(n, seed, &HiringConfig::default())
}

/// Like [`load_recommendation_letters`] with explicit generation knobs.
pub fn load_with_config(n: usize, seed: u64, cfg: &HiringConfig) -> LettersScenario {
    let scenario = HiringScenario::generate_with(n, seed, cfg);
    let split = train_valid_test(n, 0.6, 0.2, seed ^ 0x5eed).expect("0.6/0.2 is a valid split");
    let (mut train, mut valid, mut test) =
        split_table(&scenario.letters, &split).expect("split indices in bounds");
    // The pipeline plan refers to the letters source as `train_df` whichever
    // split flows through it.
    train.set_name("train_df");
    valid.set_name("train_df");
    test.set_name("train_df");
    LettersScenario {
        train,
        valid,
        test,
        job_details: scenario.job_details,
        social: scenario.social,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_add_up_and_are_deterministic() {
        let s = load_recommendation_letters(200, 1);
        assert_eq!(s.train.n_rows(), 120);
        assert_eq!(s.valid.n_rows(), 40);
        assert_eq!(s.test.n_rows(), 40);
        let s2 = load_recommendation_letters(200, 1);
        assert_eq!(s.train, s2.train);
        assert_eq!(s.test, s2.test);
    }

    #[test]
    fn splits_are_disjoint_by_person_id() {
        let s = load_recommendation_letters(100, 2);
        let ids = |t: &Table| -> std::collections::HashSet<i64> {
            (0..t.n_rows())
                .map(|r| t.get(r, "person_id").unwrap().as_int().unwrap())
                .collect()
        };
        let train_ids = ids(&s.train);
        let valid_ids = ids(&s.valid);
        let test_ids = ids(&s.test);
        assert!(train_ids.is_disjoint(&valid_ids));
        assert!(train_ids.is_disjoint(&test_ids));
        assert!(valid_ids.is_disjoint(&test_ids));
    }

    #[test]
    fn pipeline_inputs_use_canonical_names() {
        let s = load_recommendation_letters(50, 3);
        let inputs = s.pipeline_inputs(&s.valid);
        assert_eq!(inputs[0].0, "train_df");
        assert_eq!(inputs[1].0, "jobdetail_df");
        assert_eq!(inputs[2].0, "social_df");
    }
}
