//! Unified error type for the facade crate.

use std::fmt;

/// Any error surfaced by the `nde` facade (wraps the subsystem errors).
#[derive(Debug, Clone, PartialEq)]
pub enum NdeError {
    /// Data substrate error.
    Data(String),
    /// ML substrate error.
    Ml(String),
    /// Pipeline error.
    Pipeline(String),
    /// Importance computation error.
    Importance(String),
    /// Uncertain-data error.
    Uncertain(String),
    /// Cleaning / challenge error.
    Cleaning(String),
    /// Facade-level invalid argument.
    InvalidArgument(String),
}

impl fmt::Display for NdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            NdeError::Data(m) => ("data", m),
            NdeError::Ml(m) => ("ml", m),
            NdeError::Pipeline(m) => ("pipeline", m),
            NdeError::Importance(m) => ("importance", m),
            NdeError::Uncertain(m) => ("uncertain", m),
            NdeError::Cleaning(m) => ("cleaning", m),
            NdeError::InvalidArgument(m) => ("invalid argument", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for NdeError {}

impl From<nde_data::DataError> for NdeError {
    fn from(e: nde_data::DataError) -> Self {
        NdeError::Data(e.to_string())
    }
}
impl From<nde_ml::MlError> for NdeError {
    fn from(e: nde_ml::MlError) -> Self {
        NdeError::Ml(e.to_string())
    }
}
impl From<nde_pipeline::PipelineError> for NdeError {
    fn from(e: nde_pipeline::PipelineError) -> Self {
        NdeError::Pipeline(e.to_string())
    }
}
impl From<nde_importance::ImportanceError> for NdeError {
    fn from(e: nde_importance::ImportanceError) -> Self {
        NdeError::Importance(e.to_string())
    }
}
impl From<nde_uncertain::UncertainError> for NdeError {
    fn from(e: nde_uncertain::UncertainError) -> Self {
        NdeError::Uncertain(e.to_string())
    }
}
impl From<nde_cleaning::CleaningError> for NdeError {
    fn from(e: nde_cleaning::CleaningError) -> Self {
        NdeError::Cleaning(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: NdeError = nde_data::DataError::UnknownColumn("age".into()).into();
        assert!(e.to_string().contains("age"));
        let e: NdeError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, NdeError::Ml(_)));
        let e: NdeError = nde_pipeline::PipelineError::UnknownNode(1).into();
        assert!(matches!(e, NdeError::Pipeline(_)));
        let e: NdeError = nde_uncertain::UncertainError::InvalidArgument("x".into()).into();
        assert!(matches!(e, NdeError::Uncertain(_)));
        let e: NdeError = nde_cleaning::CleaningError::InvalidArgument("x".into()).into();
        assert!(matches!(e, NdeError::Cleaning(_)));
        let e: NdeError = nde_importance::ImportanceError::InvalidArgument("x".into()).into();
        assert!(matches!(e, NdeError::Importance(_)));
    }
}
