//! # nde — navigating data errors in machine learning pipelines
//!
//! A Rust reproduction of the `navigating_data_errors` toolkit from the
//! SIGMOD'25 tutorial *"Navigating Data Errors in Machine Learning
//! Pipelines: Identify, Debug, and Learn"* (Karlaš, Salimi & Schelter).
//!
//! The toolkit has three pillars:
//!
//! 1. **Identify** — data-importance methods (LOO, Shapley family,
//!    KNN-Shapley, Banzhaf, influence functions, AUM, confident learning)
//!    that rank training tuples by their impact on model quality;
//! 2. **Debug** — ML preprocessing pipelines with fine-grained provenance,
//!    so importance computed on pipeline *outputs* can be pushed back to the
//!    pipeline's *source tables* (Datascope / mlinspect style);
//! 3. **Learn** — when cleaning is impossible, reason *under* uncertainty:
//!    Zorro-style worst-case loss bounds, certain predictions, dataset
//!    multiplicity, possible worlds.
//!
//! The [`api`] module mirrors the tutorial's Python snippets; [`workflows`]
//! packages the three hands-on figures (Figs. 2–4) as runnable workflows.
//!
//! ```
//! use nde::scenario::load_recommendation_letters;
//! use nde::api;
//!
//! let mut s = load_recommendation_letters(120, 42);
//! let report = api::inject_label_errors(&mut s.train, 0.1, 7).unwrap();
//! assert_eq!(report.affected.len(), (s.train.n_rows() as f64 * 0.1).round() as usize);
//! let acc_dirty = api::evaluate_model(&s.train, &s.valid).unwrap();
//! assert!(acc_dirty > 0.0 && acc_dirty <= 1.0);
//! ```

pub mod api;
pub mod error;
pub mod scenario;
pub mod workflows;

pub use error::NdeError;

// Re-export the subsystem crates under stable names.
pub use nde_cleaning as cleaning;
pub use nde_data as data;
pub use nde_importance as importance;
pub use nde_ml as ml;
pub use nde_pipeline as pipeline;
pub use nde_robust as robust;
pub use nde_uncertain as uncertain;

/// Convenience result alias for the facade.
pub type Result<T> = std::result::Result<T, NdeError>;
