//! The three hands-on workflows of the tutorial, one per figure:
//!
//! * [`identify`] — Fig. 2: inject label errors, find them with KNN-Shapley,
//!   clean the worst tuples, recover accuracy;
//! * [`debug`] — Fig. 3: run the preprocessing pipeline with provenance,
//!   push importance back to the source tables, fix the sources;
//! * [`learn`] — Fig. 4: inject missing values, bound the worst-case loss
//!   with Zorro, compare against naive imputation.

pub mod debug;
pub mod identify;
pub mod learn;
