//! Fig. 2 — *Identify*: data importance for data error detection.
//!
//! Inject synthetic label errors into the training letters, observe the
//! accuracy drop, rank tuples with KNN-Shapley, hand the lowest-ranked to a
//! cleaning oracle, and observe the recovery. The paper's example output:
//! `Accuracy with data errors: 0.76 → cleaning improved it to 0.79`.

use crate::api::{evaluate_model, inject_label_errors, knn_shapley_values};
use crate::scenario::LettersScenario;
use crate::Result;
use nde_cleaning::oracle::TableOracle;
use nde_importance::{detection_precision_at_k, ImportanceScores};

/// Configuration of the Fig. 2 workflow.
#[derive(Debug, Clone)]
pub struct IdentifyConfig {
    /// Fraction of training labels flipped.
    pub error_fraction: f64,
    /// Number of lowest-importance tuples handed to the oracle.
    pub clean_count: usize,
    /// Injection seed.
    pub seed: u64,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            error_fraction: 0.1,
            clean_count: 25,
            seed: 0,
        }
    }
}

/// Outcome of the Fig. 2 workflow.
#[derive(Debug, Clone)]
pub struct IdentifyOutcome {
    /// Validation accuracy on the clean training data.
    pub acc_clean: f64,
    /// Validation accuracy after injecting label errors.
    pub acc_dirty: f64,
    /// Validation accuracy after prioritized cleaning.
    pub acc_cleaned: f64,
    /// Number of injected errors.
    pub injected: usize,
    /// Precision@`clean_count`: fraction of cleaned tuples that were truly dirty.
    pub detection_precision: f64,
    /// The tuples sent to the oracle (lowest importance first).
    pub cleaned_rows: Vec<usize>,
}

/// Run the Fig. 2 workflow on a letters scenario.
pub fn run(scenario: &LettersScenario, config: &IdentifyConfig) -> Result<IdentifyOutcome> {
    let acc_clean = evaluate_model(&scenario.train, &scenario.valid)?;

    // Inject label errors into a copy of the training letters.
    let mut dirty = scenario.train.clone();
    let report = inject_label_errors(&mut dirty, config.error_fraction, config.seed)?;
    let acc_dirty = evaluate_model(&dirty, &scenario.valid)?;

    // Rank by KNN-Shapley and clean the lowest tuples with the oracle.
    let values = knn_shapley_values(&dirty, &scenario.valid)?;
    let scores = ImportanceScores::new("knn-shapley", values);
    let cleaned_rows = scores.bottom_k(config.clean_count);
    let detection_precision =
        detection_precision_at_k(&scores, &report.affected, config.clean_count);

    let oracle = TableOracle::new(scenario.train.clone());
    let mut repaired = dirty.clone();
    oracle.repair_rows(&mut repaired, &cleaned_rows)?;
    let acc_cleaned = evaluate_model(&repaired, &scenario.valid)?;

    Ok(IdentifyOutcome {
        acc_clean,
        acc_dirty,
        acc_cleaned,
        injected: report.affected.len(),
        detection_precision,
        cleaned_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::load_recommendation_letters;

    #[test]
    fn cleaning_recovers_accuracy() {
        let scenario = load_recommendation_letters(400, 21);
        let outcome = run(
            &scenario,
            &IdentifyConfig {
                error_fraction: 0.15,
                clean_count: 25,
                seed: 3,
            },
        )
        .unwrap();
        assert!(outcome.acc_dirty < outcome.acc_clean, "{outcome:?}");
        assert!(
            outcome.acc_cleaned > outcome.acc_dirty,
            "cleaning did not help: {outcome:?}"
        );
        assert!(outcome.detection_precision > 0.3, "{outcome:?}");
        assert_eq!(outcome.cleaned_rows.len(), 25);
        assert_eq!(outcome.injected, 36);
    }

    #[test]
    fn deterministic() {
        let scenario = load_recommendation_letters(150, 22);
        let cfg = IdentifyConfig::default();
        let a = run(&scenario, &cfg).unwrap();
        let b = run(&scenario, &cfg).unwrap();
        assert_eq!(a.acc_cleaned, b.acc_cleaned);
        assert_eq!(a.cleaned_rows, b.cleaned_rows);
    }
}
