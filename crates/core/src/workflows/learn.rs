//! Fig. 4 — *Learn*: reasoning about uncertainty in the predictions.
//!
//! For increasing percentages of MNAR missingness in `employer_rating`,
//! train the Zorro symbolic model and report the maximum worst-case loss —
//! the monotonically growing curve of Fig. 4 — and compare against a
//! baseline trained on mean-imputed data.

use crate::api::{encode_symbolic, estimate_with_zorro, SymbolicEncoding};
use crate::scenario::LettersScenario;
use crate::Result;
use nde_data::inject::Missingness;
use nde_ml::metrics::mean_squared_error;
use nde_uncertain::zorro::train_concrete_gd;

/// Configuration of the Fig. 4 workflow.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Feature made missing (one of [`crate::api::SYMBOLIC_FEATURES`]).
    pub feature: String,
    /// Missing percentages swept (e.g. `[5, 10, 15, 20, 25]`).
    pub percentages: Vec<f64>,
    /// Missingness mechanism (the paper uses MNAR).
    pub mechanism: Missingness,
    /// Injection seed.
    pub seed: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            feature: "employer_rating".into(),
            percentages: vec![5.0, 10.0, 15.0, 20.0, 25.0],
            mechanism: Missingness::Mnar { skew: 4.0 },
            seed: 0,
        }
    }
}

/// One point of the Fig. 4 curve.
#[derive(Debug, Clone)]
pub struct LearnPoint {
    /// Missing percentage.
    pub percentage: f64,
    /// Zorro's maximum worst-case test loss.
    pub max_worst_case_loss: f64,
    /// Test MSE of the baseline trained on mean-imputed data.
    pub baseline_mse: f64,
}

/// Outcome of the Fig. 4 workflow.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// One point per requested percentage, in order.
    pub points: Vec<LearnPoint>,
}

impl LearnOutcome {
    /// `true` iff the worst-case bound is (weakly) monotone in missingness —
    /// the qualitative shape of Fig. 4.
    pub fn is_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].max_worst_case_loss >= w[0].max_worst_case_loss - 1e-9)
    }
}

/// Run the Fig. 4 workflow.
pub fn run(scenario: &LettersScenario, config: &LearnConfig) -> Result<LearnOutcome> {
    let mut points = Vec::with_capacity(config.percentages.len());
    for &pct in &config.percentages {
        let encoding = encode_symbolic(
            &scenario.train,
            &config.feature,
            pct,
            config.mechanism.clone(),
            config.seed,
        )?;
        let max_worst_case_loss = estimate_with_zorro(&encoding, &scenario.test)?;
        let baseline_mse = baseline_imputed_mse(&encoding, scenario)?;
        points.push(LearnPoint {
            percentage: pct,
            max_worst_case_loss,
            baseline_mse,
        });
    }
    Ok(LearnOutcome { points })
}

/// Baseline: impute the symbolic cells at their interval midpoints (i.e.
/// mean-of-domain imputation), train the same GD linear model concretely,
/// and measure plain test MSE.
fn baseline_imputed_mse(encoding: &SymbolicEncoding, scenario: &LettersScenario) -> Result<f64> {
    let world = encoding.x.midpoint_world();
    let w = train_concrete_gd(&world, &encoding.y, &crate::api::zorro_config())?;
    let (tx, ty) = encoding.encode_test(&scenario.test)?;
    let preds: Vec<f64> = tx
        .iter_rows()
        .map(|row| row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[row.len()])
        .collect();
    Ok(mean_squared_error(&ty, &preds)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::load_recommendation_letters;

    #[test]
    fn curve_is_monotone_and_dominates_baseline() {
        let scenario = load_recommendation_letters(300, 41);
        let outcome = run(&scenario, &LearnConfig::default()).unwrap();
        assert_eq!(outcome.points.len(), 5);
        assert!(outcome.is_monotone(), "{:?}", outcome.points);
        for p in &outcome.points {
            // Worst-case bound must dominate the achievable baseline loss.
            assert!(
                p.max_worst_case_loss >= p.baseline_mse * 0.99,
                "bound {p:?} below achievable loss"
            );
            assert!(p.baseline_mse.is_finite() && p.baseline_mse >= 0.0);
        }
    }

    #[test]
    fn zero_missing_gives_tightest_bound() {
        let scenario = load_recommendation_letters(200, 42);
        let cfg = LearnConfig {
            percentages: vec![0.0, 25.0],
            ..Default::default()
        };
        let outcome = run(&scenario, &cfg).unwrap();
        assert!(outcome.points[1].max_worst_case_loss > outcome.points[0].max_worst_case_loss);
    }
}
