//! Fig. 3 — *Debug*: incorporating preprocessing pipelines.
//!
//! Run the hiring pipeline (two joins, a sector filter, a `has_twitter`
//! projection, feature encoders) with provenance, compute Datascope
//! importance for the *source* letters, remove the lowest-ranked source
//! tuples, and measure the accuracy change (the paper's snippet prints
//! `Removal changed accuracy by 0.027`).

use crate::scenario::LettersScenario;
use crate::Result;
use nde_importance::datascope::datascope_importance;
use nde_importance::ImportanceScores;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::feature::FeaturePipeline;
use nde_pipeline::render::render_plan;

/// Configuration of the Fig. 3 workflow.
#[derive(Debug, Clone)]
pub struct DebugConfig {
    /// Text-hash embedding width.
    pub text_dims: usize,
    /// How many lowest-importance source tuples to remove.
    pub remove_count: usize,
    /// KNN neighborhood for both the Shapley proxy and the final model.
    pub k: usize,
}

impl Default for DebugConfig {
    fn default() -> Self {
        DebugConfig {
            text_dims: 32,
            remove_count: 25,
            k: 5,
        }
    }
}

/// Outcome of the Fig. 3 workflow.
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// ASCII rendering of the pipeline plan.
    pub plan: String,
    /// Rows of the pipeline's training output.
    pub pipeline_rows: usize,
    /// Validation accuracy before any intervention.
    pub acc_before: f64,
    /// Validation accuracy after removing the lowest-importance source tuples.
    pub acc_after: f64,
    /// `acc_after − acc_before`.
    pub accuracy_delta: f64,
    /// The removed source-row indices (into the training letters table).
    pub removed_rows: Vec<usize>,
    /// Importance of every source letters row (0 for rows the pipeline drops).
    pub source_importance: Vec<f64>,
}

/// Run the Fig. 3 workflow.
pub fn run(scenario: &LettersScenario, config: &DebugConfig) -> Result<DebugOutcome> {
    let mut fp = FeaturePipeline::hiring(config.text_dims);
    let plan = render_plan(&fp.plan, fp.root)?;

    // Training run with provenance; validation run with the fitted encoders.
    let train_out = fp.fit_run(&scenario.pipeline_inputs(&scenario.train), true)?;
    let valid_out = fp.transform_run(&scenario.pipeline_inputs(&scenario.valid), false)?;

    let eval = |train: &nde_ml::dataset::Dataset| -> Result<f64> {
        let mut model = KnnClassifier::new(config.k);
        model.fit(train)?;
        Ok(model.accuracy(&valid_out.dataset))
    };
    let acc_before = eval(&train_out.dataset)?;

    // Datascope: importance of the source letters via provenance pushback.
    let scores = datascope_importance(
        &train_out,
        &valid_out.dataset,
        "train_df",
        scenario.train.n_rows(),
        config.k,
    )?;
    let scores = ImportanceScores::new("datascope", scores.values);
    let removed_rows = scores.bottom_k(config.remove_count);

    // Remove those source tuples and re-run the pipeline end to end.
    let keep: Vec<usize> = (0..scenario.train.n_rows())
        .filter(|r| !removed_rows.contains(r))
        .collect();
    let train_removed = scenario.train.take(&keep)?;
    let mut fp2 = FeaturePipeline::hiring(config.text_dims);
    let train_out2 = fp2.fit_run(&scenario.pipeline_inputs(&train_removed), false)?;
    let valid_out2 = fp2.transform_run(&scenario.pipeline_inputs(&scenario.valid), false)?;
    let mut model = KnnClassifier::new(config.k);
    model.fit(&train_out2.dataset)?;
    let acc_after = model.accuracy(&valid_out2.dataset);

    Ok(DebugOutcome {
        plan,
        pipeline_rows: train_out.dataset.len(),
        acc_before,
        acc_after,
        accuracy_delta: acc_after - acc_before,
        removed_rows,
        source_importance: scores.values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::inject_label_errors;
    use crate::scenario::load_recommendation_letters;

    #[test]
    fn workflow_runs_and_reports_plan() {
        let scenario = load_recommendation_letters(300, 31);
        let outcome = run(&scenario, &DebugConfig::default()).unwrap();
        assert!(outcome.plan.contains("Join"));
        assert!(outcome.pipeline_rows > 0);
        assert_eq!(outcome.removed_rows.len(), 25);
        assert_eq!(outcome.source_importance.len(), scenario.train.n_rows());
        assert!((outcome.accuracy_delta - (outcome.acc_after - outcome.acc_before)).abs() < 1e-12);
    }

    #[test]
    fn removing_harmful_source_tuples_helps_on_dirty_data() {
        let mut scenario = load_recommendation_letters(400, 32);
        inject_label_errors(&mut scenario.train, 0.25, 33).unwrap();
        let outcome = run(&scenario, &DebugConfig::default()).unwrap();
        assert!(
            outcome.accuracy_delta >= -0.02,
            "removal should not clearly hurt: {outcome:?}"
        );
    }
}
