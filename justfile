# Developer shortcuts. `just verify` is the tier-1 gate CI enforces.

# Build + test exactly as CI does.
verify:
    cargo build --release --offline
    cargo test -q --offline
    cargo test -q --release --offline -p nde-tests --test parallel_substrate

# Budget-capped bench smoke (what CI runs to keep figure runs bounded).
bench-smoke:
    cargo build --release --offline -p nde-bench --bin exp_shapley_scaling
    ./target/release/exp_shapley_scaling --smoke --threads=1,4 --max-utility-calls=300

# Batched-vs-unbatched utility smoke: runs the scaling bench with 8-wide
# waves and asserts the machine-readable report carries the comparison.
bench-batch:
    cargo build --release --offline -p nde-bench --bin exp_shapley_scaling
    ./target/release/exp_shapley_scaling --smoke --batch-size=8
    grep -q '"batch_comparison"' BENCH_shapley.json
    grep -q '"ms_per_call"' BENCH_shapley.json

# Pipeline-engine smoke: arena + parallel operators vs the sequential tree
# path, appended to the BENCH_pipeline.json trajectory (prints the
# last-vs-previous delta when history exists).
bench-pipeline:
    cargo build --release --offline -p nde-bench --bin exp_pipeline_scaling
    ./target/release/exp_pipeline_scaling --smoke --threads=1,4 --check=40
    grep -q '"end_to_end_speedup"' BENCH_pipeline.json
    grep -q '"git_commit"' BENCH_pipeline.json

# Storage-backend smoke: typed columnar planes vs the Value-per-cell
# reference backend on the E13 pipeline workload. The bench verifies
# bit-identical output/lineage, gates on columnar winning exec
# ms/output-row, and appends both timings to BENCH_pipeline.json; the
# differential property suite re-proves operation-level equivalence.
bench-columnar:
    cargo build --release --offline -p nde-bench --bin exp_pipeline_scaling
    ./target/release/exp_pipeline_scaling --smoke --threads=1,4 | tee /tmp/nde_backend_e13.txt
    grep -q 'backend gate OK' /tmp/nde_backend_e13.txt
    grep -q '"backend_speedup"' BENCH_pipeline.json
    cargo test -q --release --offline -p nde-tests --test columnar_backend

# Learn-pillar engine smoke: SoA interval kernels vs the AoS reference
# (Zorro fit, certain-KNN, possible worlds), appended to the
# BENCH_uncertain.json trajectory with the regression gate armed.
bench-uncertain:
    cargo build --release --offline -p nde-bench --bin exp_uncertain_scaling
    ./target/release/exp_uncertain_scaling --smoke --threads=1,4 --check=40
    grep -q '"end_to_end_speedup"' BENCH_uncertain.json
    grep -q '"runner"' BENCH_uncertain.json

# Thread-scaling gate (E13 pipeline exec + E14 Zorro fit): at the largest
# smoke size, max-threads must strictly beat one thread on multi-core
# hardware; on a single-core runner the gate degrades to a bounded
# pool-overhead check. Both binaries exit non-zero when the gate fails;
# the greps double-check the gate actually ran.
bench-scaling:
    cargo build --release --offline -p nde-bench --bin exp_pipeline_scaling --bin exp_uncertain_scaling
    ./target/release/exp_pipeline_scaling --smoke --threads=1,4 --check=40 | tee /tmp/nde_scaling_e13.txt
    grep -q 'scaling gate OK' /tmp/nde_scaling_e13.txt
    ./target/release/exp_uncertain_scaling --smoke --threads=1,4 --check=40 | tee /tmp/nde_scaling_e14.txt
    grep -q 'scaling gate OK' /tmp/nde_scaling_e14.txt
    cargo test -q --release --offline -p nde-tests --test pool_lifecycle

# Durability smoke: checkpoint overhead + crash recovery (clean and
# torn-record) with bit-identity asserted, appended to the
# BENCH_durability.json trajectory with the regression gate armed. Also
# runs the kill/resume chaos tests.
bench-durable:
    cargo build --release --offline -p nde-bench --bin exp_durability
    ./target/release/exp_durability --smoke --check=40
    grep -q '"recover_ms"' BENCH_durability.json
    grep -q '"runner"' BENCH_durability.json
    cargo test -q --release --offline -p nde-tests --test durability

# Incremental-maintenance smoke: delta propagation vs full re-execution
# per fix path plus the cleaning loop under both maintenance modes, with
# bit-identity asserted and the incremental-wins criterion enforced,
# appended to the BENCH_incremental.json trajectory with the regression
# gate armed. Also runs the differential property suite.
bench-incremental:
    cargo build --release --offline -p nde-bench --bin exp_incremental
    ./target/release/exp_incremental --smoke --check=40
    grep -q '"incremental_us"' BENCH_incremental.json
    grep -q '"runner"' BENCH_incremental.json
    cargo test -q --release --offline -p nde-tests --test incremental_delta

# Format and lint.
lint:
    cargo fmt --all
    cargo clippy --workspace --all-targets --offline -- -D warnings

# Docs must build warning-free (broken intra-doc links fail CI).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

# Run every figure/table experiment binary.
experiments:
    cargo build --release -p nde-bench --bins
    ./target/release/run_all_experiments

# Timing benches (in-tree harness, no criterion).
bench:
    cargo bench --workspace --offline
