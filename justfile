# Developer shortcuts. `just verify` is the tier-1 gate CI enforces.

# Build + test exactly as CI does.
verify:
    cargo build --release --offline
    cargo test -q --offline

# Format and lint.
lint:
    cargo fmt --all
    cargo clippy --workspace --all-targets --offline -- -D warnings

# Run every figure/table experiment binary.
experiments:
    cargo build --release -p nde-bench --bins
    ./target/release/run_all_experiments

# Timing benches (in-tree harness, no criterion).
bench:
    cargo bench --workspace --offline
