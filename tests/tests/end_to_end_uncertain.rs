//! End-to-end integration of the *Learn* pillar: symbolic encoding, Zorro
//! bounds, certain predictions, dataset multiplicity and possible worlds
//! working together over the shared scenario.

use nde::api::{encode_symbolic, estimate_with_zorro, zorro_config};
use nde::scenario::load_recommendation_letters;
use nde_data::inject::Missingness;
use nde_data::rng::seeded;
use nde_data::rng::Rng;
use nde_ml::models::knn::KnnClassifier;
use nde_uncertain::certain_knn::certain_coverage;
use nde_uncertain::worlds::sample_worlds;
use nde_uncertain::zorro::{train_concrete_gd, ZorroRegressor};

#[test]
fn zorro_bound_contains_many_sampled_worlds() {
    let s = load_recommendation_letters(250, 21);
    let enc =
        encode_symbolic(&s.train, "employer_rating", 0.15, Missingness::Mcar, 22).expect("encodes");
    let cfg = zorro_config();
    let mut zorro = ZorroRegressor::new(cfg.clone());
    zorro.fit(&enc.x, &enc.y).expect("fits");
    let (tx, ty) = enc.encode_test(&s.test).expect("test encodes");
    let bound = zorro.max_worst_case_loss(&tx, &ty).expect("bound");

    // Ten random imputations: their concrete max loss must stay below the bound.
    let mut rng = seeded(23);
    for _ in 0..10 {
        let mut world = enc.x.midpoint_world();
        for (r, row) in enc.x.iter_rows().enumerate() {
            for (c, iv) in row.iter().enumerate() {
                if !iv.is_point() {
                    world.set(r, c, iv.lo + rng.gen::<f64>() * iv.width());
                }
            }
        }
        let w = train_concrete_gd(&world, &enc.y, &cfg).expect("trains");
        let max_loss = tx
            .iter_rows()
            .zip(&ty)
            .map(|(row, &t)| {
                let pred: f64 = row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[row.len()];
                (pred - t) * (pred - t)
            })
            .fold(0.0, f64::max);
        assert!(
            max_loss <= bound + 1e-6,
            "sampled world loss {max_loss} exceeds bound {bound}"
        );
    }
}

#[test]
fn certain_predictions_and_world_sampling_are_consistent() {
    // If a 1-NN prediction is certain, sampled worlds must agree with it
    // (100% share); uncertain ones may split.
    let s = load_recommendation_letters(150, 24);
    let enc =
        encode_symbolic(&s.train, "employer_rating", 0.2, Missingness::Mcar, 25).expect("encodes");
    let labels: Vec<usize> = enc.y.iter().map(|&v| usize::from(v > 0.0)).collect();
    let (tx, _) = enc.encode_test(&s.test).expect("test encodes");
    let (coverage, outcomes) = certain_coverage(&enc.x, &labels, &tx).expect("coverage");
    assert!((0.0..=1.0).contains(&coverage));

    let ensemble = sample_worlds(&KnnClassifier::new(1), &enc.x, &labels, 2, &tx, 40, 26)
        .expect("worlds sample");
    for (t, o) in outcomes.iter().enumerate() {
        if o.is_certain() {
            let share = ensemble.shares[t][o.label()];
            assert!(
                (share - 1.0).abs() < 1e-12,
                "certain point {t} got share {share} in sampled worlds"
            );
        }
    }
}

#[test]
fn more_missingness_weakly_reduces_certainty_and_raises_bounds() {
    let s = load_recommendation_letters(200, 27);
    let mut last_bound = 0.0;
    let mut last_coverage = 1.0 + 1e-9;
    for pct in [0.05, 0.15, 0.3] {
        let enc = encode_symbolic(&s.train, "employer_rating", pct, Missingness::Mcar, 28)
            .expect("encodes");
        let bound = estimate_with_zorro(&enc, &s.test).expect("bound");
        assert!(
            bound >= last_bound - 1e-9,
            "bound shrank: {bound} < {last_bound}"
        );
        last_bound = bound;

        let labels: Vec<usize> = enc.y.iter().map(|&v| usize::from(v > 0.0)).collect();
        let (tx, _) = enc.encode_test(&s.test).expect("test encodes");
        let (coverage, _) = certain_coverage(&enc.x, &labels, &tx).expect("coverage");
        assert!(
            coverage <= last_coverage + 1e-9,
            "coverage grew with more missingness: {coverage} > {last_coverage}"
        );
        last_coverage = coverage;
    }
}
