//! The batched utility engine's cross-crate contract: batching is a
//! purely *physical* optimization. For every estimator, thread count and
//! budget, a grouped [`BatchPolicy`] must produce bit-identical scores,
//! reports and checkpoints to the unbatched path — including when a budget
//! trips mid-wave and when a run resumes from a mid-permutation checkpoint.

use nde_data::generate::blobs::two_gaussians;
use nde_importance::{
    banzhaf, beta_shapley, tmc_shapley, BanzhafParams, BatchPolicy, BetaShapleyParams,
    ImportanceRun, TmcParams,
};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_robust::par::MemoCache;
use nde_robust::RunBudget;

fn workload(n: usize, n_valid: usize, seed: u64) -> (Dataset, Dataset) {
    let nd = two_gaussians(n + n_valid, 3, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n).collect::<Vec<_>>());
    let valid = all.subset(&(n..n + n_valid).collect::<Vec<_>>());
    for f in [1, 6, 13] {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid)
}

fn tmc_params() -> TmcParams {
    TmcParams {
        permutations: 10,
        truncation_tolerance: 0.01,
    }
}

#[test]
fn batched_tmc_is_bit_identical_across_threads_without_budget() {
    let (train, valid) = workload(22, 12, 9);
    let knn = KnnClassifier::new(1);
    let baseline = tmc_shapley(
        &ImportanceRun::new(5).with_batch(BatchPolicy::Unbatched),
        &knn,
        &train,
        &valid,
        &tmc_params(),
    )
    .unwrap();
    for threads in [1, 4] {
        for size in [1, 4, 32] {
            let batched = tmc_shapley(
                &ImportanceRun::new(5)
                    .with_threads(threads)
                    .with_batch(BatchPolicy::Grouped { size }),
                &knn,
                &train,
                &valid,
                &tmc_params(),
            )
            .unwrap();
            assert_eq!(
                baseline.scores, batched.scores,
                "threads={threads} size={size}"
            );
            assert_eq!(baseline.report.utility_calls, batched.report.utility_calls);
            assert!(batched.report.batched_evals > 0, "scorer must be used");
        }
    }
}

#[test]
fn batched_tmc_trips_budget_at_the_same_point_across_threads() {
    let (train, valid) = workload(22, 12, 9);
    let knn = KnnClassifier::new(1);
    // Trips mid-permutation, so the checkpoint carries in-flight state.
    let budget = RunBudget::unlimited().with_max_utility_calls(75);
    let baseline = tmc_shapley(
        &ImportanceRun::new(5)
            .with_budget(budget.clone())
            .with_batch(BatchPolicy::Unbatched),
        &knn,
        &train,
        &valid,
        &tmc_params(),
    )
    .unwrap();
    assert!(!baseline.report.diagnostics.as_ref().unwrap().completed());
    let base_ckpt = baseline.report.checkpoint.as_ref().unwrap();
    for threads in [1, 4] {
        let batched = tmc_shapley(
            &ImportanceRun::new(5)
                .with_threads(threads)
                .with_budget(budget.clone())
                .with_batch(BatchPolicy::Grouped { size: 8 }),
            &knn,
            &train,
            &valid,
            &tmc_params(),
        )
        .unwrap();
        assert_eq!(baseline.scores, batched.scores, "threads={threads}");
        assert_eq!(baseline.report.utility_calls, 75);
        assert_eq!(batched.report.utility_calls, 75);
        // The entire checkpoint — cursor, rng state, in-flight walk, float
        // totals — must match the unbatched run's exactly.
        assert_eq!(base_ckpt, batched.report.checkpoint.as_ref().unwrap());
    }
}

#[test]
fn batched_run_resumes_from_an_unbatched_mid_permutation_checkpoint() {
    let (train, valid) = workload(22, 12, 9);
    let knn = KnnClassifier::new(1);
    let full = tmc_shapley(&ImportanceRun::new(6), &knn, &train, &valid, &tmc_params()).unwrap();
    // Interrupt unbatched mid-permutation, resume with batched waves (and
    // vice versa): checkpoints are interchangeable because batching never
    // leaks into the logical walk.
    for (first, second) in [
        (BatchPolicy::Unbatched, BatchPolicy::Grouped { size: 8 }),
        (BatchPolicy::Grouped { size: 8 }, BatchPolicy::Unbatched),
    ] {
        let tripped = tmc_shapley(
            &ImportanceRun::new(6)
                .with_budget(RunBudget::unlimited().with_max_utility_calls(60))
                .with_batch(first),
            &knn,
            &train,
            &valid,
            &tmc_params(),
        )
        .unwrap();
        let ckpt = tripped.report.checkpoint.unwrap();
        assert!(
            ckpt.inflight.is_some(),
            "budget must trip mid-permutation for this test to bite"
        );
        let resumed = tmc_shapley(
            &ImportanceRun::new(6)
                .with_checkpoint(&ckpt)
                .with_batch(second),
            &knn,
            &train,
            &valid,
            &tmc_params(),
        )
        .unwrap();
        assert_eq!(
            full.scores, resumed.scores,
            "{first:?} then {second:?} must equal the uninterrupted run"
        );
    }
}

#[test]
fn batched_banzhaf_and_beta_match_unbatched_at_every_thread_count() {
    let (train, valid) = workload(16, 10, 4);
    let knn = KnnClassifier::new(1);
    let banzhaf_base = banzhaf(
        &ImportanceRun::new(2).with_batch(BatchPolicy::Unbatched),
        &knn,
        &train,
        &valid,
        &BanzhafParams { samples: 80 },
    )
    .unwrap();
    let beta_base = beta_shapley(
        &ImportanceRun::new(2).with_batch(BatchPolicy::Unbatched),
        &knn,
        &train,
        &valid,
        &BetaShapleyParams {
            samples_per_point: 10,
            ..BetaShapleyParams::default()
        },
    )
    .unwrap();
    for threads in [1, 4] {
        let run = ImportanceRun::new(2)
            .with_threads(threads)
            .with_batch(BatchPolicy::Grouped { size: 16 });
        let bz = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 80 }).unwrap();
        assert_eq!(banzhaf_base.scores, bz.scores, "threads={threads}");
        assert!(bz.report.batched_evals > 0);
        let bs = beta_shapley(
            &run,
            &knn,
            &train,
            &valid,
            &BetaShapleyParams {
                samples_per_point: 10,
                ..BetaShapleyParams::default()
            },
        )
        .unwrap();
        assert_eq!(beta_base.scores, bs.scores, "threads={threads}");
        assert!(bs.report.batched_evals > 0);
    }
}

#[test]
fn cache_and_batching_compose_without_changing_scores_or_trip_points() {
    let (train, valid) = workload(18, 10, 7);
    let knn = KnnClassifier::new(1);
    let budget = RunBudget::unlimited().with_max_utility_calls(110);
    let plain = tmc_shapley(
        &ImportanceRun::new(12)
            .with_budget(budget.clone())
            .with_batch(BatchPolicy::Unbatched),
        &knn,
        &train,
        &valid,
        &TmcParams {
            permutations: 20,
            truncation_tolerance: 0.0,
        },
    )
    .unwrap();
    let cache = MemoCache::new();
    let cached = tmc_shapley(
        &ImportanceRun::new(12)
            .with_threads(4)
            .with_budget(budget)
            .with_cache(&cache)
            .with_batch(BatchPolicy::Grouped { size: 8 }),
        &knn,
        &train,
        &valid,
        &TmcParams {
            permutations: 20,
            truncation_tolerance: 0.0,
        },
    )
    .unwrap();
    assert_eq!(plain.scores, cached.scores);
    // Cache hits still count as logical calls: identical trip point.
    assert_eq!(plain.report.utility_calls, cached.report.utility_calls);
    assert!(cached.report.cache_hits > 0);
    assert_eq!(
        plain.report.checkpoint.unwrap().cursor,
        cached.report.checkpoint.unwrap().cursor
    );
}
