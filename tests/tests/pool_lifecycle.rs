//! Lifecycle tests for the resident [`WorkerPool`]: reuse across many
//! jobs must stay bit-identical to the scoped-spawn reference, worker
//! panics must surface as [`WorkerFailure`] without poisoning the pool,
//! and dropping a pool must join every worker thread (no leaks, even
//! when a chaos kill switch stops a job mid-flight).

use nde_robust::chaos::FaultSchedule;
use nde_robust::par::{par_map_indexed_scratch_scoped, CostHint, WorkerFailure, WorkerPool};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tests that create (and count) pool threads must not overlap — the
/// harness runs tests concurrently on multi-core machines, and a pool
/// spawned by a neighboring test would skew `/proc` thread counts.
static POOL_TESTS: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    POOL_TESTS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Live threads in this process (Linux `/proc/self/status`); `None` where
/// the proc filesystem is unavailable, in which case leak checks degrade
/// to "drop returns" (a deadlocked join would hang the test instead).
fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// A deterministic, mildly expensive work item: enough arithmetic that
/// adaptive chunking engages, pure in `i` so every schedule agrees.
fn work(i: u64) -> u64 {
    let mut acc = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..64 {
        acc = acc.rotate_left(7) ^ acc.wrapping_add(i);
    }
    acc
}

#[test]
fn pool_reuse_is_bit_identical_to_scoped_spawns() {
    let _serial = serialize();
    let pool = WorkerPool::new(3);
    let stop = AtomicBool::new(false);
    let reference = par_map_indexed_scratch_scoped::<_, _, (), _, _>(
        4,
        0..500,
        &stop,
        || (),
        |(), i| Ok(work(i)),
    )
    .unwrap();
    // Many calls on one pool, at several thread counts, with and without
    // cost hints: every run must reproduce the scoped reference exactly.
    for round in 0..10 {
        for &threads in &[1, 2, 4, 7] {
            let cost = if round % 2 == 0 {
                CostHint::Unknown
            } else {
                CostHint::PerItemNanos(50_000)
            };
            let got = pool
                .map_indexed::<u64, (), _>(threads, 0..500, &stop, cost, |i| Ok(work(i)))
                .unwrap();
            assert_eq!(got, reference, "round {round}, {threads} threads");
        }
    }
}

#[test]
fn worker_panic_surfaces_as_failure_and_pool_stays_usable() {
    let _serial = serialize();
    let pool = WorkerPool::new(2);
    let stop = AtomicBool::new(false);
    // A chaos schedule decides which indices blow up; the smallest one
    // must win regardless of which worker hits it first.
    let schedule = FaultSchedule::at(&[13, 401]);
    let err = pool
        .map_indexed::<u64, (), _>(4, 0..500, &stop, CostHint::PerItemNanos(50_000), |i| {
            if schedule.should_fail(i) {
                panic!("injected fault at {i}");
            }
            Ok(work(i))
        })
        .unwrap_err();
    match err {
        WorkerFailure::Panic(i, msg) => {
            assert_eq!(i, 13, "smallest failing index wins");
            assert!(msg.contains("injected fault"), "{msg}");
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    // The same pool keeps serving correct answers afterwards.
    for _ in 0..3 {
        let ok = pool
            .map_indexed::<u64, (), _>(4, 0..100, &stop, CostHint::Unknown, |i| Ok(work(i)))
            .unwrap();
        assert_eq!(ok.len(), 100);
        assert!(ok.iter().all(|&(i, v)| v == work(i)));
    }
}

#[test]
fn error_results_match_at_every_thread_count() {
    let _serial = serialize();
    let pool = WorkerPool::new(3);
    let stop = AtomicBool::new(false);
    for &threads in &[1, 2, 4, 7] {
        let err = pool
            .map_indexed::<u64, String, _>(
                threads,
                0..300,
                &stop,
                CostHint::PerItemNanos(20_000),
                |i| {
                    if i >= 37 {
                        Err(format!("bad item {i}"))
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            WorkerFailure::Err(37, "bad item 37".to_string()),
            "{threads} threads"
        );
    }
}

#[test]
fn dropping_a_pool_joins_all_workers() {
    let _serial = serialize();
    let before = live_threads();
    {
        let pool = WorkerPool::new(4);
        let stop = AtomicBool::new(false);
        let out = pool
            .map_indexed::<u64, (), _>(5, 0..200, &stop, CostHint::Unknown, |i| Ok(work(i)))
            .unwrap();
        assert_eq!(out.len(), 200);
        if let (Some(b), Some(d)) = (before, live_threads()) {
            assert!(d >= b + 4, "pool workers alive while pool exists");
        }
    }
    // Drop joined the workers: the thread count is back where it started.
    if let (Some(b), Some(a)) = (before, live_threads()) {
        assert_eq!(a, b, "dropped pool leaked worker threads");
    }
}

#[test]
fn kill_switch_mid_job_leaves_no_leaks_and_pool_reusable() {
    let _serial = serialize();
    let before = live_threads();
    {
        let pool = Arc::new(WorkerPool::new(3));
        let stop = AtomicBool::new(false);
        let done = AtomicU64::new(0);
        // The kill switch arms after 64 completions — mid-run, from inside
        // the workers, the way a tripped budget clock does it.
        let out = pool
            .map_indexed::<u64, (), _>(4, 0..10_000, &stop, CostHint::PerItemNanos(30_000), |i| {
                if done.fetch_add(1, Ordering::Relaxed) >= 64 {
                    stop.store(true, Ordering::Relaxed);
                }
                Ok(work(i))
            })
            .unwrap();
        assert!(
            out.len() >= 64 && out.len() < 10_000,
            "kill switch should truncate the run: {} items",
            out.len()
        );
        // Killed mid-job, the pool still serves the next job in full.
        stop.store(false, Ordering::Relaxed);
        let clean = pool
            .map_indexed::<u64, (), _>(4, 0..128, &stop, CostHint::Unknown, |i| Ok(work(i)))
            .unwrap();
        assert_eq!(clean.len(), 128);
    }
    if let (Some(b), Some(a)) = (before, live_threads()) {
        assert_eq!(a, b, "killed pool leaked worker threads");
    }
}

#[test]
fn zero_and_tiny_pools_agree_with_large_ones() {
    let _serial = serialize();
    let stop = AtomicBool::new(false);
    let reference: Vec<(u64, u64)> = (0..257).map(|i| (i, work(i))).collect();
    for workers in [0, 1, 3] {
        let pool = WorkerPool::new(workers);
        for &threads in &[1, 4, 8] {
            let got = pool
                .map_indexed::<u64, (), _>(threads, 0..257, &stop, CostHint::Unknown, |i| {
                    Ok(work(i))
                })
                .unwrap();
            assert_eq!(got, reference, "{workers} workers, {threads} threads");
        }
    }
}

#[test]
fn shared_pool_reports_activity_monotonically() {
    let _serial = serialize();
    let pool = WorkerPool::shared();
    let stop = AtomicBool::new(false);
    let before = pool.stats();
    let out = pool
        .map_indexed::<u64, (), _>(4, 0..64, &stop, CostHint::PerItemNanos(100_000), |i| {
            Ok(work(i))
        })
        .unwrap();
    assert_eq!(out.len(), 64);
    let after = pool.stats();
    assert!(after.jobs >= before.jobs);
    assert!(after.chunks > before.chunks, "{before:?} -> {after:?}");
    assert!(after.parks >= before.parks);
    assert!(after.wakes >= before.wakes);
}
