//! Property tests for the SoA interval engine: across many seeded random
//! matrices, missing-cell fractions, and thread counts, the SoA kernels
//! must be **bit-identical** to the AoS scalar-`Interval` reference paths.
//!
//! All randomness is seeded through the in-tree `nde_data::rng`, so every
//! run checks exactly the same matrices.

use nde_data::rng::{sample_indices, seeded, Rng};
use nde_ml::linalg::Matrix;
use nde_uncertain::certain_knn::{certain_prediction_1nn, CertainKnnIndex};
use nde_uncertain::symbolic::column_bounds_from_observed;
use nde_uncertain::zorro::{ZorroConfig, ZorroRegressor};
use nde_uncertain::{Interval, SymbolicMatrix};

/// Random concrete matrix with `missing` cells widened to column bounds.
fn random_symbolic(
    rows: usize,
    cols: usize,
    missing: usize,
    seed: u64,
) -> (SymbolicMatrix, Matrix) {
    let mut rng = seeded(seed);
    let x = Matrix::from_rows(
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect(),
    )
    .expect("rectangular");
    let bounds = column_bounds_from_observed(&x);
    let cells: Vec<(usize, usize)> = sample_indices(rows * cols, missing, &mut rng)
        .into_iter()
        .map(|i| (i / cols, i % cols))
        .collect();
    let sym = SymbolicMatrix::from_matrix_with_missing(&x, &cells, &bounds).expect("valid cells");
    (sym, x)
}

fn random_targets(rows: usize, interval_every: usize, seed: u64) -> Vec<Interval> {
    let mut rng = seeded(seed);
    (0..rows)
        .map(|r| {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if interval_every > 0 && r % interval_every == 0 {
                Interval::new(v - 0.1, v + 0.1)
            } else {
                Interval::point(v)
            }
        })
        .collect()
}

/// Zorro: for random matrices at several missing fractions, the SoA engine
/// at every thread count yields weight intervals bit-identical to the
/// sequential AoS reference.
#[test]
fn zorro_soa_equals_aos_reference_across_seeds_and_threads() {
    for (seed, rows, cols, missing) in [
        (11u64, 64usize, 3usize, 0usize),
        (12, 97, 5, 12),
        (13, 200, 4, 60),
        (14, 130, 6, 130 * 6 / 4),
    ] {
        let (sym, _) = random_symbolic(rows, cols, missing, seed);
        let y = random_targets(rows, 5, seed ^ 0xfeed);
        let config = ZorroConfig {
            epochs: 20,
            learning_rate: 0.05,
            l2: 1e-3,
            divergence_threshold: 1e9,
            threads: 1,
            pool: None,
        };
        let mut reference = ZorroRegressor::new(config.clone());
        reference
            .fit_uncertain_reference(&sym, &y)
            .expect("reference fit");
        let expected = reference.weight_intervals().expect("fitted").to_vec();
        for threads in [1usize, 2, 4, 7] {
            let mut engine = ZorroRegressor::new(config.clone().with_threads(threads));
            engine.fit_uncertain(&sym, &y).expect("engine fit");
            let got = engine.weight_intervals().expect("fitted");
            assert_eq!(
                got,
                &expected[..],
                "weights differ from AoS reference (seed {seed}, {threads} threads)"
            );
        }
    }
}

/// Certain-KNN: pruned and unpruned SoA verdicts match the AoS per-query
/// scan exactly, on every query, across missing fractions.
#[test]
fn knn_soa_verdicts_equal_aos_reference() {
    for (seed, rows, cols, missing) in [
        (21u64, 80usize, 3usize, 0usize),
        (22, 150, 4, 20),
        (23, 120, 5, 90),
    ] {
        let (sym, _) = random_symbolic(rows, cols, missing, seed);
        let mut rng = seeded(seed ^ 0xab);
        let labels: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..3usize)).collect();
        let queries: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..cols).map(|_| rng.gen_range(-2.5..2.5)).collect())
            .collect();
        let index = CertainKnnIndex::new(&sym, &labels).expect("index");
        for q in &queries {
            let reference = certain_prediction_1nn(&sym, &labels, q).expect("aos");
            let pruned = index.classify(q).expect("pruned");
            let unpruned = index.classify_unpruned(q).expect("unpruned");
            assert_eq!(pruned, reference, "pruned verdict differs (seed {seed})");
            assert_eq!(
                unpruned, reference,
                "unpruned verdict differs (seed {seed})"
            );
        }
    }
}

/// Batched classification is invariant to the thread count and equal to
/// the sequential per-query loop.
#[test]
fn knn_batch_is_thread_invariant() {
    let (sym, _) = random_symbolic(110, 4, 33, 31);
    let mut rng = seeded(99);
    let labels: Vec<usize> = (0..110).map(|_| rng.gen_range(0..2usize)).collect();
    let queries = Matrix::from_rows(
        (0..48)
            .map(|_| (0..4).map(|_| rng.gen_range(-2.5..2.5)).collect())
            .collect(),
    )
    .expect("rectangular");
    let index = CertainKnnIndex::new(&sym, &labels).expect("index");
    let sequential: Vec<_> = queries
        .iter_rows()
        .map(|q| index.classify(q).expect("classify"))
        .collect();
    for threads in [1usize, 2, 4, 7] {
        let batched = index.classify_batch(&queries, threads).expect("batch");
        assert_eq!(batched, sequential, "batch differs at {threads} threads");
    }
}
