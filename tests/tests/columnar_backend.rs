//! Differential tests: the typed columnar backend must be observationally
//! identical to the Value-per-cell reference backend for every table
//! operation, under generated data with nulls, duplicate keys, and injected
//! errors — and the radix-partitioned join must be thread-count invariant.

use nde_data::inject::{add_gaussian_noise, duplicate_rows, inject_missing, Missingness};
use nde_data::rng::{seeded, Rng};
use nde_data::{BackendKind, Column, DataType, Field, Schema, Table, Value};

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// A generated mixed-type table: Int / Float / Str / Bool columns, each with
/// nulls, duplicate values, and (for floats) both zero signs and repeats.
fn generated(name: &str, rows: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("score", DataType::Float),
        Field::new("tag", DataType::Str),
        Field::new("flag", DataType::Bool),
    ])
    .unwrap();
    let mut t = Table::empty(name, schema);
    let mut rng = seeded(seed);
    let tags = ["alpha", "beta", "gamma", "delta", ""];
    for _ in 0..rows {
        let id = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-5i64..20))
        };
        let score = if rng.gen_bool(0.1) {
            Value::Null
        } else if rng.gen_bool(0.2) {
            // Exercise signed zeros and exact repeats.
            Value::Float(if rng.gen_bool(0.5) { 0.0 } else { -0.0 })
        } else {
            Value::Float((rng.gen_range(-3i64..4) as f64) * 0.5)
        };
        let tag = if rng.gen_bool(0.15) {
            Value::Null
        } else {
            Value::Str(tags[rng.gen_range(0..tags.len())].to_string())
        };
        let flag = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Bool(rng.gen_bool(0.5))
        };
        t.push_row(vec![id, score, tag, flag]).unwrap();
    }
    t
}

/// The same logical table on both backends.
fn both(rows: usize, seed: u64) -> (Table, Table) {
    let c = generated("t", rows, seed);
    assert_eq!(c.backend_kind(), BackendKind::Columnar);
    let r = c.to_reference();
    assert_eq!(r.backend_kind(), BackendKind::Reference);
    assert_eq!(c, r);
    (c, r)
}

#[test]
fn backend_round_trip_is_lossless() {
    let (c, r) = both(300, 1);
    assert_eq!(c.to_reference().to_columnar(), c);
    assert_eq!(r.to_columnar().to_reference(), r);
    for row in 0..c.n_rows() {
        for col in ["id", "score", "tag", "flag"] {
            assert_eq!(c.get(row, col).unwrap(), r.get(row, col).unwrap());
            assert_eq!(c.get_ref(row, col).unwrap(), r.get_ref(row, col).unwrap());
        }
    }
}

#[test]
fn mutations_agree_across_backends() {
    let (mut c, mut r) = both(200, 2);
    // Identical push/set sequences land identically.
    let extra = generated("extra", 40, 3);
    for row in 0..extra.n_rows() {
        let vals: Vec<Value> = ["id", "score", "tag", "flag"]
            .iter()
            .map(|col| extra.get(row, col).unwrap())
            .collect();
        c.push_row(vals.clone()).unwrap();
        r.push_row(vals).unwrap();
    }
    assert_eq!(c, r);
    let mut rng = seeded(4);
    for _ in 0..60 {
        let row = rng.gen_range(0..c.n_rows());
        let (col, v) = match rng.gen_range(0..4) {
            0 => ("id", Value::Int(rng.gen_range(0i64..5))),
            1 => ("score", Value::Float(1.25)),
            2 => ("tag", Value::Str("patched".into())),
            _ => ("flag", Value::Null),
        };
        c.set(row, col, v.clone()).unwrap();
        r.set(row, col, v).unwrap();
    }
    assert_eq!(c, r);
    // Invalid mutations fail identically (and leave both untouched).
    for bad in [
        vec![Value::Int(1)],
        vec![
            Value::Str("wrong".into()),
            Value::Null,
            Value::Null,
            Value::Null,
        ],
    ] {
        let ec = format!("{:?}", c.push_row(bad.clone()).unwrap_err());
        let er = format!("{:?}", r.push_row(bad).unwrap_err());
        assert_eq!(ec, er);
    }
    let ec = format!("{:?}", c.set(0, "id", Value::Bool(true)).unwrap_err());
    let er = format!("{:?}", r.set(0, "id", Value::Bool(true)).unwrap_err());
    assert_eq!(ec, er);
    assert_eq!(c, r);
}

#[test]
fn row_and_column_ops_agree_across_backends() {
    let (c, r) = both(250, 5);
    let keep: Vec<usize> = (0..c.n_rows()).step_by(3).collect();
    assert_eq!(c.take(&keep).unwrap(), r.take(&keep).unwrap());

    let (cf, ck) = c.filter(|row| matches!(c.get_ref(row, "id"), Ok(v) if !v.is_null()));
    let (rf, rk) = r.filter(|row| matches!(r.get_ref(row, "id"), Ok(v) if !v.is_null()));
    assert_eq!(ck, rk);
    assert_eq!(cf, rf);

    assert_eq!(
        c.select(&["tag", "score"]).unwrap(),
        r.select(&["tag", "score"]).unwrap()
    );
    assert_eq!(
        c.drop_columns(&["flag"]).unwrap(),
        r.drop_columns(&["flag"]).unwrap()
    );

    let mut ca = c.clone();
    let mut ra = r.clone();
    // Cross-backend append: each side ingests the other's representation.
    ca.append(&r).unwrap();
    ra.append(&c).unwrap();
    assert_eq!(ca, ra);

    let bools: Vec<Option<bool>> = (0..c.n_rows()).map(|i| Some(i % 2 == 0)).collect();
    let mut cc = c.clone();
    let mut rc = r.clone();
    cc.add_column(
        Field::new("even", DataType::Bool),
        Column::Bool(bools.clone()),
    )
    .unwrap();
    rc.add_column(Field::new("even", DataType::Bool), Column::Bool(bools))
        .unwrap();
    assert_eq!(cc, rc);

    assert_eq!(c.missing_profile(), r.missing_profile());
    let (cs, cperm) = c.sort_by("score").unwrap();
    let (rs, rperm) = r.sort_by("score").unwrap();
    assert_eq!(cperm, rperm);
    assert_eq!(cs, rs);
}

#[test]
fn value_counts_and_distinct_agree_across_backends() {
    let (c, r) = both(400, 6);
    for col in ["id", "score", "tag", "flag"] {
        assert_eq!(
            c.value_counts(col).unwrap(),
            r.value_counts(col).unwrap(),
            "value_counts diverged on `{col}`"
        );
        let base = c.distinct_by(col, 1).unwrap();
        for threads in THREADS {
            assert_eq!(c.distinct_by(col, threads).unwrap(), base);
            assert_eq!(r.distinct_by(col, threads).unwrap(), base);
        }
        assert_eq!(
            c.take(&base.0).unwrap(),
            r.take(&base.0).unwrap(),
            "distinct rows diverged on `{col}`"
        );
    }
}

/// A right table keyed for joins: overlapping `id`s, duplicates, and nulls.
fn right_table(seed: u64) -> Table {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Str),
        Field::new("weight", DataType::Float),
    ])
    .unwrap();
    let mut t = Table::empty("right", schema);
    let mut rng = seeded(seed);
    let tags = ["alpha", "beta", "gamma", "unseen", ""];
    for _ in 0..120 {
        let id = if rng.gen_bool(0.08) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-5i64..25))
        };
        let tag = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Str(tags[rng.gen_range(0..tags.len())].to_string())
        };
        t.push_row(vec![id, tag, Value::Float(rng.gen_range(0..100) as f64)])
            .unwrap();
    }
    t
}

#[test]
fn joins_agree_across_backends_and_thread_counts() {
    let (lc, lr) = both(300, 7);
    let rc = right_table(8);
    let rr = rc.to_reference();
    for key in ["id", "tag"] {
        let (base_t, base_l) = lr.hash_join(&rr, key, key).unwrap();
        let (base_lt, base_ll) = lr.left_join(&rr, key, key).unwrap();
        for threads in THREADS {
            // Radix kernel (columnar × columnar) at every thread count…
            let (jt, jl) = lc.hash_join_par(&rc, key, key, threads).unwrap();
            assert_eq!(
                jl, base_l,
                "inner lineage diverged (key={key}, threads={threads})"
            );
            assert_eq!(
                jt, base_t,
                "inner join diverged (key={key}, threads={threads})"
            );
            let (lt, ll) = lc.left_join_par(&rc, key, key, threads).unwrap();
            assert_eq!(
                ll, base_ll,
                "left lineage diverged (key={key}, threads={threads})"
            );
            assert_eq!(
                lt, base_lt,
                "left join diverged (key={key}, threads={threads})"
            );
            // …and mixed-backend pairs fall back to the reference kernel
            // with the same observable output.
            let (mt, ml) = lc.hash_join_par(&rr, key, key, threads).unwrap();
            assert_eq!((mt, ml), (base_t.clone(), base_l.clone()));
            let (mt, ml) = lr.hash_join_par(&rc, key, key, threads).unwrap();
            assert_eq!((mt, ml), (base_t.clone(), base_l.clone()));
        }
    }
    // Joined outputs stay differentially equal downstream too.
    let (jc, _) = lc.hash_join(&rc, "id", "id").unwrap();
    let (jr, _) = lr.hash_join(&rr, "id", "id").unwrap();
    assert_eq!(
        jc.value_counts("tag").unwrap(),
        jr.value_counts("tag").unwrap()
    );
    assert_eq!(jc.to_reference(), jr);
}

#[test]
fn string_joins_agree_when_dictionaries_differ() {
    // Build two columnar tables whose dictionaries intern the same strings
    // in different orders; join must remap codes, not compare them.
    let schema = Schema::new(vec![Field::new("k", DataType::Str)]).unwrap();
    let mut left = Table::empty("l", schema.clone());
    for s in ["b", "a", "c", "a", "z"] {
        left.push_row(vec![Value::Str(s.into())]).unwrap();
    }
    let schema_r = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("v", DataType::Int),
    ])
    .unwrap();
    let mut right = Table::empty("r", schema_r);
    for (i, s) in ["c", "b", "a", "b"].iter().enumerate() {
        right
            .push_row(vec![Value::Str((*s).into()), Value::Int(i as i64)])
            .unwrap();
    }
    let reference = left
        .to_reference()
        .hash_join(&right.to_reference(), "k", "k")
        .unwrap();
    for threads in THREADS {
        assert_eq!(
            left.hash_join_par(&right, "k", "k", threads).unwrap(),
            reference
        );
    }
}

#[test]
fn injected_errors_preserve_backend_equivalence() {
    let (mut c, mut r) = both(350, 9);
    let rep_c = inject_missing(&mut c, "score", 0.25, Missingness::Mcar, 11).unwrap();
    let rep_r = inject_missing(&mut r, "score", 0.25, Missingness::Mcar, 11).unwrap();
    assert_eq!(rep_c.affected, rep_r.affected);
    assert_eq!(c, r);

    let rep_c = add_gaussian_noise(&mut c, "score", 0.3, 2.0, 12).unwrap();
    let rep_r = add_gaussian_noise(&mut r, "score", 0.3, 2.0, 12).unwrap();
    assert_eq!(rep_c.affected, rep_r.affected);
    assert_eq!(c, r);

    let rep_c = duplicate_rows(&mut c, 0.2, 13).unwrap();
    let rep_r = duplicate_rows(&mut r, 0.2, 13).unwrap();
    assert_eq!(rep_c.affected, rep_r.affected);
    assert_eq!(c, r);

    // The dirtied tables still agree on derived results.
    assert_eq!(
        c.value_counts("tag").unwrap(),
        r.value_counts("tag").unwrap()
    );
    assert_eq!(
        c.distinct_by("id", 4).unwrap(),
        r.distinct_by("id", 4).unwrap()
    );
    let rc = right_table(14);
    assert_eq!(
        c.hash_join_par(&rc, "id", "id", 4).unwrap(),
        r.hash_join(&rc.to_reference(), "id", "id").unwrap()
    );
}

#[test]
fn columnar_hooks_match_reference_scans() {
    let (c, r) = both(300, 15);
    // stats_sum: must equal a manual scan of the reference table.
    for col in ["id", "score"] {
        let fast = c.stats_sum(col).unwrap().expect("columnar hook fires");
        let mut slow = 0.0;
        for row in 0..r.n_rows() {
            if let Some(x) = r.get(row, col).unwrap().as_float() {
                slow += x;
            }
        }
        assert_eq!(fast, slow);
        assert_eq!(
            r.stats_sum(col).unwrap(),
            None,
            "reference has no fast path"
        );
    }
    // distinct_count / dictionary_values agree with value_counts.
    let counts = r.value_counts("tag").unwrap();
    let non_null = counts.iter().filter(|(v, _)| !v.is_null()).count();
    assert_eq!(c.distinct_count("tag").unwrap(), Some(non_null));
    let dict = c.dictionary_values("tag").unwrap().expect("str dictionary");
    assert_eq!(dict.len(), non_null);
    // filter_eq: equals the reference filter for every literal, including
    // cross-type numeric equality and unseen values.
    for lit in [
        Value::Str("beta".into()),
        Value::Str("nope".into()),
        Value::Int(3),
        Value::Float(0.0),
        Value::Bool(true),
    ] {
        for col in ["id", "score", "tag", "flag"] {
            if let Some(rows) = c.filter_eq_rows(col, &lit).unwrap() {
                let expect: Vec<usize> = (0..r.n_rows())
                    .filter(|&row| {
                        let v = r.get(row, col).unwrap();
                        !v.is_null()
                            && v.total_cmp(&lit) == std::cmp::Ordering::Equal
                            && (v.data_type() == lit.data_type()
                                || (v.as_float().is_some() && lit.as_float().is_some()))
                    })
                    .collect();
                assert_eq!(rows, expect, "filter_eq diverged on `{col}` = {lit:?}");
            }
        }
    }
}
