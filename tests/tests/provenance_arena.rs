//! Cross-checks for the arena-interned provenance engine against the seed
//! reference representation, and thread-invariance of the parallel
//! executor: the optimized paths must be *observationally identical* to the
//! simple ones — same tables, same lineage, same what-if answers — at every
//! thread count.

use nde::scenario::load_recommendation_letters;
use nde_data::{DataType, Field, Schema, Table};
use nde_pipeline::exec::Executor;
use nde_pipeline::expr::Expr;
use nde_pipeline::plan::{JoinType, Plan};
use nde_pipeline::semiring::{BoolSemiring, CountSemiring};
use nde_pipeline::whatif::{
    predict_deletion, predict_deletions_batch, predict_deletions_batch_threaded,
};
use nde_pipeline::{ProvExpr, TupleId};

/// The Fig. 3 hiring pipeline with provenance, at a given thread count.
fn run_hiring(n: usize, threads: usize) -> (Table, nde_pipeline::Lineage) {
    let s = load_recommendation_letters(n, 41);
    let (plan, root) = Plan::hiring_pipeline();
    let out = Executor::new()
        .with_provenance(true)
        .with_threads(threads)
        .run(&plan, root, &s.pipeline_inputs(&s.train))
        .expect("pipeline runs");
    (out.table, out.provenance.expect("provenance tracked"))
}

#[test]
fn arena_lineage_matches_materialized_reference_trees() {
    // Every per-row polynomial the executor interned must evaluate exactly
    // like its materialized recursive tree — Boolean under deletions,
    // counting multiplicity, and tuple support.
    let (_, lineage) = run_hiring(400, 2);
    assert!(lineage.n_rows() > 0);
    let src = lineage.source_index("train_df").expect("primary source");

    // Delete every third source row.
    let alive = |t: TupleId| !(t.source == src && t.row.is_multiple_of(3));
    let arena_bool = lineage.eval_rows::<BoolSemiring>(&alive);
    let arena_count = lineage.eval_rows::<CountSemiring>(&|_| 1);
    for row in 0..lineage.n_rows() {
        let tree: ProvExpr = lineage.row_expr(row);
        assert_eq!(
            arena_bool[row],
            tree.eval::<BoolSemiring>(&alive),
            "row {row}"
        );
        assert_eq!(
            arena_count[row],
            tree.eval::<CountSemiring>(&|_| 1),
            "row {row}"
        );
        assert_eq!(lineage.row_tuples(row), tree.tuples(), "row {row}");
    }
}

#[test]
fn inverted_index_agrees_with_per_row_tuple_sets() {
    let (_, lineage) = run_hiring(300, 4);
    let src = lineage.source_index("train_df").expect("primary source");
    let source_len = 300;
    let inv = lineage.outputs_per_source_row(src, source_len);

    // Rebuild the inverted index from the per-row tuple sets and compare.
    let mut expect = vec![Vec::new(); source_len];
    for row in 0..lineage.n_rows() {
        for t in lineage.row_tuples(row) {
            if t.source == src && (t.row as usize) < source_len {
                expect[t.row as usize].push(row);
            }
        }
    }
    assert_eq!(inv, expect);
    assert!(inv.iter().any(|outs| !outs.is_empty()));
}

#[test]
fn batched_deletion_prediction_matches_single_scenario_path() {
    // 70 scenarios cross the 64-lane boundary, so the batch path must
    // stitch two bitset passes together and still reproduce the one-at-a-
    // time predictions exactly (including empty deletion sets).
    let (_, lineage) = run_hiring(250, 1);
    let src = lineage.source_index("train_df").expect("primary source");
    let sets: Vec<Vec<TupleId>> = (0..70)
        .map(|k| {
            if k % 7 == 0 {
                Vec::new() // nothing deleted: everything must survive
            } else {
                (0..250u32)
                    .filter(|r| r % 70 == k)
                    .map(|r| TupleId::new(src, r))
                    .collect()
            }
        })
        .collect();
    let batch = predict_deletions_batch(&lineage, &sets);
    assert_eq!(batch.len(), sets.len());
    for (k, set) in sets.iter().enumerate() {
        let single = predict_deletion(&lineage, set);
        assert_eq!(batch[k], single, "scenario {k}");
        if set.is_empty() {
            assert!(batch[k].deleted_rows.is_empty());
            assert_eq!(batch[k].loss_fraction(), 0.0);
        }
    }
}

#[test]
fn threaded_deletion_batch_is_thread_invariant() {
    // 300 scenarios = 5 bitset chunks: enough for the chunk-parallel path
    // to actually interleave workers, and the effects must still come back
    // in scenario order, bit-identical at every thread count.
    let (_, lineage) = run_hiring(300, 2);
    let src = lineage.source_index("train_df").expect("primary source");
    let sets: Vec<Vec<TupleId>> = (0..300)
        .map(|k| {
            (0..300u32)
                .filter(|r| (*r as usize + k).is_multiple_of(29))
                .map(|r| TupleId::new(src, r))
                .collect()
        })
        .collect();
    let base = predict_deletions_batch(&lineage, &sets);
    assert_eq!(base.len(), sets.len());
    for threads in [1usize, 2, 4, 7] {
        assert_eq!(
            predict_deletions_batch_threaded(&lineage, &sets, threads),
            base,
            "threads={threads}"
        );
    }
}

#[test]
fn hiring_pipeline_is_thread_invariant() {
    // Output table AND lineage (arena node store, row ids, source order)
    // must be bit-identical at every thread count.
    let (base_table, base_lineage) = run_hiring(350, 1);
    for threads in [2, 4, 7] {
        let (table, lineage) = run_hiring(350, threads);
        assert_eq!(table, base_table, "table differs at {threads} threads");
        assert_eq!(
            lineage, base_lineage,
            "lineage differs at {threads} threads"
        );
    }
}

#[test]
fn join_distinct_fuzzy_concat_plan_is_thread_invariant() {
    // A plan exercising every parallelized operator: inner join, left
    // join, fuzzy join, distinct, and concat. The merge-in-index-order
    // contract must hold for each.
    let mut people = Table::empty(
        "people",
        Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("city_id", DataType::Int),
        ])
        .unwrap(),
    );
    let mut cities = Table::empty(
        "cities",
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("city", DataType::Str),
        ])
        .unwrap(),
    );
    let mut aliases = Table::empty(
        "aliases",
        Schema::new(vec![
            Field::new("alias", DataType::Str),
            Field::new("canonical", DataType::Str),
        ])
        .unwrap(),
    );
    for i in 0..120i64 {
        people
            .push_row(vec![format!("person{}", i % 40).into(), (i % 7).into()])
            .unwrap();
    }
    for i in 0..5i64 {
        cities
            .push_row(vec![i.into(), format!("city{i}").into()])
            .unwrap();
    }
    for i in 0..40 {
        aliases
            .push_row(vec![
                format!("Person{}", i).into(), // case-typo of people.name
                format!("canon{}", i % 10).into(),
            ])
            .unwrap();
    }

    let mut plan = Plan::new();
    let p = plan.source("people");
    let c = plan.source("cities");
    let a = plan.source("aliases");
    let inner = plan.join(p, c, "city_id", "id", JoinType::Inner);
    let left = plan.join(p, c, "city_id", "id", JoinType::Left);
    let fuzzy = plan.fuzzy_join(inner, a, "name", "alias", 0.8);
    let distinct = plan.distinct(fuzzy, "name");
    let narrowed_left = plan.select(left, &["name", "city_id"]);
    let narrowed_distinct = plan.select(distinct, &["name", "city_id"]);
    let filtered = plan.filter(narrowed_left, Expr::col("city_id").lt(Expr::int(3)));
    let root = plan.concat(narrowed_distinct, filtered);

    let inputs: Vec<(&str, &Table)> = vec![
        ("people", &people),
        ("cities", &cities),
        ("aliases", &aliases),
    ];
    let run_at = |threads: usize| {
        Executor::new()
            .with_provenance(true)
            .with_threads(threads)
            .run(&plan, root, &inputs)
            .expect("plan runs")
    };
    let base = run_at(1);
    assert!(base.table.n_rows() > 0);
    let base_lineage = base.provenance.expect("provenance tracked");
    for threads in [2, 4, 7] {
        let out = run_at(threads);
        assert_eq!(out.table, base.table, "table differs at {threads} threads");
        assert_eq!(
            out.provenance.expect("provenance tracked"),
            base_lineage,
            "lineage differs at {threads} threads"
        );
    }

    // And the lineage stays cross-checkable against reference trees.
    let alive = |t: TupleId| t.row.is_multiple_of(2);
    let arena_bool = base_lineage.eval_rows::<BoolSemiring>(&alive);
    for (row, arena_truth) in arena_bool.iter().enumerate() {
        assert_eq!(
            *arena_truth,
            base_lineage.row_expr(row).eval::<BoolSemiring>(&alive),
            "row {row}"
        );
    }
}
