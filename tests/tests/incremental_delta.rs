//! Differential property suite for incremental maintenance (the E16
//! surface): every fix path — cell patch, splice, rerun fallback — must be
//! **bit-identical** to full re-execution (table *and* lineage) at every
//! thread count; incremental cleaning must produce the same scores and
//! challenge verdicts as refitting; and a chaos-killed incremental cleaning
//! loop must resume through a durable [`RunStore`] to the same trace.

use nde_cleaning::{
    prioritized_cleaning, prioritized_cleaning_resumable, CleaningCheckpoint, CleaningError,
    DebugChallenge, IncrementalDebugSession, LabelOracle, MaintenanceMode, Strategy,
};
use nde_data::generate::blobs::two_gaussians;
use nde_data::generate::hiring::HiringScenario;
use nde_data::{Table, Value};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::exec::Executor;
use nde_pipeline::feature::FeaturePipeline;
use nde_pipeline::{Delta, PipelineSession, Plan};
use nde_robust::chaos::{CheckpointKillSwitch, CHAOS_PANIC_PREFIX};
use nde_robust::{
    supervise, FaultSchedule, RetryPolicy, RunBudget, RunFingerprint, RunStore, SuperviseCtx,
};

fn hiring_inputs(s: &HiringScenario) -> Vec<(&str, &Table)> {
    vec![
        ("train_df", &s.letters),
        ("jobdetail_df", &s.job_details),
        ("social_df", &s.social),
    ]
}

/// A mixed fix sequence covering all three propagation paths: non-routing
/// cell updates (patch), insert/delete (splice), and a routing update on
/// the filter column (rerun fallback).
fn fix_sequence() -> Vec<Delta> {
    vec![
        Delta::Update {
            source: "train_df".into(),
            row: 2,
            column: "sentiment".into(),
            value: Value::Str("negative".into()),
        },
        Delta::Update {
            source: "train_df".into(),
            row: 4,
            column: "years_experience".into(),
            value: Value::Float(33.0),
        },
        Delta::Insert {
            source: "train_df".into(),
            values: vec![
                Value::Int(600),
                Value::Int(0),
                Value::Str("wonderful fantastic team".into()),
                Value::Str("msc".into()),
                Value::Float(4.0),
                Value::Float(6.0),
                Value::Str("positive".into()),
            ],
        },
        Delta::Delete {
            source: "social_df".into(),
            row: 0,
        },
        Delta::Update {
            source: "jobdetail_df".into(),
            row: 0,
            column: "sector".into(),
            value: Value::Str("tech".into()),
        },
        Delta::Delete {
            source: "train_df".into(),
            row: 1,
        },
    ]
}

/// After every fix, the maintained table and lineage are bit-identical to a
/// fresh provenance-tracked execution over the mutated sources — at 1, 2, 4
/// and 7 threads — and all thread counts agree with each other.
#[test]
fn fix_sequences_match_full_reexecution_at_every_thread_count() {
    let (plan, root) = Plan::hiring_pipeline();
    let mut baseline: Vec<(Table, nde_pipeline::Lineage)> = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        let s = HiringScenario::generate(60, 9);
        let executor = Executor::new().with_threads(threads);
        let mut session =
            PipelineSession::build(&executor, &plan, root, &hiring_inputs(&s)).unwrap();
        for (step, delta) in fix_sequence().iter().enumerate() {
            session.apply(delta).unwrap();
            // Ground truth: re-execute from the session's mutated sources.
            let mutated: Vec<(&str, &Table)> = session
                .source_names()
                .iter()
                .map(|n| (n.as_str(), session.input(n).unwrap()))
                .collect();
            let fresh = executor
                .clone()
                .with_provenance(true)
                .run(&plan, root, &mutated)
                .unwrap();
            assert_eq!(
                session.table(),
                &fresh.table,
                "threads={threads} step={step}: table"
            );
            let lineage = session.lineage();
            assert_eq!(
                lineage,
                fresh.provenance.unwrap(),
                "threads={threads} step={step}: lineage"
            );
            if threads == 1 {
                baseline.push((session.table().clone(), lineage));
            } else {
                let (t, l) = &baseline[step];
                assert_eq!(session.table(), t, "threads={threads} step={step}");
                assert_eq!(&session.lineage(), l, "threads={threads} step={step}");
            }
        }
        // All three paths were exercised.
        let stats = session.stats();
        assert!(stats.cell_patches >= 2, "{stats:?}");
        assert!(stats.splices >= 1, "{stats:?}");
        assert!(stats.reruns >= 1, "{stats:?}");
    }
}

fn blob_workload() -> (Dataset, Dataset, LabelOracle) {
    let nd = two_gaussians(200, 3, 2.0, 77);
    let all = Dataset::try_from(&nd).unwrap();
    let mut train = all.subset(&(0..150).collect::<Vec<_>>());
    let valid = all.subset(&(150..200).collect::<Vec<_>>());
    let truth = train.y.clone();
    for f in [4, 16, 28, 39, 52, 67, 83, 98, 112, 121, 134, 141, 148] {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid, LabelOracle::new(truth))
}

/// The cleaning loop's scores and the challenge's leaderboard verdicts are
/// bit-identical between `Rerun` and `Incremental` maintenance.
#[test]
fn incremental_scores_and_verdicts_match_rerun() {
    let (dirty, valid, oracle) = blob_workload();
    let knn = KnnClassifier::new(3);
    let strategy = Strategy::KnnShapley { k: 3 };
    let run = |mode| {
        prioritized_cleaning(&knn, &dirty, &oracle, &valid, &strategy, 6, 4, false, mode).unwrap()
    };
    let rerun = run(MaintenanceMode::Rerun);
    let inc = run(MaintenanceMode::Incremental);
    assert_eq!(rerun.cleaned, inc.cleaned);
    for (a, b) in rerun.accuracy.iter().zip(&inc.accuracy) {
        assert_eq!(a.to_bits(), b.to_bits(), "{rerun:?} vs {inc:?}");
    }

    // Challenge verdicts: identical scores, identical leaderboard order.
    let hidden = valid.clone();
    let make = || {
        DebugChallenge::new(
            knn.clone(),
            dirty.clone(),
            oracle.clone(),
            hidden.clone(),
            20,
        )
        .unwrap()
    };
    let mut by_rerun = make();
    let mut by_inc = make().with_maintenance(MaintenanceMode::Incremental);
    let submissions: Vec<Vec<usize>> = vec![
        (0..20).collect(),
        vec![4, 16, 28, 39, 52, 67, 83, 98, 112, 121],
        vec![],
        (0..20).map(|i| i * 7 % 150).collect(),
    ];
    for (i, rows) in submissions.iter().enumerate() {
        let a = by_rerun.submit(&format!("s{i}"), rows).unwrap();
        let b = by_inc.submit(&format!("s{i}"), rows).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "submission {i}");
    }
    assert_eq!(by_rerun.leaderboard(), by_inc.leaderboard());
}

/// End-to-end: source-level fixes through an [`IncrementalDebugSession`]
/// produce the same dataset and accuracy as re-executing the pipeline and
/// re-encoding with the fitted encoders.
#[test]
fn debug_session_fixes_match_transform_rerun() {
    let s = HiringScenario::generate(80, 13);
    let knn = KnnClassifier::new(3);
    let valid = {
        let vs = HiringScenario::generate(50, 14);
        let mut fp = FeaturePipeline::hiring(8);
        fp.fit_run(&hiring_inputs(&vs), false).unwrap().dataset
    };
    let mut truth_fp = FeaturePipeline::hiring(8);
    truth_fp.fit_run(&hiring_inputs(&s), false).unwrap();
    let mut session = IncrementalDebugSession::build(
        knn.clone(),
        FeaturePipeline::hiring(8),
        &hiring_inputs(&s),
        valid.clone(),
    )
    .unwrap();
    for delta in fix_sequence() {
        let report = session.apply_fix(&delta).unwrap();
        let mutated: Vec<(&str, &Table)> = session
            .session()
            .source_names()
            .iter()
            .map(|n| (n.as_str(), session.session().input(n).unwrap()))
            .collect();
        let out = truth_fp.transform_run(&mutated, false).unwrap();
        let mut model = knn.clone();
        model.fit(&out.dataset).unwrap();
        let want = model.accuracy(&valid);
        assert_eq!(report.accuracy.to_bits(), want.to_bits(), "{delta:?}");
        assert_eq!(session.dataset().y, out.dataset.y);
        for r in 0..out.dataset.len() {
            for (a, b) in session.dataset().x.row(r).iter().zip(out.dataset.x.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} after {delta:?}");
            }
        }
    }
}

/// An incremental cleaning loop killed at chaos-scheduled checkpoint saves
/// resumes through a durable [`RunStore`] and finishes bit-identical to an
/// uninterrupted rerun-mode loop.
#[test]
fn chaos_killed_incremental_cleaning_resumes_bit_identically() {
    const ROUNDS: u64 = 4;
    let (train, valid, oracle) = blob_workload();
    let knn = KnnClassifier::new(3);
    let strategy = Strategy::KnnShapley { k: 3 };
    let reference = prioritized_cleaning(
        &knn,
        &train,
        &oracle,
        &valid,
        &strategy,
        5,
        ROUNDS as usize,
        false,
        MaintenanceMode::Rerun,
    )
    .unwrap();

    let dir = std::env::temp_dir().join(format!("nde-incremental-cleaning-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = RunStore::open(dir).unwrap();
    let fp = RunFingerprint::new("incremental-cleaning", 77, "batch=5;rounds=4", 0x16E);
    let kill = CheckpointKillSwitch::new(FaultSchedule::at(&[0, 2]));
    let sup = supervise(
        &store,
        &fp,
        &RetryPolicy::immediate(8),
        |ctx: &SuperviseCtx<'_>| -> Result<CleaningCheckpoint, CleaningError> {
            loop {
                let resume = match ctx.latest()? {
                    Some(r) => Some(CleaningCheckpoint::from_payload(&r.payload)?),
                    None => None,
                };
                let done = resume.as_ref().map_or(0, |s| s.rounds_done);
                let budget = RunBudget::unlimited().with_max_iterations((done + 1).min(ROUNDS));
                let (_, snap) = prioritized_cleaning_resumable(
                    &knn,
                    &train,
                    &oracle,
                    &valid,
                    &strategy,
                    5,
                    ROUNDS as usize,
                    false,
                    MaintenanceMode::Incremental,
                    &budget,
                    &RetryPolicy::none(),
                    resume.as_ref(),
                )?;
                ctx.checkpoint(snap.rounds_done, &snap.to_payload())?;
                kill.observe();
                if snap.rounds_done >= ROUNDS {
                    return Ok(snap);
                }
            }
        },
    )
    .unwrap();

    assert_eq!(sup.attempts, 3, "two kills cost two restarts");
    assert!(sup
        .crashes
        .iter()
        .all(|c| c.starts_with(CHAOS_PANIC_PREFIX)));
    assert_eq!(sup.value.rounds_done, ROUNDS);
    assert_eq!(sup.value.cleaned, reference.cleaned);
    for (a, b) in sup.value.accuracy.iter().zip(&reference.accuracy) {
        assert_eq!(a.to_bits(), b.to_bits(), "accuracy trace");
    }
}
