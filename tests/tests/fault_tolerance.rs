//! Chaos-style integration tests: every fault class the `nde-robust`
//! harness can inject — operator panics, corrupt/NaN features, flaky and
//! dead oracles, exhausted budgets — must degrade into a typed error or a
//! tagged partial result, never a process abort.

use nde_cleaning::{
    prioritized_cleaning, prioritized_cleaning_robust, CleaningError, FlakyOracle, LabelOracle,
    MaintenanceMode, Strategy,
};
use nde_data::generate::blobs::two_gaussians;
use nde_data::generate::hiring::HiringScenario;
use nde_importance::{tmc_shapley, ImportanceError, ImportanceRun, TmcParams};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::exec::{Executor, PanicPolicy};
use nde_pipeline::plan::Plan;
use nde_pipeline::PipelineError;
use nde_robust::chaos::{
    corrupt_features, corrupting_projection, panicking_predicate, panicking_projection,
    CHAOS_PANIC_PREFIX,
};
use nde_robust::{FaultSchedule, RetryPolicy, RunBudget};

fn gaussian_split() -> (Dataset, Dataset) {
    let nd = two_gaussians(80, 3, 1.5, 51);
    let all = Dataset::try_from(&nd).unwrap();
    (
        all.subset(&(0..60).collect::<Vec<_>>()),
        all.subset(&(60..80).collect::<Vec<_>>()),
    )
}

#[test]
fn injected_filter_panic_fails_fast_with_operator_identity() {
    let s = HiringScenario::generate(40, 3);
    let mut plan = Plan::new();
    let src = plan.source("train_df");
    let f = plan.filter(src, panicking_predicate(7));
    let err = Executor::new()
        .run(&plan, f, &[("train_df", &s.letters)])
        .unwrap_err();
    match err {
        PipelineError::OperatorPanic {
            node,
            operator,
            row,
            message,
        } => {
            assert_eq!(node, f.index());
            assert!(operator.starts_with("filter("), "{operator}");
            assert!(
                operator.contains("chaos_panic_predicate_row_7"),
                "{operator}"
            );
            assert_eq!(row, 7);
            assert!(message.starts_with(CHAOS_PANIC_PREFIX), "{message}");
        }
        other => panic!("expected OperatorPanic, got {other:?}"),
    }
}

#[test]
fn injected_projection_panic_is_quarantined_with_provenance() {
    let s = HiringScenario::generate(40, 4);
    let mut plan = Plan::new();
    let src = plan.source("train_df");
    let p = plan.project(src, "chaos", panicking_projection(11));
    let out = Executor::new()
        .with_provenance(true)
        .with_panic_policy(PanicPolicy::SkipAndRecord)
        .run(&plan, p, &[("train_df", &s.letters)])
        .unwrap();
    // The pipeline completed; exactly the faulted tuple is gone and its
    // source lineage is preserved in the quarantine record.
    assert_eq!(out.table.n_rows(), s.letters.n_rows() - 1);
    assert_eq!(out.quarantined.len(), 1);
    let q = &out.quarantined[0];
    assert_eq!(q.row, 11);
    assert!(q.operator.starts_with("project(chaos :="), "{}", q.operator);
    assert!(q.message.starts_with(CHAOS_PANIC_PREFIX), "{}", q.message);
    assert_eq!(q.sources.len(), 1);
    assert_eq!(q.sources[0].source, 0);
    assert_eq!(q.sources[0].row, 11);
    // Surviving rows still compute the projected column.
    assert!(out.table.schema().contains("chaos"));
}

#[test]
fn quarantine_contents_and_surviving_order_are_thread_invariant() {
    // A chaos predicate panics on one row; under SkipAndRecord the
    // quarantine record and the surviving rows (including their order)
    // must be identical at 1, 2 and 4 worker threads.
    let s = HiringScenario::generate(200, 9);
    let mut plan = Plan::new();
    let src = plan.source("train_df");
    let f = plan.filter(src, panicking_predicate(13));
    let run = |threads| {
        Executor::new()
            .with_provenance(true)
            .with_panic_policy(PanicPolicy::SkipAndRecord)
            .with_threads(threads)
            .run(&plan, f, &[("train_df", &s.letters)])
            .unwrap()
    };
    let seq = run(1);
    assert_eq!(seq.table.n_rows(), s.letters.n_rows() - 1);
    assert_eq!(seq.quarantined.len(), 1);
    let q = &seq.quarantined[0];
    assert_eq!(q.row, 13);
    assert!(q.operator.starts_with("filter("), "{}", q.operator);
    assert!(q.message.starts_with(CHAOS_PANIC_PREFIX), "{}", q.message);
    assert_eq!(q.sources.len(), 1);
    assert_eq!((q.sources[0].source, q.sources[0].row), (0, 13));
    // Survivors keep source order: 0..n with exactly row 13 missing.
    let lineage = seq.provenance.as_ref().unwrap();
    let survivors: Vec<usize> = (0..lineage.n_rows())
        .map(|row| lineage.row_tuples(row)[0].row as usize)
        .collect();
    let expected: Vec<usize> = (0..s.letters.n_rows()).filter(|&r| r != 13).collect();
    assert_eq!(survivors, expected);
    for threads in [2, 4] {
        let par = run(threads);
        assert_eq!(par.table, seq.table, "threads={threads}");
        assert_eq!(par.quarantined, seq.quarantined, "threads={threads}");
        assert_eq!(par.provenance, seq.provenance, "threads={threads}");
    }
}

#[test]
fn corrupting_projection_emits_nan_that_downstream_checks_catch() {
    let s = HiringScenario::generate(20, 5);
    let mut plan = Plan::new();
    let src = plan.source("train_df");
    let p = plan.project(src, "poisoned", corrupting_projection(2));
    let out = Executor::new()
        .run(&plan, p, &[("train_df", &s.letters)])
        .unwrap();
    let mut nan_rows = Vec::new();
    for row in 0..out.table.n_rows() {
        if let Some(v) = out.table.get(row, "poisoned").unwrap().as_float() {
            if v.is_nan() {
                nan_rows.push(row);
            }
        }
    }
    assert_eq!(nan_rows, vec![2]);
}

#[test]
fn corrupt_features_are_rejected_by_the_budgeted_estimator() {
    let (mut train, valid) = gaussian_split();
    let cells = corrupt_features(&mut train, 3, 9);
    assert_eq!(cells.len(), 3);
    let params = TmcParams {
        permutations: 4,
        truncation_tolerance: 0.0,
    };
    let err = tmc_shapley(
        &ImportanceRun::new(1),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params,
    )
    .unwrap_err();
    match err {
        ImportanceError::Ml(m) => assert!(m.contains("non-finite"), "{m}"),
        other => panic!("expected a typed Ml error, got {other:?}"),
    }
}

#[test]
fn shapley_budget_exhaustion_yields_best_so_far_plus_diagnostics() {
    let (train, valid) = gaussian_split();
    let params = TmcParams {
        permutations: 100,
        truncation_tolerance: 0.0,
    };
    let run = tmc_shapley(
        &ImportanceRun::new(2).with_budget(RunBudget::unlimited().with_max_iterations(6)),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params,
    )
    .unwrap();
    let diag = run.report.diagnostics.as_ref().unwrap();
    assert!(!diag.completed());
    assert_eq!(diag.iterations, 6);
    assert_eq!(run.report.checkpoint.unwrap().cursor, 6);
    assert_eq!(run.scores.values.len(), train.len());
    assert!(run.scores.values.iter().all(|v| v.is_finite()));
    assert!(diag.max_marginal_std_error.is_some());
}

#[test]
fn cleaning_rides_out_a_flaky_oracle_and_types_a_dead_one() {
    let nd = two_gaussians(120, 3, 2.0, 52);
    let all = Dataset::try_from(&nd).unwrap();
    let mut train = all.subset(&(0..90).collect::<Vec<_>>());
    let valid = all.subset(&(90..120).collect::<Vec<_>>());
    let truth = train.y.clone();
    for f in [4, 19, 33, 48, 61, 77, 85] {
        train.y[f] = 1 - train.y[f];
    }
    let oracle = LabelOracle::new(truth);
    let strategy = Strategy::Random { seed: 3 };
    let knn = KnnClassifier::new(3);

    let healthy = prioritized_cleaning(
        &knn,
        &train,
        &oracle,
        &valid,
        &strategy,
        10,
        3,
        false,
        MaintenanceMode::Rerun,
    )
    .unwrap();

    // A 1-in-2 outage schedule with retries: same trace, nonzero retries.
    let flaky = FlakyOracle::new(oracle.clone(), FaultSchedule::every_nth(2));
    let robust = prioritized_cleaning_robust(
        &knn,
        &train,
        &flaky,
        &valid,
        &strategy,
        10,
        3,
        false,
        MaintenanceMode::Rerun,
        &RunBudget::unlimited(),
        &RetryPolicy::immediate(3),
    )
    .unwrap();
    assert_eq!(robust.run, healthy);
    assert!(robust.oracle_retries > 0);
    assert!(robust.diagnostics.completed());

    // A hard outage exhausts retries into a typed error, not an abort.
    let dead = FlakyOracle::new(oracle, FaultSchedule::always());
    let err = prioritized_cleaning_robust(
        &knn,
        &train,
        &dead,
        &valid,
        &strategy,
        10,
        3,
        false,
        MaintenanceMode::Rerun,
        &RunBudget::unlimited(),
        &RetryPolicy::immediate(3),
    )
    .unwrap_err();
    assert!(
        matches!(err, CleaningError::OracleFailed { attempts: 3, .. }),
        "{err:?}"
    );
}
