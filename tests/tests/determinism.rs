//! Whole-stack determinism: every workflow is exactly reproducible from its
//! seeds, across crate boundaries.

use nde::scenario::load_recommendation_letters;
use nde::workflows::{debug, identify, learn};
use nde_data::inject::Missingness;

#[test]
fn identify_workflow_is_bit_reproducible() {
    let cfg = identify::IdentifyConfig {
        error_fraction: 0.1,
        clean_count: 20,
        seed: 9,
    };
    let run = || {
        let s = load_recommendation_letters(200, 33);
        identify::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.acc_clean, b.acc_clean);
    assert_eq!(a.acc_dirty, b.acc_dirty);
    assert_eq!(a.acc_cleaned, b.acc_cleaned);
    assert_eq!(a.cleaned_rows, b.cleaned_rows);
    assert_eq!(a.detection_precision, b.detection_precision);
}

#[test]
fn debug_workflow_is_bit_reproducible() {
    let cfg = debug::DebugConfig::default();
    let run = || {
        let s = load_recommendation_letters(250, 34);
        debug::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.acc_before, b.acc_before);
    assert_eq!(a.acc_after, b.acc_after);
    assert_eq!(a.removed_rows, b.removed_rows);
    assert_eq!(a.source_importance, b.source_importance);
    assert_eq!(a.plan, b.plan);
}

#[test]
fn learn_workflow_is_bit_reproducible() {
    let cfg = learn::LearnConfig {
        percentages: vec![10.0, 20.0],
        mechanism: Missingness::Mnar { skew: 4.0 },
        seed: 5,
        ..Default::default()
    };
    let run = || {
        let s = load_recommendation_letters(200, 35);
        learn::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.max_worst_case_loss, pb.max_worst_case_loss);
        assert_eq!(pa.baseline_mse, pb.baseline_mse);
    }
}

#[test]
fn interrupted_shapley_resumes_bit_identically() {
    use nde_data::generate::blobs::two_gaussians;
    use nde_importance::{tmc_shapley_budgeted, ShapleyConfig};
    use nde_ml::dataset::Dataset;
    use nde_ml::models::knn::KnnClassifier;
    use nde_robust::{McCheckpoint, RunBudget};

    let nd = two_gaussians(80, 3, 1.5, 21);
    let all = Dataset::try_from(&nd).unwrap();
    let train = all.subset(&(0..60).collect::<Vec<_>>());
    let valid = all.subset(&(60..80).collect::<Vec<_>>());
    let cfg = ShapleyConfig {
        permutations: 24,
        truncation_tolerance: 0.0,
        seed: 3,
        threads: 1,
    };
    let knn = KnnClassifier::new(3);
    let full = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
        .expect("uninterrupted run");
    assert!(full.diagnostics.completed());

    // Interrupt after k permutations, persist the checkpoint to disk (a
    // simulated crash + restart), resume, and demand the *exact* floats the
    // uninterrupted run produced.
    for k in [1u64, 7, 23] {
        let partial = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited().with_max_iterations(k),
            None,
        )
        .expect("interrupted run");
        assert_eq!(partial.checkpoint.cursor, k);
        let path = std::env::temp_dir().join(format!("nde-determinism-ckpt-{k}.json"));
        partial.checkpoint.save(&path).expect("save checkpoint");
        let restored = McCheckpoint::load(&path).expect("load checkpoint");
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, partial.checkpoint);
        let resumed = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&restored),
        )
        .expect("resumed run");
        assert_eq!(
            resumed.scores.values, full.scores.values,
            "resume after {k} permutations must be bit-identical"
        );
        assert_eq!(resumed.checkpoint.totals, full.checkpoint.totals);
        assert_eq!(resumed.checkpoint.totals_sq, full.checkpoint.totals_sq);
    }
}

#[test]
fn different_seeds_actually_differ() {
    let s1 = load_recommendation_letters(100, 1);
    let s2 = load_recommendation_letters(100, 2);
    assert_ne!(s1.train, s2.train);
    let cfg = identify::IdentifyConfig::default();
    let a = identify::run(&s1, &cfg).expect("runs");
    let b = identify::run(&s2, &cfg).expect("runs");
    // Outcomes should not be identical across different data seeds.
    assert!(
        a.acc_dirty != b.acc_dirty
            || a.acc_cleaned != b.acc_cleaned
            || a.cleaned_rows != b.cleaned_rows
    );
}
