//! Whole-stack determinism: every workflow is exactly reproducible from its
//! seeds, across crate boundaries.

use nde::scenario::load_recommendation_letters;
use nde::workflows::{debug, identify, learn};
use nde_data::inject::Missingness;

#[test]
fn identify_workflow_is_bit_reproducible() {
    let cfg = identify::IdentifyConfig {
        error_fraction: 0.1,
        clean_count: 20,
        seed: 9,
    };
    let run = || {
        let s = load_recommendation_letters(200, 33);
        identify::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.acc_clean, b.acc_clean);
    assert_eq!(a.acc_dirty, b.acc_dirty);
    assert_eq!(a.acc_cleaned, b.acc_cleaned);
    assert_eq!(a.cleaned_rows, b.cleaned_rows);
    assert_eq!(a.detection_precision, b.detection_precision);
}

#[test]
fn debug_workflow_is_bit_reproducible() {
    let cfg = debug::DebugConfig::default();
    let run = || {
        let s = load_recommendation_letters(250, 34);
        debug::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.acc_before, b.acc_before);
    assert_eq!(a.acc_after, b.acc_after);
    assert_eq!(a.removed_rows, b.removed_rows);
    assert_eq!(a.source_importance, b.source_importance);
    assert_eq!(a.plan, b.plan);
}

#[test]
fn learn_workflow_is_bit_reproducible() {
    let cfg = learn::LearnConfig {
        percentages: vec![10.0, 20.0],
        mechanism: Missingness::Mnar { skew: 4.0 },
        seed: 5,
        ..Default::default()
    };
    let run = || {
        let s = load_recommendation_letters(200, 35);
        learn::run(&s, &cfg).expect("runs")
    };
    let a = run();
    let b = run();
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.max_worst_case_loss, pb.max_worst_case_loss);
        assert_eq!(pa.baseline_mse, pb.baseline_mse);
    }
}

#[test]
fn interrupted_shapley_resumes_bit_identically() {
    use nde_data::generate::blobs::two_gaussians;
    use nde_importance::{tmc_shapley, ImportanceRun, TmcParams};
    use nde_ml::dataset::Dataset;
    use nde_ml::models::knn::KnnClassifier;
    use nde_robust::{McCheckpoint, RunBudget};

    let nd = two_gaussians(80, 3, 1.5, 21);
    let all = Dataset::try_from(&nd).unwrap();
    let train = all.subset(&(0..60).collect::<Vec<_>>());
    let valid = all.subset(&(60..80).collect::<Vec<_>>());
    let params = TmcParams {
        permutations: 24,
        truncation_tolerance: 0.0,
    };
    let knn = KnnClassifier::new(3);
    let full = tmc_shapley(&ImportanceRun::new(3), &knn, &train, &valid, &params)
        .expect("uninterrupted run");
    assert!(full.report.diagnostics.as_ref().unwrap().completed());
    let full_ckpt = full.report.checkpoint.as_ref().unwrap();

    // Interrupt after k permutations, persist the checkpoint to disk (a
    // simulated crash + restart), resume, and demand the *exact* floats the
    // uninterrupted run produced.
    for k in [1u64, 7, 23] {
        let partial = tmc_shapley(
            &ImportanceRun::new(3).with_budget(RunBudget::unlimited().with_max_iterations(k)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .expect("interrupted run");
        let partial_ckpt = partial.report.checkpoint.unwrap();
        assert_eq!(partial_ckpt.cursor, k);
        let path = std::env::temp_dir().join(format!("nde-determinism-ckpt-{k}.json"));
        partial_ckpt.save(&path).expect("save checkpoint");
        let restored = McCheckpoint::load(&path).expect("load checkpoint");
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, partial_ckpt);
        let resumed = tmc_shapley(
            &ImportanceRun::new(3).with_checkpoint(&restored),
            &knn,
            &train,
            &valid,
            &params,
        )
        .expect("resumed run");
        assert_eq!(
            resumed.scores.values, full.scores.values,
            "resume after {k} permutations must be bit-identical"
        );
        let resumed_ckpt = resumed.report.checkpoint.unwrap();
        assert_eq!(resumed_ckpt.totals, full_ckpt.totals);
        assert_eq!(resumed_ckpt.totals_sq, full_ckpt.totals_sq);
    }
}

#[test]
fn different_seeds_actually_differ() {
    let s1 = load_recommendation_letters(100, 1);
    let s2 = load_recommendation_letters(100, 2);
    assert_ne!(s1.train, s2.train);
    let cfg = identify::IdentifyConfig::default();
    let a = identify::run(&s1, &cfg).expect("runs");
    let b = identify::run(&s2, &cfg).expect("runs");
    // Outcomes should not be identical across different data seeds.
    assert!(
        a.acc_dirty != b.acc_dirty
            || a.acc_cleaned != b.acc_cleaned
            || a.cleaned_rows != b.cleaned_rows
    );
}
