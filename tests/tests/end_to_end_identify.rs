//! End-to-end integration of the *Identify* pillar: data generation,
//! error injection, importance scoring and oracle cleaning across crates.

use nde::api;
use nde::scenario::load_recommendation_letters;
use nde::workflows::identify::{run, IdentifyConfig};
use nde_cleaning::oracle::TableOracle;
use nde_importance::{detection_precision_at_k, ImportanceScores};

#[test]
fn fig2_shape_holds_across_seeds() {
    // The tutorial's headline: dirty < cleaned, with meaningful detection.
    let mut recovered = 0;
    for seed in [3u64, 17, 91] {
        let scenario = load_recommendation_letters(400, seed);
        let outcome = run(
            &scenario,
            &IdentifyConfig {
                error_fraction: 0.12,
                clean_count: 25,
                seed: seed ^ 0xaa,
            },
        )
        .expect("workflow runs");
        // Small validation sets give label noise a few lucky points of slack.
        assert!(
            outcome.acc_dirty <= outcome.acc_clean + 0.04,
            "seed {seed}: {outcome:?}"
        );
        if outcome.acc_cleaned > outcome.acc_dirty {
            recovered += 1;
        }
    }
    assert!(
        recovered >= 2,
        "cleaning helped in only {recovered}/3 seeds"
    );
}

#[test]
fn importance_scores_transfer_between_crates() {
    let scenario = load_recommendation_letters(300, 5);
    let mut dirty = scenario.train.clone();
    let report = api::inject_label_errors(&mut dirty, 0.15, 6).expect("injection");
    let values = api::knn_shapley_values(&dirty, &scenario.valid).expect("scores");
    let scores = ImportanceScores::new("knn-shapley", values);

    // Detection quality is far above the base rate.
    let k = report.affected.len();
    let precision = detection_precision_at_k(&scores, &report.affected, k);
    let base_rate = k as f64 / dirty.n_rows() as f64;
    assert!(
        precision > base_rate * 2.0,
        "precision {precision} vs base rate {base_rate}"
    );

    // Oracle-repairing the bottom-k restores those exact rows.
    let oracle = TableOracle::new(scenario.train.clone());
    let mut repaired = dirty.clone();
    let picks = scores.bottom_k(k);
    let changed = oracle.repair_rows(&mut repaired, &picks).expect("repairs");
    assert!(changed > 0);
    let still_dirty = oracle.dirty_rows(&repaired).expect("diff");
    assert!(still_dirty.len() < report.affected.len());
}

#[test]
fn clean_data_has_no_strongly_negative_tuples() {
    let scenario = load_recommendation_letters(250, 7);
    let values = api::knn_shapley_values(&scenario.train, &scenario.valid).expect("scores");
    let strongly_negative = values.iter().filter(|&&v| v < -0.01).count();
    assert!(
        strongly_negative < values.len() / 4,
        "{strongly_negative}/{} tuples look harmful on clean data",
        values.len()
    );
}
