//! Cross-crate guarantees of the deterministic parallel substrate: every
//! estimator and the pipeline executor must produce bit-identical output
//! for every thread count — with and without a tripped budget, across a
//! checkpoint/resume cycle, and with the utility memo cache attached.
//!
//! Exercised through the unified [`ImportanceRun`] entry points.

use nde_data::generate::blobs::two_gaussians;
use nde_importance::{knn_shapley, tmc_shapley, ImportanceRun, TmcParams};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_robust::par::MemoCache;
use nde_robust::RunBudget;

fn workload(n: usize, n_valid: usize, seed: u64) -> (Dataset, Dataset) {
    let nd = two_gaussians(n + n_valid, 3, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n).collect::<Vec<_>>());
    let valid = all.subset(&(n..n + n_valid).collect::<Vec<_>>());
    // A few label flips so values have spread.
    for f in [2, 7, 11] {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid)
}

fn params() -> TmcParams {
    TmcParams {
        permutations: 12,
        truncation_tolerance: 0.0,
    }
}

#[test]
fn budgeted_shapley_is_thread_invariant_without_budget() {
    let (train, valid) = workload(24, 12, 3);
    let seq = tmc_shapley(
        &ImportanceRun::new(41),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params(),
    )
    .unwrap();
    let seq_diag = seq.report.diagnostics.as_ref().unwrap();
    assert!(seq_diag.completed());
    for threads in [2, 4] {
        let par = tmc_shapley(
            &ImportanceRun::new(41).with_threads(threads),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &params(),
        )
        .unwrap();
        assert_eq!(seq.scores, par.scores, "threads={threads}");
        assert_eq!(
            seq.report.utility_calls, par.report.utility_calls,
            "threads={threads}"
        );
    }
}

#[test]
fn budgeted_shapley_is_thread_invariant_with_tripped_budget() {
    let (train, valid) = workload(24, 12, 3);
    // Trips mid-permutation: utility-call budgets stop between coalition
    // evaluations, so the checkpoint carries in-flight state.
    let budget = RunBudget::unlimited().with_max_utility_calls(100);
    let seq = tmc_shapley(
        &ImportanceRun::new(41).with_budget(budget.clone()),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params(),
    )
    .unwrap();
    assert!(!seq.report.diagnostics.as_ref().unwrap().completed());
    assert_eq!(seq.report.utility_calls, 100);
    let seq_ckpt = seq.report.checkpoint.as_ref().unwrap();
    for threads in [2, 4] {
        let par = tmc_shapley(
            &ImportanceRun::new(41)
                .with_threads(threads)
                .with_budget(budget.clone()),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &params(),
        )
        .unwrap();
        assert_eq!(seq.scores, par.scores, "threads={threads}");
        let par_ckpt = par.report.checkpoint.as_ref().unwrap();
        assert_eq!(seq_ckpt.cursor, par_ckpt.cursor);
        assert_eq!(seq_ckpt.inflight.is_some(), par_ckpt.inflight.is_some());
        assert_eq!(seq.report.utility_calls, par.report.utility_calls);
    }
}

#[test]
fn parallel_interrupt_resume_matches_sequential_uninterrupted() {
    let (train, valid) = workload(24, 12, 3);
    // Authoritative answer: sequential, never interrupted.
    let unbudgeted = tmc_shapley(
        &ImportanceRun::new(41),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params(),
    )
    .unwrap();
    // Parallel run tripped mid-permutation, then resumed in parallel.
    for threads in [1, 4] {
        let tripped = tmc_shapley(
            &ImportanceRun::new(41)
                .with_threads(threads)
                .with_budget(RunBudget::unlimited().with_max_utility_calls(90)),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &params(),
        )
        .unwrap();
        assert!(!tripped.report.diagnostics.as_ref().unwrap().completed());
        let ckpt = tripped.report.checkpoint.unwrap();
        let resumed = tmc_shapley(
            &ImportanceRun::new(41)
                .with_threads(threads)
                .with_checkpoint(&ckpt),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &params(),
        )
        .unwrap();
        assert_eq!(
            unbudgeted.scores, resumed.scores,
            "threads={threads}: parallel interrupt+resume must be bit-identical"
        );
        assert!(resumed.report.checkpoint.unwrap().inflight.is_none());
    }
}

#[test]
fn memo_cache_is_transparent_and_hits_across_a_resume_cycle() {
    let (train, valid) = workload(20, 10, 5);
    let params = TmcParams {
        permutations: 25,
        truncation_tolerance: 0.0,
    };
    let uncached = tmc_shapley(
        &ImportanceRun::new(8).with_threads(4),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params,
    )
    .unwrap();
    // One shared cache across interrupt + resume: the resumed leg replays
    // coalitions the first leg already evaluated.
    let cache = MemoCache::new();
    let tripped = tmc_shapley(
        &ImportanceRun::new(8)
            .with_threads(4)
            .with_cache(&cache)
            .with_budget(RunBudget::unlimited().with_max_utility_calls(120)),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params,
    )
    .unwrap();
    assert!(!tripped.report.diagnostics.as_ref().unwrap().completed());
    let ckpt = tripped.report.checkpoint.unwrap();
    let resumed = tmc_shapley(
        &ImportanceRun::new(8)
            .with_threads(4)
            .with_cache(&cache)
            .with_checkpoint(&ckpt),
        &KnnClassifier::new(1),
        &train,
        &valid,
        &params,
    )
    .unwrap();
    assert_eq!(uncached.scores, resumed.scores);
    assert!(cache.hits() > 0, "repeated coalitions must hit the cache");
    // Logical budget accounting is cache-independent: the resumed run's
    // total matches the uninterrupted one, plus the one extra U(D) call the
    // resume re-primes with.
    assert_eq!(
        resumed.report.utility_calls,
        uncached.report.utility_calls + 1
    );
}

#[test]
fn knn_shapley_parallel_matches_sequential_across_thread_counts() {
    let (train, valid) = workload(60, 40, 7);
    let seq = knn_shapley(&ImportanceRun::new(0), &train, &valid, 3).unwrap();
    for threads in [2, 4, 8] {
        let par = knn_shapley(
            &ImportanceRun::new(0).with_threads(threads),
            &train,
            &valid,
            3,
        )
        .unwrap();
        assert_eq!(seq.scores, par.scores, "threads={threads}");
    }
}
