//! Cross-crate guarantees of the deterministic parallel substrate: every
//! estimator and the pipeline executor must produce bit-identical output
//! for every thread count — with and without a tripped budget, across a
//! checkpoint/resume cycle, and with the utility memo cache attached.

use nde_data::generate::blobs::two_gaussians;
use nde_importance::knn_shapley::{knn_shapley, knn_shapley_par};
use nde_importance::shapley_mc::{
    tmc_shapley_budgeted, tmc_shapley_budgeted_cached, ShapleyConfig,
};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_robust::par::MemoCache;
use nde_robust::RunBudget;

fn workload(n: usize, n_valid: usize, seed: u64) -> (Dataset, Dataset) {
    let nd = two_gaussians(n + n_valid, 3, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n).collect::<Vec<_>>());
    let valid = all.subset(&(n..n + n_valid).collect::<Vec<_>>());
    // A few label flips so values have spread.
    for f in [2, 7, 11] {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid)
}

fn config(threads: usize) -> ShapleyConfig {
    ShapleyConfig {
        permutations: 12,
        truncation_tolerance: 0.0,
        seed: 41,
        threads,
    }
}

#[test]
fn budgeted_shapley_is_thread_invariant_without_budget() {
    let (train, valid) = workload(24, 12, 3);
    let budget = RunBudget::unlimited();
    let seq = tmc_shapley_budgeted(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &config(1),
        &budget,
        None,
    )
    .unwrap();
    assert!(seq.diagnostics.completed());
    for threads in [2, 4] {
        let par = tmc_shapley_budgeted(
            &KnnClassifier::new(1),
            &train,
            &valid,
            &config(threads),
            &budget,
            None,
        )
        .unwrap();
        assert_eq!(seq.scores, par.scores, "threads={threads}");
        assert_eq!(
            seq.diagnostics.utility_calls, par.diagnostics.utility_calls,
            "threads={threads}"
        );
    }
}

#[test]
fn budgeted_shapley_is_thread_invariant_with_tripped_budget() {
    let (train, valid) = workload(24, 12, 3);
    // Trips mid-permutation: utility-call budgets stop between coalition
    // evaluations, so the checkpoint carries in-flight state.
    let budget = RunBudget::unlimited().with_max_utility_calls(100);
    let seq = tmc_shapley_budgeted(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &config(1),
        &budget,
        None,
    )
    .unwrap();
    assert!(!seq.diagnostics.completed());
    assert_eq!(seq.diagnostics.utility_calls, 100);
    for threads in [2, 4] {
        let par = tmc_shapley_budgeted(
            &KnnClassifier::new(1),
            &train,
            &valid,
            &config(threads),
            &budget,
            None,
        )
        .unwrap();
        assert_eq!(seq.scores, par.scores, "threads={threads}");
        assert_eq!(seq.checkpoint.cursor, par.checkpoint.cursor);
        assert_eq!(
            seq.checkpoint.inflight.is_some(),
            par.checkpoint.inflight.is_some()
        );
        assert_eq!(seq.diagnostics.utility_calls, par.diagnostics.utility_calls);
    }
}

#[test]
fn parallel_interrupt_resume_matches_sequential_uninterrupted() {
    let (train, valid) = workload(24, 12, 3);
    // Authoritative answer: sequential, never interrupted.
    let unbudgeted = tmc_shapley_budgeted(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &config(1),
        &RunBudget::unlimited(),
        None,
    )
    .unwrap();
    // Parallel run tripped mid-permutation, then resumed in parallel.
    for threads in [1, 4] {
        let tripped = tmc_shapley_budgeted(
            &KnnClassifier::new(1),
            &train,
            &valid,
            &config(threads),
            &RunBudget::unlimited().with_max_utility_calls(90),
            None,
        )
        .unwrap();
        assert!(!tripped.diagnostics.completed());
        let resumed = tmc_shapley_budgeted(
            &KnnClassifier::new(1),
            &train,
            &valid,
            &config(threads),
            &RunBudget::unlimited(),
            Some(&tripped.checkpoint),
        )
        .unwrap();
        assert_eq!(
            unbudgeted.scores, resumed.scores,
            "threads={threads}: parallel interrupt+resume must be bit-identical"
        );
        assert!(resumed.checkpoint.inflight.is_none());
    }
}

#[test]
fn memo_cache_is_transparent_and_hits_across_a_resume_cycle() {
    let (train, valid) = workload(20, 10, 5);
    let cfg = ShapleyConfig {
        permutations: 25,
        truncation_tolerance: 0.0,
        seed: 8,
        threads: 4,
    };
    let uncached = tmc_shapley_budgeted(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &cfg,
        &RunBudget::unlimited(),
        None,
    )
    .unwrap();
    // One shared cache across interrupt + resume: the resumed leg replays
    // coalitions the first leg already evaluated.
    let cache = MemoCache::new();
    let tripped = tmc_shapley_budgeted_cached(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &cfg,
        &RunBudget::unlimited().with_max_utility_calls(120),
        None,
        Some(&cache),
    )
    .unwrap();
    assert!(!tripped.diagnostics.completed());
    let resumed = tmc_shapley_budgeted_cached(
        &KnnClassifier::new(1),
        &train,
        &valid,
        &cfg,
        &RunBudget::unlimited(),
        Some(&tripped.checkpoint),
        Some(&cache),
    )
    .unwrap();
    assert_eq!(uncached.scores, resumed.scores);
    assert!(cache.hits() > 0, "repeated coalitions must hit the cache");
    // Logical budget accounting is cache-independent: the resumed run's
    // total matches the uninterrupted one, plus the one extra U(D) call the
    // resume re-primes with.
    assert_eq!(
        resumed.diagnostics.utility_calls,
        uncached.diagnostics.utility_calls + 1
    );
}

#[test]
fn knn_shapley_parallel_matches_sequential_across_thread_counts() {
    let (train, valid) = workload(60, 40, 7);
    let seq = knn_shapley(&train, &valid, 3).unwrap();
    for threads in [2, 4, 8] {
        let par = knn_shapley_par(&train, &valid, 3, threads).unwrap();
        assert_eq!(seq, par, "threads={threads}");
    }
}
