//! Integration test of the §3.2 data debugging challenge: strategies from
//! `nde-cleaning` competing through the sealed oracle, with leaderboard
//! persistence.

use nde_cleaning::challenge::{DebugChallenge, Leaderboard};
use nde_cleaning::oracle::LabelOracle;
use nde_cleaning::strategy::Strategy;
use nde_data::generate::blobs::two_gaussians;
use nde_importance::confident::ConfidentConfig;
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;

fn setup() -> (DebugChallenge<KnnClassifier>, Dataset) {
    let nd = two_gaussians(360, 3, 4.0, 61);
    let all = Dataset::try_from(&nd).expect("blob data");
    let mut train = all.subset(&(0..240).collect::<Vec<_>>());
    let valid = all.subset(&(240..300).collect::<Vec<_>>());
    let test = all.subset(&(300..360).collect::<Vec<_>>());
    let truth = train.y.clone();
    for i in (0..train.len()).step_by(8) {
        train.y[i] = 1 - train.y[i];
    }
    let challenge = DebugChallenge::new(
        KnnClassifier::new(3),
        train,
        LabelOracle::new(truth),
        test,
        30,
    )
    .expect("challenge setup");
    (challenge, valid)
}

#[test]
fn full_challenge_round_with_persistence() {
    let (mut challenge, valid) = setup();
    let baseline = challenge.baseline().expect("baseline");

    let entrants = [
        Strategy::Random { seed: 4 },
        Strategy::KnnShapley { k: 3 },
        Strategy::ConfidentLearning(ConfidentConfig::default()),
    ];
    for strategy in entrants {
        let order = strategy
            .rank(challenge.dirty_data(), &valid)
            .expect("ranking");
        let picks: Vec<usize> = order.into_iter().take(challenge.budget()).collect();
        let score = challenge.submit(strategy.name(), &picks).expect("submits");
        assert!((0.0..=1.0).contains(&score));
    }

    let lb = challenge.leaderboard();
    assert_eq!(lb.entries().len(), 3);
    // The winner should match or beat the no-cleaning baseline.
    assert!(lb.leader().expect("has leader").score >= baseline - 0.02);
    // Importance-guided entries should not lose to random.
    let score_of = |name: &str| {
        lb.entries()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.score)
            .expect("entry present")
    };
    assert!(score_of("knn-shapley") >= score_of("random") - 0.02);

    // Persistence roundtrip survives re-ranking.
    let json = lb.to_json().expect("serializes");
    let restored = Leaderboard::from_json(&json).expect("parses");
    assert_eq!(restored.entries(), lb.entries());
}

#[test]
fn repeated_submissions_are_stateless() {
    let (mut challenge, valid) = setup();
    let order = Strategy::KnnShapley { k: 3 }
        .rank(challenge.dirty_data(), &valid)
        .expect("ranking");
    let picks: Vec<usize> = order.into_iter().take(30).collect();
    let a = challenge.submit("first", &picks).expect("submits");
    // A different (worse) submission in between must not contaminate state.
    let noise: Vec<usize> = (0..30).collect();
    let _ = challenge.submit("noise", &noise).expect("submits");
    let b = challenge.submit("second", &picks).expect("submits");
    assert_eq!(a, b);
}
