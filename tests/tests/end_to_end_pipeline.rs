//! End-to-end integration of the *Debug* pillar: pipeline execution,
//! provenance, Datascope pushback, and source-level cleaning.

use nde::api::inject_label_errors;
use nde::scenario::load_recommendation_letters;
use nde_cleaning::oracle::TableOracle;
use nde_importance::datascope::datascope_importance;
use nde_importance::ImportanceScores;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::feature::FeaturePipeline;
use nde_pipeline::inspect::{check_class_balance, check_leakage, check_missing_values};
use nde_pipeline::semiring::{BoolSemiring, Semiring};

#[test]
fn provenance_supports_deletion_propagation() {
    // Deleting a source tuple must kill exactly the output rows whose
    // provenance mentions it — checked via Boolean-semiring evaluation.
    let s = load_recommendation_letters(200, 11);
    let mut fp = FeaturePipeline::hiring(8);
    let out = fp
        .fit_run(&s.pipeline_inputs(&s.train), true)
        .expect("pipeline runs");
    let lineage = out.lineage.expect("provenance tracked");
    let src = lineage.source_index("train_df").expect("letters source");

    // Pick a source row that actually reaches the output.
    let reached: Vec<u32> = (0..lineage.n_rows())
        .flat_map(|row| lineage.row_tuples(row))
        .filter(|t| t.source == src)
        .map(|t| t.row)
        .collect();
    let victim = reached[0];

    // Boolean semiring, one pass over the whole arena: alive iff not the
    // victim.
    let alive: Vec<bool> =
        lineage.eval_rows::<BoolSemiring>(&|t| !(t.source == src && t.row == victim));
    let killed: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter(|(_, &a)| !a)
        .map(|(i, _)| i)
        .collect();
    assert!(!killed.is_empty(), "victim row never reached the output");

    // Re-run the pipeline without the victim: output must shrink by the
    // number of killed rows.
    let keep: Vec<usize> = (0..s.train.n_rows())
        .filter(|&r| r != victim as usize)
        .collect();
    let train_removed = s.train.take(&keep).expect("take");
    let mut fp2 = FeaturePipeline::hiring(8);
    let out2 = fp2
        .fit_run(&s.pipeline_inputs(&train_removed), false)
        .expect("pipeline runs");
    assert_eq!(out2.dataset.len(), out.dataset.len() - killed.len());

    // Sanity: the semiring's one/zero behave.
    assert!(BoolSemiring::one());
    assert!(!BoolSemiring::zero());
}

#[test]
fn datascope_guided_source_cleaning_improves_pipeline_model() {
    let clean = load_recommendation_letters(500, 12);
    let mut s = clean.clone();
    inject_label_errors(&mut s.train, 0.2, 13).expect("injection");

    let mut fp = FeaturePipeline::hiring(24);
    let train_out = fp
        .fit_run(&s.pipeline_inputs(&s.train), true)
        .expect("pipeline runs");
    let valid_out = fp
        .transform_run(&s.pipeline_inputs(&s.valid), false)
        .expect("pipeline transforms");

    let eval = |train: &nde_ml::dataset::Dataset| {
        let mut m = KnnClassifier::new(5);
        m.fit(train).expect("fits");
        m.accuracy(&valid_out.dataset)
    };
    let acc_dirty = eval(&train_out.dataset);

    // Clean the 30 lowest-importance SOURCE tuples with the oracle, then
    // re-run the pipeline from the repaired sources.
    let scores = datascope_importance(
        &train_out,
        &valid_out.dataset,
        "train_df",
        s.train.n_rows(),
        5,
    )
    .expect("datascope");
    let scores = ImportanceScores::new("datascope", scores.values);
    let picks = scores.bottom_k(30);
    let oracle = TableOracle::new(clean.train.clone());
    let mut repaired = s.train.clone();
    oracle.repair_rows(&mut repaired, &picks).expect("repairs");

    let mut fp2 = FeaturePipeline::hiring(24);
    let train_out2 = fp2
        .fit_run(&s.pipeline_inputs(&repaired), false)
        .expect("pipeline runs");
    let valid_out2 = fp2
        .transform_run(&s.pipeline_inputs(&s.valid), false)
        .expect("pipeline transforms");
    let mut m = KnnClassifier::new(5);
    m.fit(&train_out2.dataset).expect("fits");
    let acc_cleaned = m.accuracy(&valid_out2.dataset);

    assert!(
        acc_cleaned >= acc_dirty - 0.02,
        "source cleaning hurt: {acc_dirty} -> {acc_cleaned}"
    );
}

#[test]
fn inspections_flag_real_issues_and_pass_clean_data() {
    let s = load_recommendation_letters(300, 14);
    // Clean data passes.
    assert!(check_missing_values(&s.train, 0.2).is_empty());
    assert!(check_class_balance(&s.train, "sentiment", 0.25)
        .expect("check runs")
        .is_empty());
    assert!(check_leakage(&s.train, &s.test, "person_id")
        .expect("check runs")
        .is_empty());
    // A leaky split is caught.
    let leaky = s.train.take(&(0..50).collect::<Vec<_>>()).expect("take");
    let findings = check_leakage(&s.train, &leaky, "person_id").expect("check runs");
    assert_eq!(findings.len(), 1);
}
