//! Durability chaos tests: supervised estimation loops are killed at
//! chaos-scheduled checkpoint saves, their on-disk records are torn,
//! checksum-corrupted, and version-staled — and every workflow (TMC-Shapley,
//! Banzhaf, the Zorro interval fit, and the prioritized cleaning loop) must
//! still finish **bit-identical** to an uninterrupted run.

use nde_cleaning::{
    prioritized_cleaning, prioritized_cleaning_resumable, CleaningCheckpoint, CleaningError,
    LabelOracle, MaintenanceMode, Strategy,
};
use nde_data::generate::blobs::{linear_regression, two_gaussians};
use nde_importance::{
    banzhaf, tmc_shapley, BanzhafParams, EstimatorCheckpoint, ImportanceError, ImportanceOutcome,
    ImportanceRun, TmcParams,
};
use nde_ml::dataset::Dataset;
use nde_ml::linalg::Matrix;
use nde_ml::models::knn::KnnClassifier;
use nde_robust::chaos::{
    corrupt_record_checksum, stale_record_version, truncate_record, CheckpointKillSwitch,
    CHAOS_PANIC_PREFIX,
};
use nde_robust::{
    supervise, FaultSchedule, RetryPolicy, RunBudget, RunFingerprint, RunStore, SuperviseCtx,
};
use nde_uncertain::symbolic::column_bounds_from_observed;
use nde_uncertain::zorro::{ZorroCheckpoint, ZorroConfig, ZorroRegressor};
use nde_uncertain::{Interval, SymbolicMatrix, UncertainError};

fn temp_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("nde-durability-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    RunStore::open(dir).unwrap()
}

fn gaussian_split() -> (Dataset, Dataset) {
    let nd = two_gaussians(80, 3, 1.5, 51);
    let all = Dataset::try_from(&nd).unwrap();
    (
        all.subset(&(0..60).collect::<Vec<_>>()),
        all.subset(&(60..80).collect::<Vec<_>>()),
    )
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: value {i} differs ({x} vs {y})"
        );
    }
}

/// A supervised TMC-Shapley sweep killed right after its 2nd and 4th
/// checkpoint saves restarts, resumes from the store, and ends with scores
/// bit-identical to an uninterrupted run.
#[test]
fn supervised_tmc_shapley_rides_out_chaos_kills_bit_identically() {
    const PERMS: u64 = 12;
    const SEGMENT: u64 = 3;
    let (train, valid) = gaussian_split();
    let knn = KnnClassifier::new(3);
    let params = TmcParams {
        permutations: PERMS as usize,
        truncation_tolerance: 0.0,
    };
    let full = tmc_shapley(&ImportanceRun::new(11), &knn, &train, &valid, &params).unwrap();

    let store = temp_store("tmc");
    let fp = RunFingerprint::new("tmc-shapley", 11, "perms=12;tol=0", 0xC0FFEE);
    let kill = CheckpointKillSwitch::new(FaultSchedule::at(&[1, 3]));
    let sup = supervise(
        &store,
        &fp,
        &RetryPolicy::immediate(8),
        |ctx: &SuperviseCtx<'_>| -> Result<ImportanceOutcome, ImportanceError> {
            loop {
                // Resume from the newest valid record, advance one segment,
                // persist, and maybe get killed right after the save.
                let resume = match ctx.latest()? {
                    Some(r) => Some(EstimatorCheckpoint::from_payload(&r.payload)?),
                    None => None,
                };
                let done = resume.as_ref().map_or(0, EstimatorCheckpoint::step);
                let target = (done + SEGMENT).min(PERMS);
                let mut opts = ImportanceRun::new(11)
                    .with_budget(RunBudget::unlimited().with_max_iterations(target));
                if let Some(snap) = resume.as_ref() {
                    opts = opts.with_resume(snap);
                }
                let out = tmc_shapley(&opts, &knn, &train, &valid, &params)?;
                let snap = out
                    .report
                    .snapshot
                    .clone()
                    .expect("MC runs always snapshot");
                ctx.checkpoint(snap.step(), &snap.to_payload())?;
                kill.observe();
                if snap.step() >= PERMS {
                    return Ok(out);
                }
            }
        },
    )
    .unwrap();

    assert_eq!(sup.attempts, 3, "two kills cost two restarts");
    assert_eq!(sup.crashes.len(), 2);
    assert!(sup
        .crashes
        .iter()
        .all(|c| c.starts_with(CHAOS_PANIC_PREFIX)));
    assert_bits_eq(
        &sup.value.scores.values,
        &full.scores.values,
        "supervised TMC scores",
    );
    assert_eq!(store.latest_valid(&fp).unwrap().unwrap().step, PERMS);
    std::fs::remove_dir_all(store.root()).ok();
}

/// Torn and checksum-corrupted records cost at most one checkpoint
/// interval: the store-driven Banzhaf run falls back to the last intact
/// record and still completes bit-identical to an uninterrupted run.
#[test]
fn banzhaf_recovers_from_torn_and_corrupt_records_bit_identically() {
    let (train, valid) = gaussian_split();
    let knn = KnnClassifier::new(3);
    let params = BanzhafParams { samples: 10 };
    let full = banzhaf(&ImportanceRun::new(5), &knn, &train, &valid, &params).unwrap();

    // Phase 1: a store-backed run stops after 6 of 10 samples, leaving
    // records at steps 2, 4, 6.
    let store = temp_store("banzhaf");
    let cut = banzhaf(
        &ImportanceRun::new(5)
            .with_store(&store)
            .with_auto_checkpoint(2)
            .with_budget(RunBudget::unlimited().with_max_iterations(6)),
        &knn,
        &train,
        &valid,
        &params,
    )
    .unwrap();
    let fp = cut
        .report
        .fingerprint
        .clone()
        .expect("store runs report it");
    let records = store.record_paths(&fp).unwrap();
    assert_eq!(
        records.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
        vec![2, 4, 6]
    );

    // Chaos: the newest record is torn mid-write, the next one suffers a
    // checksum bit-flip. Recovery must fall back to step 2.
    let torn = std::fs::metadata(&records[2].1).unwrap().len() as usize / 2;
    truncate_record(&records[2].1, torn).unwrap();
    corrupt_record_checksum(&records[1].1).unwrap();
    assert_eq!(store.latest_valid(&fp).unwrap().unwrap().step, 2);

    // Phase 2: a fresh process re-opens the store and auto-resumes from the
    // surviving record to completion — bit-identical to the uncut run.
    let reopened = RunStore::open(store.root()).unwrap();
    let resumed = banzhaf(
        &ImportanceRun::new(5).with_store(&reopened),
        &knn,
        &train,
        &valid,
        &params,
    )
    .unwrap();
    assert_bits_eq(
        &resumed.scores.values,
        &full.scores.values,
        "banzhaf scores after record damage",
    );
    let diag = resumed.report.diagnostics.as_ref().unwrap();
    assert!(diag.completed());
    assert_eq!(diag.iterations, 10);

    // Format drift: staling the final record's version makes recovery skip
    // it — it is never read back into a current-version process.
    let records = store.record_paths(&fp).unwrap();
    let (last_step, last_path) = records.last().unwrap();
    assert_eq!(*last_step, 10);
    stale_record_version(last_path, 0).unwrap();
    assert!(store.latest_valid(&fp).unwrap().unwrap().step < 10);
    std::fs::remove_dir_all(store.root()).ok();
}

/// A supervised Zorro interval fit killed mid-training resumes at epoch
/// granularity and converges to bit-identical weight planes.
#[test]
fn supervised_zorro_fit_resumes_bit_identically_after_a_kill() {
    const EPOCHS: u64 = 30;
    const SEGMENT: u64 = 8;
    let (xs, ys, _, _) = linear_regression(50, 2, 0.05, 7);
    let x = Matrix::from_rows(xs).unwrap();
    let bounds = column_bounds_from_observed(&x);
    let missing = [(3, 0), (11, 1), (20, 0), (37, 1), (44, 0)];
    let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
    let targets: Vec<Interval> = ys.iter().map(|&v| Interval::point(v)).collect();
    let cfg = ZorroConfig {
        epochs: EPOCHS as usize,
        ..Default::default()
    };

    let mut reference = ZorroRegressor::new(cfg.clone());
    let (_, uncut) = reference
        .fit_uncertain_resumable(&sym, &targets, &RunBudget::unlimited(), None)
        .unwrap();
    assert_eq!(uncut.epochs_done, EPOCHS);

    let store = temp_store("zorro");
    let fp = RunFingerprint::new("zorro-fit", 7, "epochs=30", 0x5EED);
    let kill = CheckpointKillSwitch::new(FaultSchedule::at(&[1]));
    let sup = supervise(
        &store,
        &fp,
        &RetryPolicy::immediate(4),
        |ctx: &SuperviseCtx<'_>| -> Result<ZorroCheckpoint, UncertainError> {
            loop {
                let resume = match ctx.latest()? {
                    Some(r) => Some(ZorroCheckpoint::from_payload(&r.payload)?),
                    None => None,
                };
                let done = resume.as_ref().map_or(0, |s| s.epochs_done);
                let budget =
                    RunBudget::unlimited().with_max_iterations((done + SEGMENT).min(EPOCHS));
                let mut zorro = ZorroRegressor::new(cfg.clone());
                let (_, snap) =
                    zorro.fit_uncertain_resumable(&sym, &targets, &budget, resume.as_ref())?;
                ctx.checkpoint(snap.epochs_done, &snap.to_payload())?;
                kill.observe();
                if snap.epochs_done >= EPOCHS {
                    return Ok(snap);
                }
            }
        },
    )
    .unwrap();

    assert_eq!(sup.attempts, 2, "one kill costs one restart");
    assert_eq!(sup.value.epochs_done, EPOCHS);
    assert_bits_eq(&sup.value.lo, &uncut.lo, "zorro lo plane");
    assert_bits_eq(&sup.value.hi, &uncut.hi, "zorro hi plane");
    std::fs::remove_dir_all(store.root()).ok();
}

/// A supervised prioritized-cleaning loop killed between rounds resumes at
/// accepted-fix granularity: same repairs, same trace, bit-identical
/// accuracies.
#[test]
fn supervised_cleaning_loop_resumes_bit_identically_after_kills() {
    const ROUNDS: u64 = 4;
    let nd = two_gaussians(200, 3, 2.0, 43);
    let all = Dataset::try_from(&nd).unwrap();
    let mut train = all.subset(&(0..150).collect::<Vec<_>>());
    let valid = all.subset(&(150..200).collect::<Vec<_>>());
    let truth = train.y.clone();
    for f in [5, 17, 29, 38, 51, 66, 84, 99, 111, 120, 133, 140, 147] {
        train.y[f] = 1 - train.y[f];
    }
    let oracle = LabelOracle::new(truth);
    let knn = KnnClassifier::new(3);
    let strategy = Strategy::KnnShapley { k: 3 };
    let reference = prioritized_cleaning(
        &knn,
        &train,
        &oracle,
        &valid,
        &strategy,
        5,
        ROUNDS as usize,
        false,
        MaintenanceMode::Rerun,
    )
    .unwrap();

    let store = temp_store("cleaning");
    let fp = RunFingerprint::new("prioritized-cleaning", 43, "batch=5;rounds=4", 0xC1EA);
    let kill = CheckpointKillSwitch::new(FaultSchedule::at(&[0, 2]));
    let sup = supervise(
        &store,
        &fp,
        &RetryPolicy::immediate(8),
        |ctx: &SuperviseCtx<'_>| -> Result<CleaningCheckpoint, CleaningError> {
            loop {
                // One cleaning round per segment: resume, advance, persist.
                let resume = match ctx.latest()? {
                    Some(r) => Some(CleaningCheckpoint::from_payload(&r.payload)?),
                    None => None,
                };
                let done = resume.as_ref().map_or(0, |s| s.rounds_done);
                let budget = RunBudget::unlimited().with_max_iterations((done + 1).min(ROUNDS));
                let (_, snap) = prioritized_cleaning_resumable(
                    &knn,
                    &train,
                    &oracle,
                    &valid,
                    &strategy,
                    5,
                    ROUNDS as usize,
                    false,
                    MaintenanceMode::Rerun,
                    &budget,
                    &RetryPolicy::none(),
                    resume.as_ref(),
                )?;
                ctx.checkpoint(snap.rounds_done, &snap.to_payload())?;
                kill.observe();
                if snap.rounds_done >= ROUNDS {
                    return Ok(snap);
                }
            }
        },
    )
    .unwrap();

    assert_eq!(sup.attempts, 3, "two kills cost two restarts");
    assert!(sup
        .crashes
        .iter()
        .all(|c| c.starts_with(CHAOS_PANIC_PREFIX)));
    assert_eq!(sup.value.rounds_done, ROUNDS);
    assert_eq!(sup.value.cleaned, reference.cleaned);
    assert_bits_eq(
        &sup.value.accuracy,
        &reference.accuracy,
        "cleaning accuracy trace",
    );
    // The repaired labels themselves match an uninterrupted loop's.
    let (uncut, _) = prioritized_cleaning_resumable(
        &knn,
        &train,
        &oracle,
        &valid,
        &strategy,
        5,
        ROUNDS as usize,
        false,
        MaintenanceMode::Rerun,
        &RunBudget::unlimited(),
        &RetryPolicy::none(),
        None,
    )
    .unwrap();
    assert_eq!(uncut.run, reference);
    std::fs::remove_dir_all(store.root()).ok();
}
