//! Integration tests for the extension features: what-if deletion
//! propagation + Datascope interplay, unlearning as a cleaning mechanism,
//! fuzzy joins inside executed plans, and Gopher on encoded pipelines.

use nde::api::inject_label_errors;
use nde::scenario::load_recommendation_letters;
use nde_importance::datascope::datascope_importance;
use nde_importance::{knn_shapley, ImportanceRun, ImportanceScores};
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use nde_ml::models::unlearn::Unlearn;
use nde_pipeline::feature::FeaturePipeline;
use nde_pipeline::whatif::{apply_deletion, delete_source_rows};

#[test]
fn whatif_predicts_the_effect_of_datascope_removal() {
    // The Fig. 3 flow re-runs the pipeline after removing low-importance
    // source tuples; what-if deletion propagation predicts the surviving
    // output rows without re-execution. The two must agree on row count for
    // the primary source.
    let mut s = load_recommendation_letters(300, 71);
    inject_label_errors(&mut s.train, 0.15, 72).expect("injects");

    let mut fp = FeaturePipeline::hiring(16);
    let train_out = fp
        .fit_run(&s.pipeline_inputs(&s.train), true)
        .expect("pipeline runs");
    let valid_out = fp
        .transform_run(&s.pipeline_inputs(&s.valid), false)
        .expect("pipeline transforms");
    let scores = datascope_importance(
        &train_out,
        &valid_out.dataset,
        "train_df",
        s.train.n_rows(),
        5,
    )
    .expect("datascope");
    let scores = ImportanceScores::new("datascope", scores.values);
    let removed = scores.bottom_k(25);

    // Prediction via provenance.
    let lineage = train_out.lineage.as_ref().expect("tracked");
    let effect = delete_source_rows(lineage, "train_df", &removed).expect("predicts");
    let predicted = apply_deletion(&train_out.table, &effect).expect("applies");

    // Ground truth via re-execution.
    let keep: Vec<usize> = (0..s.train.n_rows())
        .filter(|r| !removed.contains(r))
        .collect();
    let reduced = s.train.take(&keep).expect("takes");
    let mut fp2 = FeaturePipeline::hiring(16);
    let actual = fp2
        .fit_run(&s.pipeline_inputs(&reduced), false)
        .expect("pipeline runs");

    assert_eq!(predicted.n_rows(), actual.table.n_rows());
}

#[test]
fn unlearning_the_lowest_shapley_tuples_improves_accuracy() {
    // §2.4's debugging-unlearning connection, end to end: identify harmful
    // tuples with KNN-Shapley, *forget* them (no retraining API needed),
    // and watch validation accuracy recover.
    let mut s = load_recommendation_letters(400, 73);
    inject_label_errors(&mut s.train, 0.2, 74).expect("injects");

    let enc = nde::api::LettersEncoding::fit(&s.train).expect("fits");
    let train = enc.dataset(&s.train).expect("encodes");
    let valid = enc.dataset(&s.valid).expect("encodes");

    let mut model = KnnClassifier::new(5);
    model.fit(&train).expect("fits");
    let acc_dirty = model.accuracy(&valid);

    let scores = knn_shapley(&ImportanceRun::new(0), &train, &valid, 5)
        .expect("scores")
        .scores;
    let harmful = scores.bottom_k(40);
    model.forget(&harmful).expect("forgets");
    assert_eq!(model.remembered(), train.len() - 40);
    let acc_after = model.accuracy(&valid);
    assert!(
        acc_after >= acc_dirty - 0.02,
        "forgetting harmful tuples should not hurt: {acc_dirty} -> {acc_after}"
    );
}

#[test]
fn fuzzy_join_pipeline_supports_datascope() {
    // A pipeline whose integration step is a *fuzzy* join still yields
    // provenance usable for source attribution.
    use nde_data::{DataType, Field, Schema, Table, Value};
    use nde_pipeline::exec::Executor;
    use nde_pipeline::plan::Plan;

    // Letters reference employers by free-text name with typos.
    let mut letters = Table::empty(
        "letters",
        Schema::new(vec![
            Field::new("employer", DataType::Str),
            Field::new("score", DataType::Float),
        ])
        .unwrap(),
    );
    let employers = ["acme corp", "globex", "initech", "umbrella co"];
    for i in 0..40 {
        let base = employers[i % 4];
        let name = if i % 3 == 0 {
            format!("{base}.") // light typo
        } else {
            base.to_uppercase()
        };
        letters
            .push_row(vec![name.into(), ((i % 10) as f64).into()])
            .unwrap();
    }
    let mut companies = Table::empty(
        "companies",
        Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("sector", DataType::Str),
        ])
        .unwrap(),
    );
    for (n, s) in [
        ("Acme Corp", "healthcare"),
        ("Globex", "tech"),
        ("Initech", "healthcare"),
        ("Umbrella Co", "biotech"),
    ] {
        companies.push_row(vec![n.into(), s.into()]).unwrap();
    }

    let mut plan = Plan::new();
    let l = plan.source("letters");
    let c = plan.source("companies");
    let joined = plan.fuzzy_join(l, c, "employer", "name", 0.8);
    let filtered = plan.filter(
        joined,
        nde_pipeline::expr::Expr::col("sector").eq(nde_pipeline::expr::Expr::str("healthcare")),
    );
    let out = Executor::new()
        .with_provenance(true)
        .run(
            &plan,
            filtered,
            &[("letters", &letters), ("companies", &companies)],
        )
        .unwrap();
    // Acme + Initech letters survive: 20 rows.
    assert_eq!(out.table.n_rows(), 20);
    let lineage = out.provenance.unwrap();
    // Every output row traces to exactly one letter and one company.
    let company_src = lineage.source_index("companies").unwrap();
    for row in 0..lineage.n_rows() {
        let tuples = lineage.row_tuples(row);
        assert_eq!(tuples.len(), 2);
        let company_row = tuples.iter().find(|t| t.source == company_src).unwrap();
        let sector = companies.get(company_row.row as usize, "sector").unwrap();
        assert_eq!(sector, Value::Str("healthcare".into()));
    }
    // The inverted index attributes output rows per company.
    let per_company = lineage.outputs_per_source_row(company_src, companies.n_rows());
    assert_eq!(per_company[0].len(), 10); // acme
    assert_eq!(per_company[1].len(), 0); // globex filtered out
    assert_eq!(per_company[2].len(), 10); // initech
}
